#!/usr/bin/env python
"""Repo lint for the tier contract and span coverage.

Two rules, both enforced over the AST (no imports of the checked modules):

**Tier parity.**  Every ``Phys*`` operator class defined in
``src/repro/core/physical.py`` must, for each execution tier, either be
referenced by name in that tier's executor module (it has a handler) or
appear as an explicit key in that tier's row of ``OPERATOR_CAPABILITIES``
in ``src/repro/core/analysis/capabilities.py`` (its coverage is declared,
possibly as a conditional decline).  A new operator therefore cannot
silently fall through a tier to a raw "unhandled node" crash: the build
fails until its coverage is stated somewhere.  Stale capability keys that
no longer name an operator class are flagged too.

**Span coverage.**  Every ``Phys*`` operator class must appear as a key in
exactly one of ``SPAN_INSTRUMENTED_OPERATORS`` / ``SPAN_EXEMPT_OPERATORS``
in ``src/repro/obs/instrument.py`` — the declared inventory of which
operators the tracing layer covers (and where), and which are deliberately
left dark (and why).  A new operator cannot silently execute untraced: the
build fails until its observability story is stated.  Stale names are
flagged too.

Lock discipline used to be rule three, limited to subscript inserts in the
plug-ins and the memory manager; it missed every non-subscript mutation form
(``setdefault`` / ``update`` / ``pop`` / attribute rebinds) and has been
superseded by the repo-wide dataflow pass in ``tools/concurrency_lint.py``,
which checks all mutation forms against the declaration tables in
``src/repro/core/concurrency.py`` and builds the static lock-order graph.

Run as ``python tools/tier_lint.py`` from the repo root; exits non-zero and
prints one line per violation.  The check functions take explicit paths so
the test suite can run them against seeded synthetic violations.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Executor module (repo-relative) per capability-table tier key.
EXECUTOR_MODULES: dict[str, str] = {
    "TIER_CODEGEN": "src/repro/core/codegen/generator.py",
    "TIER_PARALLEL": "src/repro/core/parallel/executor.py",
    "TIER_VECTORIZED": "src/repro/core/executor/vectorized.py",
    "TIER_VOLCANO": "src/repro/core/executor/volcano.py",
}

PHYSICAL_MODULE = "src/repro/core/physical.py"
CAPABILITIES_MODULE = "src/repro/core/analysis/capabilities.py"
INSTRUMENT_MODULE = "src/repro/obs/instrument.py"

#: Base classes that are abstractions, not dispatchable operators.
NON_OPERATORS = frozenset({"PhysicalPlan"})


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def collect_phys_operators(physical_path: Path) -> set[str]:
    """Names of every concrete physical-operator class."""
    tree = _parse(physical_path)
    return {
        node.name
        for node in tree.body
        if isinstance(node, ast.ClassDef)
        and node.name.startswith("Phys")
        and node.name not in NON_OPERATORS
    }


def collect_referenced_names(module_path: Path) -> set[str]:
    """Every bare name and attribute name mentioned in a module."""
    names: set[str] = set()
    for node in ast.walk(_parse(module_path)):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def collect_capability_entries(capabilities_path: Path) -> dict[str, set[str]]:
    """Operator-class keys per tier row of ``OPERATOR_CAPABILITIES``."""
    tree = _parse(capabilities_path)
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "OPERATOR_CAPABILITIES"
            for target in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            break
        entries: dict[str, set[str]] = {}
        for tier_key, row in zip(value.keys, value.values):
            if not isinstance(tier_key, ast.Name) or not isinstance(row, ast.Dict):
                continue
            entries[tier_key.id] = {
                key.id for key in row.keys if isinstance(key, ast.Name)
            }
        return entries
    raise SystemExit(
        f"tier_lint: no OPERATOR_CAPABILITIES dict literal in {capabilities_path}"
    )


def check_tier_parity(root: Path) -> list[str]:
    """Tier-parity violations (empty when the contract holds)."""
    operators = collect_phys_operators(root / PHYSICAL_MODULE)
    table = collect_capability_entries(root / CAPABILITIES_MODULE)
    violations: list[str] = []
    for tier, module in sorted(EXECUTOR_MODULES.items()):
        handled = collect_referenced_names(root / module)
        declared = table.get(tier, set())
        for operator in sorted(operators):
            if operator not in handled and operator not in declared:
                violations.append(
                    f"{module}: operator {operator} has no handler and no "
                    f"{tier} entry in OPERATOR_CAPABILITIES"
                )
        for stale in sorted(declared - operators):
            violations.append(
                f"{CAPABILITIES_MODULE}: {tier} row names {stale}, which is "
                "not a physical operator class"
            )
    return violations


def collect_string_keyed_dict(module_path: Path, name: str) -> set[str]:
    """String keys of a module-level dict literal assigned to ``name``."""
    tree = _parse(module_path)
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == name
            for target in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            break
        return {
            key.value
            for key in value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
    raise SystemExit(f"tier_lint: no {name} dict literal in {module_path}")


def check_span_coverage(root: Path) -> list[str]:
    """Span-coverage violations (empty when every operator is declared)."""
    operators = collect_phys_operators(root / PHYSICAL_MODULE)
    instrument = root / INSTRUMENT_MODULE
    instrumented = collect_string_keyed_dict(
        instrument, "SPAN_INSTRUMENTED_OPERATORS"
    )
    exempt = collect_string_keyed_dict(instrument, "SPAN_EXEMPT_OPERATORS")
    violations: list[str] = []
    for operator in sorted(operators - instrumented - exempt):
        violations.append(
            f"{INSTRUMENT_MODULE}: operator {operator} is neither "
            "span-instrumented nor declared exempt"
        )
    for operator in sorted(instrumented & exempt):
        violations.append(
            f"{INSTRUMENT_MODULE}: operator {operator} is declared both "
            "instrumented and exempt"
        )
    for stale in sorted((instrumented | exempt) - operators):
        violations.append(
            f"{INSTRUMENT_MODULE}: {stale} is not a physical operator class"
        )
    return violations


def run(root: Path) -> list[str]:
    """All violations for a repo rooted at ``root``."""
    violations = check_tier_parity(root)
    violations.extend(check_span_coverage(root))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (defaults to the checkout containing this file)",
    )
    options = parser.parse_args(argv)
    violations = run(options.root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"tier_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("tier_lint: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
