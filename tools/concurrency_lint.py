#!/usr/bin/env python
"""Concurrency lint: prove the engine's lock discipline over the AST.

The engine serves concurrent sessions (ROADMAP item 1), so every class that
owns a lock — and every class declared shared in
``src/repro/core/concurrency.py`` — is held to a checkable contract:

**Mutation rule.**  Inside a checked class, every mutation of ``self``
state outside ``__init__`` — subscript stores (``self.x[k] = v``), attribute
rebinds (``self.x = v``), augmented assigns, ``del``, and mutator-method
calls (``.setdefault`` / ``.update`` / ``.pop`` / ``.append`` / …, the forms
the old tier_lint rule missed) — must be covered by exactly one declaration
in the tables of ``core/concurrency.py``:

* ``GUARDED_BY[Class.attr] = lock``: the mutation must be lexically inside
  ``with self.<lock>``.  Lock-free *reads* stay legal (the double-checked
  publish idiom: readers race only against idempotent publication).
* ``IMMUTABLE_AFTER_INIT``: any post-``__init__`` mutation is a violation.
* ``THREAD_LOCAL`` / ``BENIGN_RACES`` / ``EXTERNALLY_GUARDED``: audited
  suppressions; the mutation is allowed where it stands.

An undeclared mutation fails the build, as does a *stale* declaration (a
class or attribute that no longer exists, a named lock the class does not
own, or one attribute declared in two tables) — the same teeth as the
``SPAN_EXEMPT_OPERATORS`` inventory.

**Lock-order rule.**  A lock-acquisition graph is built statically: nodes
are ``Class.lockattr``; an edge ``a -> b`` is added when code acquires ``b``
(directly via ``with self.<lock>``, or transitively through a resolvable
method call) while lexically holding ``a``.  Cross-class calls resolve only
when the method name is defined by exactly one repo class and is not a
container-style name (``get`` / ``pop`` / ``update`` / …) — conservative,
no false resolution.  A cycle in the graph is a potential deadlock; a path
that re-acquires a lock already held is a self-deadlock (all engine locks
are non-reentrant).  Both fail the build.  The runtime ``DebugLock``
sanitizer (``PROTEUS_DEBUG_LOCKS``) is the dynamic complement: it observes
the orders the static pass cannot resolve.

**Thread-entry rule.**  Every class that spawns ``threading.Thread`` workers
must be in the checked set; ``--inventory`` prints the full thread-entry map
(spawn sites, callback gauges, per-thread state) and the lock inventory.

Run as ``python tools/concurrency_lint.py`` from the repo root; exits
non-zero with one line per violation.  Functions take explicit roots so the
test suite can run them against seeded synthetic violations.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

#: Module (repo-relative) holding the declaration tables.
CONCURRENCY_MODULE = "src/repro/core/concurrency.py"

#: Tree the lint walks.
SOURCE_ROOT = "src/repro"

#: The attribute-level declaration tables, checked in this order.
DECLARATION_TABLES = (
    "GUARDED_BY",
    "THREAD_LOCAL",
    "IMMUTABLE_AFTER_INIT",
    "BENIGN_RACES",
    "EXTERNALLY_GUARDED",
)

#: Callables whose result assigned to ``self.<attr>`` in ``__init__`` makes
#: ``attr`` a lock attribute (and its class a checked class).
LOCK_FACTORIES = frozenset({"Lock", "RLock", "make_lock", "make_rlock"})

#: Methods allowed to mutate freely: construction happens before sharing.
INIT_METHODS = frozenset({"__init__", "__post_init__"})

#: Naming convention for internal helpers that run with the owner's lock
#: already held (``CacheManager._evict_locked``).  Such methods are analyzed
#: as if every lock of their class were held — and in exchange, every call
#: site of a ``*_locked`` method must itself lexically hold a lock, which is
#: how the lint catches an unlocked caller.
LOCKED_HELPER_SUFFIX = "_locked"

#: Method names that mutate their receiver — the non-subscript forms the
#: old tier_lint lock rule missed (``setdefault``, ``update``, ``pop``, …).
MUTATOR_METHODS = frozenset(
    {
        "setdefault",
        "update",
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "add",
        "insert",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "sort",
        "reverse",
    }
)

#: Method names never resolved across classes: they collide with the
#: built-in container/lock protocol, so ``x.pop()`` on an arbitrary object
#: must not be attributed to some repo class that happens to define ``pop``.
AMBIGUOUS_METHODS = MUTATOR_METHODS | frozenset(
    {
        "get",
        "set",
        "copy",
        "items",
        "keys",
        "values",
        "count",
        "index",
        "join",
        "split",
        "strip",
        "acquire",
        "release",
        "put",
        "close",
        "open",
        "read",
        "write",
    }
)


# ---------------------------------------------------------------------------
# Repo model
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    """Everything the lint knows about one class definition."""

    name: str
    module: str  # repo-relative path
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    lock_attrs: set[str] = field(default_factory=set)
    assigned_attrs: set[str] = field(default_factory=set)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class ThreadEntry:
    """One inventoried thread-related site."""

    kind: str  # "thread-spawn" | "callback-gauge" | "thread-local-state"
    module: str
    lineno: int
    owner: str | None  # enclosing class, if any


@dataclass
class RepoModel:
    """All classes of the checked tree plus the thread-entry inventory."""

    classes: dict[str, ClassInfo] = field(default_factory=dict)
    entries: list[ThreadEntry] = field(default_factory=list)
    #: method name -> class names defining it (for unique resolution).
    method_owners: dict[str, set[str]] = field(default_factory=dict)

    def chain(self, class_name: str) -> list[ClassInfo]:
        """The class and its repo-defined bases, nearest first."""
        result: list[ClassInfo] = []
        queue = [class_name]
        seen: set[str] = set()
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                continue
            result.append(info)
            queue.extend(info.bases)
        return result

    def lock_attrs_of(self, class_name: str) -> set[str]:
        attrs: set[str] = set()
        for info in self.chain(class_name):
            attrs |= info.lock_attrs
        return attrs

    def lock_node(self, class_name: str, attr: str) -> str:
        """Graph node for a lock attribute: named after the owning class, so
        an inherited lock (``Gauge`` using ``Counter._lock``) is one node."""
        for info in self.chain(class_name):
            if attr in info.lock_attrs:
                return f"{info.name}.{attr}"
        return f"{class_name}.{attr}"

    def resolve_method(
        self, class_name: str | None, method: str
    ) -> tuple[str, str] | None:
        """Resolve a call target to a (class, method) key, or ``None``.

        ``self.m()`` resolves through the class chain; ``other.m()`` resolves
        only when exactly one repo class defines ``m`` and the name is not
        container-ambiguous.
        """
        if method.startswith("__"):
            return None
        if class_name is not None:
            for info in self.chain(class_name):
                if method in info.methods:
                    return (info.name, method)
            return None
        if method in AMBIGUOUS_METHODS:
            return None
        owners = self.method_owners.get(method, set())
        if len(owners) == 1:
            owner = next(iter(owners))
            return (owner, method)
        return None


def _self_base_attr(node: ast.expr) -> str | None:
    """The first attribute off ``self`` in a target/receiver chain:
    ``self.x`` → x, ``self.x[k]`` → x, ``self.stats.hits`` → stats."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    while isinstance(node.value, (ast.Attribute, ast.Subscript)):
        inner = node.value
        node = inner if isinstance(inner, ast.Attribute) else None  # type: ignore[assignment]
        if node is None:
            inner_sub = inner
            while isinstance(inner_sub, ast.Subscript):
                inner_sub = inner_sub.value
            if not isinstance(inner_sub, ast.Attribute):
                return None
            node = inner_sub
    if isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _is_lock_factory_call(value: ast.expr) -> bool:
    if isinstance(value, ast.IfExp):
        return _is_lock_factory_call(value.body) or _is_lock_factory_call(
            value.orelse
        )
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name in LOCK_FACTORIES


def build_model(root: Path) -> RepoModel:
    """Parse every module under ``root/src/repro`` into a :class:`RepoModel`."""
    model = RepoModel()
    source_root = root / SOURCE_ROOT
    for path in sorted(source_root.rglob("*.py")):
        rel = str(path.relative_to(root))
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        _scan_module(model, tree, rel)
    for info in model.classes.values():
        for method in info.methods:
            model.method_owners.setdefault(method, set()).add(info.name)
    return model


def _scan_module(model: RepoModel, tree: ast.Module, rel: str) -> None:
    class_stack: list[str] = []

    def walk(node: ast.AST, owner: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            child_owner = owner
            if isinstance(child, ast.ClassDef):
                info = ClassInfo(name=child.name, module=rel, node=child)
                info.bases = [
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else ""
                    for base in child.bases
                ]
                for member in child.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods.setdefault(member.name, member)  # type: ignore[arg-type]
                    elif isinstance(member, ast.AnnAssign) and isinstance(
                        member.target, ast.Name
                    ):
                        info.assigned_attrs.add(member.target.id)
                    elif isinstance(member, ast.Assign):
                        for target in member.targets:
                            if isinstance(target, ast.Name):
                                info.assigned_attrs.add(target.id)
                _collect_attrs(info)
                model.classes.setdefault(child.name, info)
                child_owner = child.name
            elif isinstance(child, ast.Call):
                _inventory_call(model, child, rel, owner)
            walk(child, child_owner)

    walk(tree, None)


def _collect_attrs(info: ClassInfo) -> None:
    """Attributes assigned on ``self`` anywhere in the class; lock attributes
    from factory calls in ``__init__``/``__post_init__``."""
    for method_name, method in info.methods.items():
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                elts = target.elts if isinstance(target, ast.Tuple) else [target]
                for element in elts:
                    if (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "self"
                    ):
                        info.assigned_attrs.add(element.attr)
                        if (
                            method_name in INIT_METHODS
                            and value is not None
                            and _is_lock_factory_call(value)
                        ):
                            info.lock_attrs.add(element.attr)


def _inventory_call(
    model: RepoModel, call: ast.Call, rel: str, owner: str | None
) -> None:
    func = call.func
    attr = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if attr == "Thread":
        model.entries.append(ThreadEntry("thread-spawn", rel, call.lineno, owner))
    elif attr == "gauge_callback":
        model.entries.append(
            ThreadEntry("callback-gauge", rel, call.lineno, owner)
        )
    elif attr in ("local", "get_ident"):
        base = func.value if isinstance(func, ast.Attribute) else None
        if isinstance(base, ast.Name) and base.id == "threading":
            model.entries.append(
                ThreadEntry("thread-local-state", rel, call.lineno, owner)
            )


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Declarations:
    """The tables from ``core/concurrency.py`` plus the shared-class set."""

    shared_classes: dict[str, str] = field(default_factory=dict)
    tables: dict[str, dict[str, str]] = field(default_factory=dict)

    def lookup(
        self, chain: list[ClassInfo], attr: str
    ) -> tuple[str, str] | None:
        """(table, value) for ``attr`` on the nearest declaring class."""
        for info in chain:
            key = f"{info.name}.{attr}"
            for table in DECLARATION_TABLES:
                value = self.tables.get(table, {}).get(key)
                if value is not None:
                    return (table, value)
        return None


def load_declarations(concurrency_path: Path) -> Declarations:
    """Read the declaration dict literals (AST only, no import)."""
    tree = ast.parse(
        concurrency_path.read_text(encoding="utf-8"), filename=str(concurrency_path)
    )
    wanted = set(DECLARATION_TABLES) | {"SHARED_CLASSES"}
    found: dict[str, dict[str, str]] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in wanted
                and isinstance(value, ast.Dict)
            ):
                entries: dict[str, str] = {}
                for key, val in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        entries[key.value] = (
                            val.value
                            if isinstance(val, ast.Constant)
                            and isinstance(val.value, str)
                            else ""
                        )
                found[target.id] = entries
    missing = sorted(wanted - set(found))
    if missing:
        raise SystemExit(
            f"concurrency_lint: {concurrency_path} lacks declaration "
            f"table(s): {', '.join(missing)}"
        )
    return Declarations(
        shared_classes=found["SHARED_CLASSES"],
        tables={name: found[name] for name in DECLARATION_TABLES},
    )


def checked_classes(model: RepoModel, decls: Declarations) -> set[str]:
    """Lock owners ∪ declared shared classes ∪ classes named in any table."""
    names = {
        info.name for info in model.classes.values() if model.lock_attrs_of(info.name)
    }
    names |= set(decls.shared_classes) & set(model.classes)
    for table in decls.tables.values():
        for key in table:
            class_name = key.split(".", 1)[0]
            if class_name in model.classes:
                names.add(class_name)
    return names


# ---------------------------------------------------------------------------
# Mutation rule
# ---------------------------------------------------------------------------


class _MutationVisitor(ast.NodeVisitor):
    """Walks one method, tracking held locks lexically, checking mutations."""

    def __init__(
        self,
        model: RepoModel,
        decls: Declarations,
        info: ClassInfo,
        method_name: str,
        in_init: bool,
        violations: list[str],
    ) -> None:
        self.model = model
        self.decls = decls
        self.info = info
        self.chain = model.chain(info.name)
        self.lock_attrs = model.lock_attrs_of(info.name)
        self.method_name = method_name
        self.in_init = in_init
        self.violations = violations
        self.held: list[str] = []  # lock attr names, innermost last
        if method_name.endswith(LOCKED_HELPER_SUFFIX):
            # A *_locked helper runs with its owner's lock already held;
            # the obligation moves to its call sites (checked below).
            self.held.extend(sorted(self.lock_attrs))

    # -- lock scopes -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.lock_attrs
            ):
                acquired.append(expr.attr)
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    # -- nested functions run later, possibly unlocked ---------------------

    def _visit_nested(self, node: ast.AST) -> None:
        nested = _MutationVisitor(
            self.model,
            self.decls,
            self.info,
            f"{self.method_name}.<nested>",
            in_init=False,
            violations=self.violations,
        )
        for child in ast.iter_child_nodes(node):
            nested.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    # -- mutation forms ----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno, "assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node.lineno, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno, "del")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            attr = _self_base_attr(func.value)
            if attr is not None:
                self._check_mutation(attr, node.lineno, f".{func.attr}()")
        if (
            isinstance(func, ast.Attribute)
            and func.attr.endswith(LOCKED_HELPER_SUFFIX)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and not self.held
            and not self.in_init
        ):
            self.violations.append(
                f"{self.info.module}:{node.lineno}: {self.method_name} calls "
                f"{func.attr}() without holding a lock; *_locked helpers "
                "assume their owner's lock is held"
            )
        self.generic_visit(node)

    def _check_target(self, target: ast.expr, lineno: int, kind: str) -> None:
        elements = target.elts if isinstance(target, ast.Tuple) else [target]
        for element in elements:
            attr = _self_base_attr(element)
            if attr is not None:
                self._check_mutation(attr, lineno, kind)

    def _check_mutation(self, attr: str, lineno: int, kind: str) -> None:
        if self.in_init:
            return
        where = f"{self.info.module}:{lineno}"
        label = f"{self.info.name}.{attr}"
        declared = self.decls.lookup(self.chain, attr)
        if declared is None:
            self.violations.append(
                f"{where}: undeclared mutation of {label} ({kind} in "
                f"{self.method_name}); declare it in a core/concurrency.py "
                "table or guard it with a lock"
            )
            return
        table, value = declared
        if table == "GUARDED_BY":
            if value not in self.held:
                self.violations.append(
                    f"{where}: {label} is GUARDED_BY {value!r} but this "
                    f"{kind} in {self.method_name} runs outside "
                    f"'with self.{value}'"
                )
        elif table == "IMMUTABLE_AFTER_INIT":
            self.violations.append(
                f"{where}: {label} is declared IMMUTABLE_AFTER_INIT but is "
                f"mutated ({kind}) in {self.method_name}"
            )
        # THREAD_LOCAL / BENIGN_RACES / EXTERNALLY_GUARDED: audited, allowed.


def check_mutations(model: RepoModel, decls: Declarations) -> list[str]:
    """Mutation-rule violations across all checked classes."""
    violations: list[str] = []
    for name in sorted(checked_classes(model, decls)):
        info = model.classes[name]
        for method_name, method in sorted(info.methods.items()):
            visitor = _MutationVisitor(
                model,
                decls,
                info,
                method_name,
                in_init=method_name in INIT_METHODS,
                violations=violations,
            )
            for child in ast.iter_child_nodes(method):
                visitor.visit(child)
    return violations


# ---------------------------------------------------------------------------
# Lock-order rule
# ---------------------------------------------------------------------------


class _AcqCollector(ast.NodeVisitor):
    """Direct lock acquisitions and resolvable call targets of one method."""

    def __init__(self, model: RepoModel, class_name: str) -> None:
        self.model = model
        self.class_name = class_name
        self.lock_attrs = model.lock_attrs_of(class_name)
        self.direct: set[str] = set()
        self.calls: set[tuple[str, str]] = set()

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.lock_attrs
            ):
                self.direct.add(self.model.lock_node(self.class_name, expr.attr))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                target = self.model.resolve_method(self.class_name, func.attr)
            else:
                target = self.model.resolve_method(None, func.attr)
            if target is not None:
                self.calls.add(target)
        self.generic_visit(node)


def _method_summaries(
    model: RepoModel,
) -> dict[tuple[str, str], _AcqCollector]:
    summaries: dict[tuple[str, str], _AcqCollector] = {}
    for info in model.classes.values():
        for method_name, method in info.methods.items():
            collector = _AcqCollector(model, info.name)
            collector.visit(method)
            summaries[(info.name, method_name)] = collector
    return summaries


def _transitive_acquisitions(
    summaries: dict[tuple[str, str], _AcqCollector],
) -> dict[tuple[str, str], set[str]]:
    """Fixpoint: every lock a method may acquire, directly or via calls."""
    acq = {key: set(summary.direct) for key, summary in summaries.items()}
    changed = True
    while changed:
        changed = False
        for key, summary in summaries.items():
            current = acq[key]
            before = len(current)
            for callee in summary.calls:
                current |= acq.get(callee, set())
            if len(current) != before:
                changed = True
    return acq


class _EdgeVisitor(ast.NodeVisitor):
    """Walks one method with a held-lock stack, emitting order edges."""

    def __init__(
        self,
        model: RepoModel,
        info: ClassInfo,
        method_name: str,
        acq: dict[tuple[str, str], set[str]],
        edges: dict[str, set[str]],
        violations: list[str],
    ) -> None:
        self.model = model
        self.info = info
        self.method_name = method_name
        self.lock_attrs = model.lock_attrs_of(info.name)
        self.acq = acq
        self.edges = edges
        self.violations = violations
        self.held: list[str] = []  # lock nodes, innermost last
        if method_name.endswith(LOCKED_HELPER_SUFFIX):
            self.held.extend(
                model.lock_node(info.name, attr)
                for attr in sorted(self.lock_attrs)
            )

    def _edge(self, target: str, lineno: int) -> None:
        for source in self.held:
            if source == target:
                self.violations.append(
                    f"{self.info.module}:{lineno}: {self.method_name} "
                    f"re-acquires non-reentrant lock {target} already held "
                    "on this path (self-deadlock)"
                )
            else:
                self.edges.setdefault(source, set()).add(target)

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.lock_attrs
            ):
                lock_node = self.model.lock_node(self.info.name, expr.attr)
                self._edge(lock_node, node.lineno)
                acquired.append(lock_node)
        self.held.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self.held:
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                target = self.model.resolve_method(self.info.name, func.attr)
            else:
                target = self.model.resolve_method(None, func.attr)
            if target is not None:
                for acquired in sorted(self.acq.get(target, set())):
                    self._edge(acquired, node.lineno)
        self.generic_visit(node)

    def _visit_nested(self, node: ast.AST) -> None:
        # A nested function runs later, possibly on another thread with no
        # lock held: analyze its body with an empty held stack.
        nested = _EdgeVisitor(
            self.model,
            self.info,
            f"{self.method_name}.<nested>",
            self.acq,
            self.edges,
            self.violations,
        )
        for child in ast.iter_child_nodes(node):
            nested.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)


def check_lock_order(model: RepoModel) -> tuple[dict[str, set[str]], list[str]]:
    """(static lock-order graph, violations: re-entries and cycles)."""
    summaries = _method_summaries(model)
    acq = _transitive_acquisitions(summaries)
    edges: dict[str, set[str]] = {}
    violations: list[str] = []
    for info in model.classes.values():
        for method_name, method in sorted(info.methods.items()):
            visitor = _EdgeVisitor(
                model, info, method_name, acq, edges, violations
            )
            for child in ast.iter_child_nodes(method):
                visitor.visit(child)
    violations.extend(_find_cycles(edges))
    return edges, violations


def _find_cycles(edges: dict[str, set[str]]) -> list[str]:
    """One violation line per elementary cycle found by DFS back edges."""
    violations: list[str] = []
    seen_cycles: set[frozenset[str]] = set()
    state: dict[str, int] = {}  # 0 = visiting, 1 = done
    path: list[str] = []

    def visit(node: str) -> None:
        state[node] = 0
        path.append(node)
        for target in sorted(edges.get(node, ())):
            if target not in state:
                visit(target)
            elif state[target] == 0:
                cycle = path[path.index(target) :] + [target]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    violations.append(
                        "lock-order cycle (potential deadlock): "
                        + " -> ".join(cycle)
                    )
        path.pop()
        state[node] = 1

    for node in sorted(edges):
        if node not in state:
            visit(node)
    return violations


# ---------------------------------------------------------------------------
# Declaration hygiene and thread entries
# ---------------------------------------------------------------------------


def check_declarations(model: RepoModel, decls: Declarations) -> list[str]:
    """Stale/duplicate declarations: every table entry must name a live
    class + attribute, GUARDED_BY must name a lock the class owns, and no
    attribute may be declared twice."""
    violations: list[str] = []
    seen: dict[str, str] = {}
    for class_name in sorted(decls.shared_classes):
        if class_name not in model.classes:
            violations.append(
                f"{CONCURRENCY_MODULE}: SHARED_CLASSES names {class_name}, "
                "which is not a class in the checked tree"
            )
    for table in DECLARATION_TABLES:
        for key, value in sorted(decls.tables[table].items()):
            if key in seen:
                violations.append(
                    f"{CONCURRENCY_MODULE}: {key} is declared in both "
                    f"{seen[key]} and {table}"
                )
                continue
            seen[key] = table
            class_name, _, attr = key.partition(".")
            info = model.classes.get(class_name)
            if info is None or not attr:
                violations.append(
                    f"{CONCURRENCY_MODULE}: stale {table} entry {key!r}: "
                    f"no class named {class_name} in the checked tree"
                )
                continue
            attrs_in_chain: set[str] = set()
            for chained in model.chain(class_name):
                attrs_in_chain |= chained.assigned_attrs
            if attr not in attrs_in_chain:
                violations.append(
                    f"{CONCURRENCY_MODULE}: stale {table} entry {key!r}: "
                    f"{class_name} never assigns attribute {attr!r}"
                )
                continue
            if table == "GUARDED_BY" and value not in model.lock_attrs_of(
                class_name
            ):
                violations.append(
                    f"{CONCURRENCY_MODULE}: GUARDED_BY entry {key!r} names "
                    f"lock {value!r}, which {class_name} does not own"
                )
    return violations


def check_thread_entries(model: RepoModel, decls: Declarations) -> list[str]:
    """Every class spawning worker threads must be in the checked set."""
    checked = checked_classes(model, decls)
    violations: list[str] = []
    for entry in model.entries:
        if entry.kind != "thread-spawn" or entry.owner is None:
            continue
        if entry.owner not in checked:
            violations.append(
                f"{entry.module}:{entry.lineno}: class {entry.owner} spawns "
                "threads but owns no lock and is not declared in "
                "SHARED_CLASSES"
            )
    return violations


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run(root: Path) -> list[str]:
    """All violations for a repo rooted at ``root``."""
    concurrency_path = root / CONCURRENCY_MODULE
    if not concurrency_path.exists():
        raise SystemExit(
            f"concurrency_lint: no declaration module at {concurrency_path}"
        )
    decls = load_declarations(concurrency_path)
    model = build_model(root)
    violations = check_declarations(model, decls)
    violations.extend(check_mutations(model, decls))
    _, order_violations = check_lock_order(model)
    violations.extend(order_violations)
    violations.extend(check_thread_entries(model, decls))
    return violations


def render_inventory(root: Path) -> str:
    """Human-readable thread-entry and lock inventory."""
    decls = load_declarations(root / CONCURRENCY_MODULE)
    model = build_model(root)
    edges, _ = check_lock_order(model)
    lines = ["== thread entry points =="]
    for entry in model.entries:
        owner = f" (class {entry.owner})" if entry.owner else ""
        lines.append(f"  [{entry.kind}] {entry.module}:{entry.lineno}{owner}")
    lines.append("== locks ==")
    for name in sorted(checked_classes(model, decls)):
        info = model.classes[name]
        for attr in sorted(model.lock_attrs_of(name) & info.lock_attrs):
            lines.append(f"  {name}.{attr} ({info.module})")
    lines.append("== static lock-order edges ==")
    for source in sorted(edges):
        for target in sorted(edges[source]):
            lines.append(f"  {source} -> {target}")
    lines.append(
        f"== checked classes: {len(checked_classes(model, decls))} =="
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (defaults to the checkout containing this file)",
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="print the thread-entry and lock inventory instead of linting",
    )
    options = parser.parse_args(argv)
    if options.inventory:
        print(render_inventory(options.root))
        return 0
    violations = run(options.root)
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"concurrency_lint: {len(violations)} violation(s)", file=sys.stderr
        )
        return 1
    print("concurrency_lint: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
