"""Black-box smoke of the HTTP serving layer, driven exactly like CI does.

Boots a :class:`repro.serve.ProteusServer` over a throwaway engine on an
ephemeral loopback port and drives it with plain ``urllib`` — no test
framework, no white-box access:

1. ``POST /v1/query`` returns 200 with the expected columnar rows,
2. an in-flight query (held open by scripted slow faults) is cancelled via
   ``DELETE /v1/query/<id>``: the cancel returns 200 and the query
   surfaces as 499 with ``RES002`` in the body,
3. ``GET /metrics`` returns 200 with the exact Prometheus v0.0.4 content
   type, a single trailing newline and the serving counters present,
4. after ``stop()``, no ``proteus-worker-*`` / ``proteus-http-*`` thread
   survives.

Any deviation exits non-zero, printing what failed.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

FAILURES: list[str] = []


def check(condition: bool, message: str) -> None:
    print(("ok   " if condition else "FAIL ") + message)
    if not condition:
        FAILURES.append(message)


def request(url: str, method: str = "GET", payload: dict | None = None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def main() -> int:
    from repro import ProteusEngine, ProteusServer
    from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
    from repro.resilience import FaultInjector, FaultPlan, FaultSpec

    with tempfile.NamedTemporaryFile(
        "w", suffix=".csv", delete=False
    ) as handle:
        handle.write("id,qty,price\n")
        for i in range(240):
            handle.write(f"{i},{i % 7},{float(i)}\n")
        csv_path = handle.name

    engine = ProteusEngine(
        enable_codegen=False, enable_caching=False, vectorized_batch_size=16
    )
    engine.register_csv("items", csv_path)

    server = ProteusServer(engine)
    server.start()
    print(f"serving on {server.url}")
    try:
        # 1. Plain query.
        status, _, body = request(
            server.url + "/v1/query",
            "POST",
            {"query": "select count(*) as n, sum(price) as total from items"},
        )
        payload = json.loads(body)
        check(status == 200, f"POST /v1/query -> {status}")
        check(
            payload.get("data") == {"n": [240], "total": [28680.0]},
            f"query rows: {payload.get('data')}",
        )

        # 2. Cancel an in-flight query from a second connection.  Persistent
        # slow faults keep the scan busy; the sleep hook tells us when the
        # query is actually scanning.
        scanning = threading.Event()

        def slow_sleep(seconds: float) -> None:
            scanning.set()
            time.sleep(seconds)

        engine.plugins["csv"].install_fault_injector(
            FaultInjector(
                FaultPlan(
                    [
                        FaultSpec(
                            kind="slow",
                            at_call=call,
                            times=None,
                            delay_seconds=0.02,
                        )
                        for call in range(1, 33)
                    ]
                ),
                sleep=slow_sleep,
            )
        )
        outcome: dict = {}

        def client() -> None:
            outcome["response"] = request(
                server.url + "/v1/query",
                "POST",
                {
                    "query": "select sum(price) as total from items",
                    "query_id": "smoke-1",
                },
            )

        thread = threading.Thread(target=client)
        thread.start()
        check(scanning.wait(10.0), "query started scanning")
        status, _, body = request(
            server.url + "/v1/query/smoke-1", method="DELETE"
        )
        check(status == 200, f"DELETE /v1/query/smoke-1 -> {status}")
        thread.join()
        status, _, body = outcome["response"]
        payload = json.loads(body)
        check(status == 499, f"cancelled query -> {status}")
        check(
            payload.get("error", {}).get("code") == "RES002",
            f"cancelled body code: {payload.get('error')}",
        )
        engine.plugins["csv"].install_fault_injector(None)

        # 3. Metrics scrape: exact wire bytes.
        status, headers, body = request(server.url + "/metrics")
        check(status == 200, f"GET /metrics -> {status}")
        check(
            headers.get("Content-Type") == PROMETHEUS_CONTENT_TYPE,
            f"content type: {headers.get('Content-Type')!r}",
        )
        check(
            body.endswith(b"\n") and not body.endswith(b"\n\n"),
            "exactly one trailing newline",
        )
        check(
            b"proteus_http_requests_total" in body,
            "serving counters exported",
        )

        status, _, body = request(server.url + "/healthz")
        check(status == 200, f"GET /healthz -> {status}")
    finally:
        server.stop()

    # 4. Leak check: nothing the server or the engine spawned survives.
    deadline = time.monotonic() + 5.0
    prefixes = ("proteus-worker", "proteus-http")
    while time.monotonic() < deadline:
        leaked = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith(prefixes)
        ]
        if not leaked:
            break
        time.sleep(0.01)
    check(not leaked, f"no leaked threads at shutdown (found: {leaked})")

    if FAILURES:
        print(f"\nsmoke FAILED ({len(FAILURES)} check(s))")
        return 1
    print("\nsmoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
