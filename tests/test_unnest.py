"""Differential tests for the batch-native unnest subsystem.

Covers:

* inner and outer unnest over the JSON plug-in across all four execution
  tiers (codegen, vectorized-parallel, vectorized, volcano), asserting
  identical results and the expected tier attribution,
* empty and explicitly-null nested collections,
* nested-in-nested unnest (a collection inside an already-unnested element,
  flattened column-backed by the batch tiers),
* unnest under joins and under global / grouped aggregates,
* worker counts 1/2/8: the parallel tier's morsel-ordered assembly must
  reproduce the serial tier's row order exactly,
* unit coverage of the ``scan_unnest_batch`` plug-in API (native JSON
  offset-vector implementation and the generic per-parent fallback) and of
  the nullable-bool materialization fix.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro import ProteusEngine
from repro.core import types as t
from repro.core.physical import PhysUnnest
from repro.plugins.base import InputPlugin, flatten_collections
from repro.plugins.json_plugin import JsonPlugin
from repro.storage.memory import MemoryManager

ORDER_COUNT = 240

ORDERS_SCHEMA = t.make_schema(
    {
        "okey": "int",
        "total": "float",
        "origin": {"country": "string"},
        "lines": [
            {
                "item": "int",
                "qty": "int",
                "price": "float",
                "subs": [{"s": "int"}],
            }
        ],
    }
)

ITEMS_SCHEMA = t.make_schema({"id": "int", "label": "string"})

FLAGS_SCHEMA = t.make_schema({"id": "int", "active": "bool"})

#: Small batches so the small datasets exercise many batches and morsels.
BATCH_SIZE = 32


def expected_orders() -> list[dict]:
    orders = []
    for i in range(ORDER_COUNT):
        lines = [
            {
                "item": j,
                "qty": j + 1,
                "price": round((j + 1) * 3.0, 2),
                "subs": [{"s": j * 10 + k} for k in range(j % 3)],
            }
            for j in range(i % 5)
        ]
        if i % 7 == 0:
            lines = []  # empty collection
        order = {
            "okey": i,
            "total": round(i * 2.5, 2),
            "origin": {"country": "CH" if i % 2 else "US"},
            "lines": lines,
        }
        if i % 11 == 0:
            order["lines"] = None  # explicit null collection
        orders.append(order)
    return orders


@pytest.fixture(scope="module")
def workload_dir(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("unnest_workloads")
    with open(directory / "orders.json", "w", encoding="utf-8") as handle:
        for order in expected_orders():
            handle.write(json.dumps(order) + "\n")
    with open(directory / "items.json", "w", encoding="utf-8") as handle:
        for i in range(6):
            handle.write(json.dumps({"id": i, "label": f"item{i}"}) + "\n")
    with open(directory / "flags.json", "w", encoding="utf-8") as handle:
        for i in range(150):
            record = {"id": i, "active": None if i % 3 == 0 else (i % 2 == 0)}
            if i % 5 == 0:
                record.pop("active")  # field absent entirely
            handle.write(json.dumps(record) + "\n")
    return str(directory)


def _make_engine(workload_dir: str, **kwargs) -> ProteusEngine:
    engine = ProteusEngine(
        enable_caching=False, vectorized_batch_size=BATCH_SIZE, **kwargs
    )
    engine.register_json(
        "orders", os.path.join(workload_dir, "orders.json"), schema=ORDERS_SCHEMA
    )
    engine.register_json(
        "items", os.path.join(workload_dir, "items.json"), schema=ITEMS_SCHEMA
    )
    engine.register_json(
        "flags", os.path.join(workload_dir, "flags.json"), schema=FLAGS_SCHEMA
    )
    return engine


@pytest.fixture(scope="module")
def volcano_engine(workload_dir):
    return _make_engine(
        workload_dir, enable_codegen=False, enable_vectorized=False
    )


@pytest.fixture(scope="module")
def vectorized_engine(workload_dir):
    return _make_engine(workload_dir, enable_codegen=False)


@pytest.fixture(scope="module")
def parallel_engine(workload_dir):
    return _make_engine(workload_dir, enable_codegen=False, parallel_workers=4)


@pytest.fixture(scope="module")
def codegen_engine(workload_dir):
    return _make_engine(workload_dir)


def _assert_rows_match(actual, expected, query="", ordered=True):
    assert len(actual) == len(expected), (query, len(actual), len(expected))
    if not ordered:
        actual = sorted(actual, key=repr)
        expected = sorted(expected, key=repr)
    for index, (left, right) in enumerate(zip(actual, expected)):
        assert len(left) == len(right), (query, index)
        for a, b in zip(left, right):
            if isinstance(a, float) and isinstance(b, float):
                assert math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12) or (
                    math.isnan(a) and math.isnan(b)
                ), (query, index, a, b)
            else:
                assert a == b, (query, index, a, b)


INNER_QUERIES = [
    # Plain inner unnest: projection and element predicate.
    "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item, l.qty)",
    "for { o <- orders, l <- o.lines, l.qty > 2 } yield bag (o.okey, l.item)",
    # Unnest under global aggregates.
    "for { o <- orders, l <- o.lines } yield count",
    "for { o <- orders, l <- o.lines, l.qty > 1 } yield sum (l.price)",
    # Nested-in-nested (column-backed in the batch tiers).
    "for { o <- orders, l <- o.lines, s <- l.subs } yield bag (o.okey, s.s)",
    "for { o <- orders, l <- o.lines, s <- l.subs, s.s > 10 } yield count",
]

OUTER_QUERIES = [
    # Outer unnest keeps parents with empty / null collections.
    "for { o <- orders, l <- outer o.lines } yield bag (o.okey, l.item)",
    "for { o <- orders, l <- outer o.lines } yield count",
    # A filter over the element after an outer unnest drops the null rows
    # (missing comparisons are false) — standard LEFT JOIN + WHERE semantics.
    "for { o <- orders, l <- outer o.lines, l.qty > 2 } yield bag (o.okey, l.item)",
    # Outer-in-outer nested unnest.
    "for { o <- orders, l <- outer o.lines, s <- outer l.subs } "
    "yield bag (o.okey, s.s)",
]

JOIN_QUERIES = [
    # Unnest under a join: the unnested element joins a second dataset.
    "for { o <- orders, l <- o.lines, i <- items, l.item = i.id } "
    "yield bag (o.okey, i.label)",
    "for { o <- orders, l <- o.lines, i <- items, l.item = i.id, l.qty > 1 } "
    "yield count",
]


def grouped_queries():
    """Unnest under grouped aggregates — the comprehension frontend has no
    GROUP BY clause, so the comprehensions are built programmatically."""
    from repro.core.calculus import Comprehension, DatasetSource, Generator, PathSource
    from repro.core.expressions import AggregateCall, FieldRef, OutputColumn

    generators = [
        Generator("o", DatasetSource("orders")),
        Generator("l", PathSource("o", ("lines",))),
    ]
    by_parent = Comprehension(
        monoid="bag",
        head=[
            OutputColumn("okey", FieldRef("o", ("okey",))),
            OutputColumn("n", AggregateCall("count", FieldRef("l", ("item",)))),
        ],
        qualifiers=list(generators),
        group_by=[FieldRef("o", ("okey",))],
    )
    by_element = Comprehension(
        monoid="bag",
        head=[
            OutputColumn("qty", FieldRef("l", ("qty",))),
            OutputColumn("total", AggregateCall("sum", FieldRef("l", ("price",)))),
        ],
        qualifiers=list(generators),
        group_by=[FieldRef("l", ("qty",))],
    )
    return [("group-by-parent", by_parent), ("group-by-element", by_element)]


@pytest.mark.parametrize("query", INNER_QUERIES + OUTER_QUERIES)
def test_four_tiers_agree(
    volcano_engine, vectorized_engine, parallel_engine, codegen_engine, query
):
    reference = volcano_engine.query(query)
    assert reference.tier == "volcano"
    vectorized = vectorized_engine.query(query)
    assert vectorized.tier == "vectorized", query
    parallel = parallel_engine.query(query)
    assert parallel.tier == "vectorized-parallel", query
    codegen = codegen_engine.query(query)
    # Outer unnest (and nested-in-nested) decline codegen and land on a
    # batch tier; everything else compiles.
    assert codegen.tier in ("codegen", "vectorized"), query
    _assert_rows_match(vectorized.rows, reference.rows, query, ordered=False)
    _assert_rows_match(codegen.rows, reference.rows, query, ordered=False)
    # The parallel tier must reproduce the serial batch tier's order exactly.
    _assert_rows_match(parallel.rows, vectorized.rows, query)


@pytest.mark.parametrize("query", JOIN_QUERIES)
def test_unnest_under_joins(
    volcano_engine, vectorized_engine, parallel_engine, codegen_engine, query
):
    reference = volcano_engine.query(query)
    vectorized = vectorized_engine.query(query)
    assert vectorized.tier == "vectorized", query
    parallel = parallel_engine.query(query)
    # The optimizer may flip the probe side onto the tiny joined table, in
    # which case the driving scan legitimately fits one morsel and the
    # cascade serves the query serially.
    assert parallel.tier in ("vectorized-parallel", "vectorized"), query
    codegen = codegen_engine.query(query)
    assert codegen.tier in ("codegen", "vectorized"), query
    _assert_rows_match(vectorized.rows, reference.rows, query, ordered=False)
    _assert_rows_match(codegen.rows, reference.rows, query, ordered=False)
    _assert_rows_match(parallel.rows, vectorized.rows, query)


@pytest.mark.parametrize(
    "label,comprehension", grouped_queries(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_unnest_under_grouped_aggregates(
    volcano_engine, vectorized_engine, parallel_engine, codegen_engine,
    label, comprehension,
):
    reference = volcano_engine.query(comprehension)
    assert reference.tier == "volcano"
    vectorized = vectorized_engine.query(comprehension)
    assert vectorized.tier == "vectorized", label
    parallel = parallel_engine.query(comprehension)
    assert parallel.tier == "vectorized-parallel", label
    codegen = codegen_engine.query(comprehension)
    assert codegen.tier == "codegen", label
    _assert_rows_match(vectorized.rows, reference.rows, label, ordered=False)
    _assert_rows_match(codegen.rows, reference.rows, label, ordered=False)
    _assert_rows_match(parallel.rows, vectorized.rows, label)


def test_outer_unnest_declines_codegen_serves_batch(codegen_engine):
    result = codegen_engine.query(
        "for { o <- orders, l <- outer o.lines } yield bag (o.okey, l.item)"
    )
    assert result.tier == "vectorized"
    # Parents with empty/null collections surface a null child row.
    null_rows = [row for row in result.rows if row[1] is None]
    empties = sum(
        1 for order in expected_orders() if not order["lines"]
    )
    assert len(null_rows) == empties
    assert result.profile.unnest_output_rows == len(result.rows)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_worker_counts_reproduce_serial_order(
    workload_dir, vectorized_engine, workers
):
    engine = _make_engine(
        workload_dir, enable_codegen=False, parallel_workers=workers
    )
    for query in INNER_QUERIES + OUTER_QUERIES + JOIN_QUERIES:
        expected = vectorized_engine.query(query)
        actual = engine.query(query)
        _assert_rows_match(actual.rows, expected.rows, query)
    for label, comprehension in grouped_queries():
        expected = vectorized_engine.query(comprehension)
        actual = engine.query(comprehension)
        _assert_rows_match(actual.rows, expected.rows, label)


def test_explain_reports_unnest_strategy(vectorized_engine):
    text = vectorized_engine.explain(
        "for { o <- orders, l <- outer o.lines, s <- l.subs } "
        "yield bag (o.okey, s.s)"
    )
    assert "== unnest strategy ==" in text
    assert "l <- o.lines (outer): offset-vector" in text
    assert "s <- l.subs (inner): column-backed" in text
    assert "vectorized" in text  # tier cascade section still present


def test_unnest_profile_counter(vectorized_engine):
    result = vectorized_engine.query(
        "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item)"
    )
    flattened = sum(len(o["lines"] or ()) for o in expected_orders())
    assert result.profile.unnest_output_rows == flattened
    assert len(result.rows) == flattened


# ---------------------------------------------------------------------------
# Plug-in API unit coverage
# ---------------------------------------------------------------------------


@pytest.fixture()
def json_plugin_and_dataset(workload_dir):
    engine = _make_engine(workload_dir)
    plugin = engine.plugins["json"]
    dataset = engine.catalog.get("orders")
    return plugin, dataset


def test_scan_unnest_batch_repeats(json_plugin_and_dataset):
    plugin, dataset = json_plugin_and_dataset
    oids = np.arange(ORDER_COUNT, dtype=np.int64)
    batch = plugin.scan_unnest_batch(dataset, ("lines",), [("item",)], oids)
    orders = expected_orders()
    expected_repeats = [len(o["lines"] or ()) for o in orders]
    assert batch.repeats.tolist() == expected_repeats
    assert batch.count == sum(expected_repeats)
    flat_items = [
        line["item"] for o in orders for line in (o["lines"] or ())
    ]
    assert batch.column(("item",)).tolist() == flat_items
    # The derived per-element positions match one np.repeat broadcast.
    positions = batch.parent_positions()
    assert len(positions) == batch.count
    assert positions.tolist() == [
        slot for slot, n in enumerate(expected_repeats) for _ in range(n)
    ]


def test_scan_unnest_batch_outer_null_rows(json_plugin_and_dataset):
    plugin, dataset = json_plugin_and_dataset
    oids = np.arange(ORDER_COUNT, dtype=np.int64)
    batch = plugin.scan_unnest_batch(
        dataset, ("lines",), [("item",)], oids, outer=True
    )
    assert (batch.repeats >= 1).all()
    items = batch.column(("item",))
    orders = expected_orders()
    empties = sum(1 for o in orders if not o["lines"])
    missing = (
        np.isnan(items).sum()
        if items.dtype.kind == "f"
        else sum(1 for v in items.tolist() if v is None)
    )
    assert missing == empties


def test_generic_fallback_matches_native(json_plugin_and_dataset):
    """The per-parent round-trip fallback and the native offset-vector path
    must flatten identically (the benchmark gates their speed apart)."""
    plugin, dataset = json_plugin_and_dataset
    oids = np.arange(0, ORDER_COUNT, 3, dtype=np.int64)
    for outer in (False, True):
        native = plugin.scan_unnest_batch(
            dataset, ("lines",), [("item",), ("qty",)], oids, outer=outer
        )
        fallback = InputPlugin.scan_unnest_batch(
            plugin, dataset, ("lines",), [("item",), ("qty",)], oids, outer=outer
        )
        assert native.count == fallback.count
        assert native.repeats.tolist() == fallback.repeats.tolist()
        for path in (("item",), ("qty",)):
            # The two paths may encode missing differently (NaN float vs
            # None object) — normalize through the engine-wide missing rule.
            left = [
                None if t.is_missing(v) else v for v in native.column(path).tolist()
            ]
            right = [
                None if t.is_missing(v) else v
                for v in fallback.column(path).tolist()
            ]
            assert left == right


def test_flatten_collections_kernel():
    collections = [[{"x": 1}, {"x": 2}], [], None, [{"x": 3}]]
    inner = flatten_collections(collections, [("x",)])
    assert inner.repeats.tolist() == [2, 0, 0, 1]
    assert inner.column(("x",)).tolist() == [1, 2, 3]
    outer = flatten_collections(collections, [("x",)], outer=True)
    assert outer.repeats.tolist() == [2, 1, 1, 1]
    assert outer.column(("x",)).tolist() == [1, 2, None, None, 3]


def test_scan_unnest_still_serves_codegen_runtime(json_plugin_and_dataset):
    plugin, dataset = json_plugin_and_dataset
    buffers = plugin.scan_unnest(dataset, ("lines",), [("qty",)])
    orders = expected_orders()
    expected = [l["qty"] for o in orders for l in (o["lines"] or ())]
    assert buffers.count == len(expected)
    assert buffers.column(("qty",)).tolist() == expected
    assert len(buffers.parent_positions) == buffers.count


def test_unnest_planned_mode(vectorized_engine):
    vectorized_engine.query(
        "for { o <- orders, l <- o.lines, s <- l.subs } yield count"
    )
    plan = vectorized_engine.last_plan
    modes = {
        node.var: node.planned_mode()[0]
        for node in plan.walk()
        if isinstance(node, PhysUnnest)
    }
    assert modes == {"l": "offset-vector", "s": "column-backed"}


def test_outer_modifier_parses_only_for_paths(workload_dir):
    engine = _make_engine(workload_dir)
    with pytest.raises(Exception, match="outer modifier"):
        engine.query("for { o <- outer orders } yield count")


# ---------------------------------------------------------------------------
# Nullable-bool materialization (ROADMAP "known gap")
# ---------------------------------------------------------------------------


NULLABLE_BOOL_QUERIES = [
    "SELECT COUNT(*) FROM flags WHERE active",
    "SELECT COUNT(*) FROM flags WHERE NOT active",
    "SELECT COUNT(*) FROM flags WHERE active = false",
    "SELECT id, active FROM flags ORDER BY active, id LIMIT 12",
    "SELECT id, active FROM flags ORDER BY active DESC, id",
]


@pytest.mark.parametrize("query", NULLABLE_BOOL_QUERIES)
def test_nullable_bool_agrees_across_tiers(
    volcano_engine, vectorized_engine, parallel_engine, codegen_engine, query
):
    reference = volcano_engine.query(query)
    for engine in (vectorized_engine, parallel_engine, codegen_engine):
        result = engine.query(query)
        _assert_rows_match(result.rows, reference.rows, query, ordered=False)


def test_missing_bool_surfaces_as_none(vectorized_engine):
    result = vectorized_engine.query("SELECT id, active FROM flags")
    by_id = dict(result.rows)
    assert by_id[0] is None  # absent field
    assert by_id[3] is None  # explicit null
    assert by_id[2] is True
    assert by_id[7] is False
