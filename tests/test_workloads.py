"""Tests of the workload generators and query specifications."""

import json
import os

import pytest

from repro.workloads import symantec, templates, tpch
from repro.workloads.query_spec import (
    JoinSpec,
    QuerySpec,
    TableRef,
    UnnestSpec,
    agg,
    col,
    count_star,
    filt,
)


# -- query specs ----------------------------------------------------------------


def test_query_spec_sql_rendering():
    spec = QuerySpec(
        "q",
        [TableRef("orders", "o"), TableRef("lineitem", "l")],
        [count_star(), agg("max", "o", "o_totalprice")],
        [filt("l", "l_orderkey", "<", 100)],
        joins=[JoinSpec("o", ("o_orderkey",), "l", ("l_orderkey",))],
    )
    sql = spec.to_sql()
    assert "JOIN lineitem l ON o.o_orderkey = l.l_orderkey" in sql
    assert "COUNT(*) AS cnt" in sql
    assert "WHERE l.l_orderkey < 100" in sql
    assert spec.to_text() == sql


def test_query_spec_comprehension_rendering():
    spec = QuerySpec(
        "q",
        [TableRef("orders_denorm", "o")],
        [count_star()],
        [filt("li", "l_orderkey", "<", 10)],
        unnest=UnnestSpec("o", ("lineitems",), "li"),
    )
    text = spec.to_text()
    assert text.startswith("for {")
    assert "li <- o.lineitems" in text
    assert text.endswith("yield count")


def test_query_spec_string_literal_escaping():
    spec = QuerySpec(
        "q",
        [TableRef("t", "t")],
        [count_star()],
        [filt("t", "label", "=", "o'brien")],
    )
    assert "'obrien'" in spec.to_sql()


def test_query_spec_helpers():
    assert count_star().aggregate == "count"
    assert agg("max", "l", "a", "b").path == ("a", "b")
    assert col("l", "x").output == "x"
    assert filt("l", "a.b", "<", 1).path == ("a", "b")


# -- TPC-H generator -------------------------------------------------------------


def test_tpch_generation_is_deterministic():
    first = tpch.generate(scale=0.05, seed=7)
    second = tpch.generate(scale=0.05, seed=7)
    assert (first.lineitem["l_orderkey"] == second.lineitem["l_orderkey"]).all()
    different = tpch.generate(scale=0.05, seed=8)
    assert not (first.lineitem["l_orderkey"] == different.lineitem["l_orderkey"]).all()


def test_tpch_ratio_and_threshold():
    tables = tpch.generate(scale=0.1)
    assert tables.num_lineitems == 600
    assert tables.num_orders == 150
    assert tables.lineitem["l_orderkey"].max() <= tables.num_orders
    threshold = tables.orderkey_threshold(0.5)
    fraction = (tables.lineitem["l_orderkey"] < threshold).mean()
    assert 0.35 < fraction < 0.65


def test_tpch_materialize_all_formats(tmp_path):
    files = tpch.materialize(str(tmp_path), scale=0.02)
    for path in (files.lineitem_csv, files.orders_csv, files.lineitem_json,
                 files.orders_json, files.orders_denormalized_json):
        assert os.path.exists(path)
    assert os.path.isdir(files.lineitem_columns)
    with open(files.orders_denormalized_json) as handle:
        first = json.loads(handle.readline())
    assert "lineitems" in first and isinstance(first["lineitems"], list)
    # The JSON lineitems stream has a consistent field order (fixed schema).
    with open(files.lineitem_json) as handle:
        keys = [tuple(json.loads(line)) for line in list(handle)[:5]]
    assert len(set(keys)) == 1


def test_tpch_shuffled_json_field_order(tmp_path):
    tables = tpch.generate(scale=0.02)
    path = str(tmp_path / "shuffled.json")
    tpch.write_json(path, tables.lineitem, shuffle_field_order=True)
    with open(path) as handle:
        keys = {tuple(json.loads(line)) for line in handle}
    assert len(keys) > 1


# -- template queries ---------------------------------------------------------------


def test_projection_selection_join_groupby_templates():
    projection = templates.projection_query("lineitem", 100, "4agg", 0.5)
    assert len(projection.projections) == 4
    selection = templates.selection_query("lineitem", 100, 4, 0.5)
    assert len(selection.filters) == 4
    join = templates.join_query("orders", "lineitem", 100, "2agg", 0.2)
    assert join.joins and len(join.projections) == 2
    group = templates.groupby_query("lineitem", 100, 3, 0.1)
    assert group.group_by and len(group.projections) == 4
    unnest = templates.unnest_query("orders_denorm", 100, 0.1)
    assert unnest.unnest is not None
    with pytest.raises(ValueError):
        templates.projection_query("lineitem", 100, "bogus", 0.5)


# -- Symantec workload ------------------------------------------------------------------


def test_symantec_materialization(tmp_path):
    files = symantec.materialize(str(tmp_path), num_json=50, num_csv=100, num_binary=120)
    assert os.path.exists(files.json_path)
    assert os.path.exists(files.csv_path)
    assert os.path.isdir(files.binary_dir)
    with open(files.json_path) as handle:
        objects = [json.loads(line) for line in handle]
    assert len(objects) == 50
    assert {"mail_id", "origin", "urls"} <= set(objects[0])
    # Arbitrary field order across objects.
    orders = {tuple(obj) for obj in objects}
    assert len(orders) > 1


def test_symantec_workload_shape(tmp_path):
    files = symantec.materialize(str(tmp_path), num_json=50, num_csv=100, num_binary=120)
    workload = symantec.symantec_workload(files)
    assert len(workload) == 50
    phases = [query.phase for query in workload]
    assert phases.count("BIN") == 8
    assert phases.count("CSV") == 7
    assert phases.count("JSON") == 10
    assert phases.count("BINCSVJSON") == 10
    assert [query.index for query in workload] == list(range(1, 51))
    # Q39 joins CSV and JSON (the PostgreSQL outlier of Table 3).
    q39 = workload[38].spec
    assert sorted(q39.datasets()) == ["classification", "spam_mails"]
    # Every query renders to text for Proteus.
    for query in workload:
        text = query.spec.to_text()
        assert text.lower().startswith(("select", "for"))
