"""Observability subsystem tests: tracing, metrics, EXPLAIN ANALYZE, and
cross-tier profile-counter consistency.

The differential tests pin the counter contract the tracing layer reports
against: ``rows_scanned`` / ``output_rows`` / ``unnest_output_rows`` must be
*identical* across all four execution tiers for the same query, so a span or
metric means the same thing no matter which tier served the execution.
"""

from __future__ import annotations

import pytest

from repro.core.codegen.runtime import ExecutionProfile
from repro.obs import MetricsRegistry, Tracer
from repro.obs.trace import PHASES, TraceBuilder

from tests.conftest import make_engine

# -- differential counter consistency -----------------------------------------

#: Tier name -> engine kwargs forcing that tier to serve.  Small batches and
#: two workers make the parallel tier actually split work into morsels.
TIER_CONFIGS = {
    "codegen": {},
    "vectorized-parallel": {
        "enable_codegen": False,
        "parallel_workers": 2,
        "vectorized_batch_size": 16,
    },
    "vectorized": {
        "enable_codegen": False,
        "enable_parallel": False,
        "vectorized_batch_size": 16,
    },
    "volcano": {"enable_codegen": False, "enable_vectorized": False},
}

#: Queries spanning scan/filter/aggregate/group-by/join/unnest shapes.  No
#: bare LIMIT queries: the scan counters deliberately count pre-predicate
#: work, which early termination makes tier-dependent.
DIFFERENTIAL_QUERIES = [
    "SELECT SUM(price) AS s, COUNT(*) AS n FROM items_json WHERE qty < 5",
    "SELECT qty, COUNT(*) AS n, MAX(price) AS m FROM items_bin "
    "GROUP BY qty ORDER BY qty",
    "SELECT COUNT(*) FROM items_json j JOIN items_csv c ON j.id = c.id "
    "WHERE j.qty < 3",
    "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item, l.qty)",
    "for { o <- orders, l <- o.lines, l.qty > 1 } yield sum (l.price)",
]


@pytest.fixture(scope="module")
def tier_engines(tmp_path_factory, request):
    # Rebuild the session datasets via the paths fixture indirectly: the
    # conftest data_dir fixture is session-scoped, so reuse it through a
    # module-scoped request.
    data_dir = request.getfixturevalue("data_dir")
    import os

    paths = {
        "items_csv": os.path.join(data_dir, "items.csv"),
        "items_json": os.path.join(data_dir, "items.json"),
        "orders_json": os.path.join(data_dir, "orders.json"),
        "items_columns": os.path.join(data_dir, "items_columns"),
        "items_rows": os.path.join(data_dir, "items_rows.bin"),
    }
    return {
        tier: make_engine(paths, enable_caching=False, **kwargs)
        for tier, kwargs in TIER_CONFIGS.items()
    }


@pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
def test_profile_counters_identical_across_tiers(tier_engines, query):
    profiles = {}
    rows = {}
    for tier, engine in tier_engines.items():
        result = engine.query(query)
        assert result.profile is not None
        assert result.profile.execution_tier == tier, (
            f"{tier} engine was served by {result.profile.execution_tier}"
        )
        profiles[tier] = result.profile
        rows[tier] = sorted(map(repr, result.rows))
    reference = profiles["volcano"]
    for tier, profile in profiles.items():
        assert profile.rows_scanned == reference.rows_scanned, tier
        assert profile.output_rows == reference.output_rows, tier
        assert profile.unnest_output_rows == reference.unnest_output_rows, tier
        assert rows[tier] == rows["volcano"], tier


# -- ExecutionProfile.merge regression ----------------------------------------


def test_merge_adopts_slowest_tier():
    merged = ExecutionProfile(execution_tier="codegen")
    merged.merge(ExecutionProfile(execution_tier="vectorized"))
    assert merged.execution_tier == "vectorized"
    # Merging a faster-tier fragment must not roll the attribution back.
    merged.merge(ExecutionProfile(execution_tier="codegen"))
    assert merged.execution_tier == "vectorized"
    merged.merge(ExecutionProfile(execution_tier="volcano"))
    assert merged.execution_tier == "volcano"


def test_merge_generated_code_flags_and_when_any_fragment_interpreted():
    merged = ExecutionProfile(used_generated_code=True, compiled_from_cache=True)
    merged.merge(
        ExecutionProfile(
            execution_tier="volcano",
            used_generated_code=False,
            compiled_from_cache=False,
        )
    )
    assert merged.used_generated_code is False
    assert merged.compiled_from_cache is False
    assert merged.execution_tier == "volcano"


def test_merge_keeps_additive_counters_additive():
    merged = ExecutionProfile(rows_scanned=10, output_rows=2, unnest_output_rows=1)
    merged.merge(
        ExecutionProfile(rows_scanned=5, output_rows=3, unnest_output_rows=4)
    )
    assert merged.rows_scanned == 15
    assert merged.output_rows == 5
    assert merged.unnest_output_rows == 5


# -- span tracing --------------------------------------------------------------


def test_traced_engine_records_phases_and_operator_spans(paths):
    engine = make_engine(paths, enable_tracing=True, enable_caching=False)
    engine.query("SELECT SUM(price) AS s FROM items_bin WHERE qty < 5")
    trace = engine.tracer.last()
    assert trace is not None
    phase_names = {span.name for span in trace.phases}
    assert {"parse", "plan", "analyze", "execute", "materialize"} <= phase_names
    assert all(name in PHASES for name in phase_names)
    assert all(span.seconds >= 0.0 for span in trace.phases)
    assert trace.operators, "no operator spans recorded"
    scan = trace.operator_span("scan:items_bin")
    assert scan is not None
    assert scan.rows_out == 120
    assert trace.elapsed_seconds > 0.0
    exported = trace.to_dict()
    assert exported["tier"] == trace.tier
    assert len(exported["operators"]) == len(trace.operators)


def test_trace_ring_buffer_is_bounded(paths):
    engine = make_engine(
        paths, enable_tracing=True, enable_caching=False, trace_capacity=2
    )
    for bound in (2, 4, 6):
        engine.query(f"SELECT COUNT(*) FROM items_csv WHERE qty < {bound}")
    traces = engine.tracer.traces()
    assert len(traces) == 2
    assert "qty < 4" in traces[0].query_text
    assert "qty < 6" in traces[1].query_text
    assert engine.tracer.last() is traces[-1]


def test_tracing_disabled_records_nothing(paths):
    engine = make_engine(paths, enable_caching=False)
    engine.query("SELECT COUNT(*) FROM items_csv")
    assert engine.tracer.traces() == []
    assert engine.tracer.last() is None


def test_tracer_spans_cover_every_tier(paths):
    for tier, kwargs in TIER_CONFIGS.items():
        engine = make_engine(
            paths, enable_tracing=True, enable_caching=False, **kwargs
        )
        result = engine.query(
            "SELECT SUM(price) AS s FROM items_json WHERE qty < 7"
        )
        assert result.profile.execution_tier == tier
        trace = engine.tracer.last()
        assert trace is not None and trace.tier == tier
        assert trace.operators, f"{tier} recorded no operator spans"
        total_rows = sum(span.rows_out for span in trace.operators)
        assert total_rows > 0, f"{tier} spans carry no row counts"


def test_trace_builder_keys_spans_by_plan_node():
    builder = TraceBuilder("q", None)
    first = builder.operator("scan:a")
    again = builder.operator("scan:a")
    other = builder.operator("scan:b")
    assert first is again
    assert other is not first
    first.add(seconds=0.5, rows_out=10, batches=1)
    first.add_batch(0.25, 4, 4)
    spans = builder.operator_spans()
    span = next(s for s in spans if s.name == "scan:a")
    assert span.seconds == pytest.approx(0.75)
    assert span.rows_out == 14
    assert span.batches == 2


def test_tracer_force_is_temporary():
    tracer = Tracer(enabled=False)
    with tracer.force():
        assert tracer.enabled
        builder = tracer.begin("q", None)
        assert builder is not None
        tracer.finish(builder, None, 0.0)
    assert not tracer.enabled
    assert tracer.begin("q2", None) is None
    assert len(tracer.traces()) == 1


# -- metrics registry ----------------------------------------------------------


def test_metrics_count_queries_by_tier(paths):
    engine = make_engine(paths, enable_caching=False)
    engine.query("SELECT COUNT(*) FROM items_csv")
    engine.query("SELECT COUNT(*) FROM items_json WHERE qty < 5")
    counter = engine.metrics.counter("proteus_queries_total")
    assert counter.value(tier="codegen") == 2
    histogram = engine.metrics.histogram("proteus_query_seconds")
    assert histogram.count == 2
    assert histogram.sum > 0.0


def test_metrics_record_tier_declines_with_codes(paths):
    engine = make_engine(
        paths, enable_caching=False, enable_codegen=False, enable_parallel=False
    )
    engine.query("SELECT COUNT(*) FROM items_csv")
    declines = engine.metrics.counter("proteus_tier_declines_total")
    samples = declines.samples()
    assert samples, "no tier declines recorded"
    tiers = {dict(key)["tier"] for key, _ in samples}
    assert "codegen" in tiers
    assert all(dict(key)["code"].startswith("TIER") for key, _ in samples)


def test_metrics_disabled_records_nothing(paths):
    engine = make_engine(paths, enable_metrics=False, enable_caching=False)
    engine.query("SELECT COUNT(*) FROM items_csv")
    exported = engine.metrics.to_dict()
    assert exported == {"slow_queries": []}


def test_cache_gauges_read_live_state(paths):
    engine = make_engine(paths)
    engine.query("SELECT SUM(price) FROM items_bin")
    engine.query("SELECT SUM(price) FROM items_bin")
    exported = engine.metrics.to_dict()
    assert exported["proteus_cache_lookups"]["value"] > 0
    assert 0.0 <= exported["proteus_cache_hit_rate"]["value"] <= 1.0
    scan_calls = exported["proteus_plugin_scan_calls"]["values"]
    assert any(value > 0 for value in scan_calls.values())


def test_slow_query_log_captures_trace(paths):
    engine = make_engine(
        paths,
        enable_tracing=True,
        enable_caching=False,
        slow_query_seconds=0.0,  # every query qualifies
    )
    engine.query("SELECT COUNT(*) FROM items_csv WHERE qty < 5")
    slow = engine.metrics.slow_queries()
    assert len(slow) == 1
    entry = slow[0]
    assert "items_csv" in entry["query"]
    assert entry["seconds"] >= 0.0
    assert entry["trace"]["operators"], "slow-query entry lost its trace"


def test_prometheus_rendering_shape():
    registry = MetricsRegistry()
    counter = registry.counter("proteus_test_total", "A test counter.")
    counter.inc(3, tier="codegen")
    counter.inc(1, tier="volcano")
    histogram = registry.histogram(
        "proteus_test_seconds", "A test histogram.", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(5.0)
    text = registry.render_prometheus()
    assert "# TYPE proteus_test_total counter" in text
    assert 'proteus_test_total{tier="codegen"} 3' in text
    assert 'proteus_test_total{tier="volcano"} 1' in text
    assert "# TYPE proteus_test_seconds histogram" in text
    assert 'proteus_test_seconds_bucket{le="0.1"} 1' in text
    assert 'proteus_test_seconds_bucket{le="+Inf"} 2' in text
    assert "proteus_test_seconds_count 2" in text


def test_registry_rejects_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("proteus_thing")
    with pytest.raises(ValueError):
        registry.histogram("proteus_thing")


def test_gauge_callback_mapping_labels():
    registry = MetricsRegistry()
    registry.gauge_callback(
        "proteus_plugin_bytes",
        lambda: {"csv": 10.0, "json": 20.0},
        callback_label="format",
    )
    text = registry.render_prometheus()
    assert 'proteus_plugin_bytes{format="csv"} 10' in text
    assert 'proteus_plugin_bytes{format="json"} 20' in text


# -- EXPLAIN ANALYZE -----------------------------------------------------------


@pytest.mark.parametrize("tier", list(TIER_CONFIGS))
def test_explain_analyze_reports_every_tier(paths, tier):
    engine = make_engine(paths, enable_caching=False, **TIER_CONFIGS[tier])
    report = engine.explain(
        "SELECT SUM(price) AS s FROM items_json WHERE qty < 5", analyze=True
    )
    assert "== explain analyze ==" in report
    assert f"tier: {tier}" in report
    assert "== plan: estimated vs actual ==" in report
    assert "est" in report and "actual" in report
    assert "== phases ==" in report
    assert "== tier cascade ==" in report


def test_explain_analyze_marks_prediction_agreement(engine):
    report = engine.explain("SELECT COUNT(*) FROM items_bin", analyze=True)
    assert "as predicted" in report or "DEMOTED" in report


def test_explain_analyze_leaves_tracing_disabled(paths):
    engine = make_engine(paths, enable_caching=False)
    assert not engine.tracer.enabled
    engine.explain("SELECT COUNT(*) FROM items_csv", analyze=True)
    assert not engine.tracer.enabled
    # The forced trace itself is retained for inspection.
    assert engine.tracer.last() is not None
    # Later ordinary queries are not traced.
    engine.query("SELECT COUNT(*) FROM items_csv WHERE qty < 2")
    assert len(engine.tracer.traces()) == 1


def test_explain_without_analyze_does_not_execute(paths):
    engine = make_engine(paths, enable_caching=False)
    report = engine.explain("SELECT COUNT(*) FROM items_csv")
    assert "== physical plan ==" in report
    assert "== explain analyze ==" not in report
    counter = engine.metrics.counter("proteus_queries_total")
    assert counter.samples() == []
