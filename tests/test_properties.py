"""Property-based tests (hypothesis) on the core data structures and on the
equivalence of the execution back-ends."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ProteusEngine
from repro.core import types as t
from repro.core.executor import radix
from repro.core.expressions import BinaryOp, FieldRef, Literal
from repro.core.normalizer import fold_constants
from repro.storage import structural_index as si
from repro.storage.binary_format import write_column_table

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# ---------------------------------------------------------------------------
# Radix join / grouping vs naive reference
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    left=st.lists(st.integers(min_value=-20, max_value=20), max_size=60),
    right=st.lists(st.integers(min_value=-20, max_value=20), max_size=60),
)
def test_radix_join_equivalent_to_naive(left, right):
    left_array = np.asarray(left, dtype=np.int64)
    right_array = np.asarray(right, dtype=np.int64)
    li, ri = radix.radix_join(left_array, right_array)
    got = set(zip(li.tolist(), ri.tolist()))
    expected = {
        (i, j)
        for i, lv in enumerate(left)
        for j, rv in enumerate(right)
        if lv == rv
    }
    assert got == expected


@SETTINGS
@given(
    keys=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=80),
)
def test_radix_group_counts_and_sums(keys):
    values = np.arange(len(keys), dtype=np.float64)
    grouping = radix.radix_group([np.asarray(keys)])
    counts = radix.group_aggregate("count", grouping.group_ids, grouping.num_groups)
    sums = radix.group_aggregate("sum", grouping.group_ids, grouping.num_groups, values)
    reference_counts: dict[int, int] = {}
    reference_sums: dict[int, float] = {}
    for key, value in zip(keys, values):
        reference_counts[key] = reference_counts.get(key, 0) + 1
        reference_sums[key] = reference_sums.get(key, 0.0) + value
    assert grouping.num_groups == len(reference_counts)
    for key, count, total in zip(grouping.key_arrays[0], counts, sums):
        assert reference_counts[int(key)] == int(count)
        assert reference_sums[int(key)] == pytest.approx(float(total))


# ---------------------------------------------------------------------------
# Structural indexes
# ---------------------------------------------------------------------------

_json_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=10),
)

_json_objects = st.lists(
    st.fixed_dictionaries(
        {"a": _json_values, "b": _json_values},
        optional={"c": _json_values, "nested": st.fixed_dictionaries({"x": _json_values})},
    ),
    min_size=1,
    max_size=15,
)


@SETTINGS
@given(objects=_json_objects)
def test_json_structural_index_spans_roundtrip(objects):
    data = ("\n".join(json.dumps(o) for o in objects) + "\n").encode()
    index = si.build_json_index(data)
    assert index.num_objects == len(objects)
    for position, record in enumerate(objects):
        for name, value in record.items():
            if isinstance(value, dict):
                continue
            span = index.field_span(position, name)
            assert span is not None
            start, end, _ = span
            assert json.loads(data[start:end]) == value
        span = index.field_span(position, "not_a_field")
        assert span is None


@SETTINGS
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.text(alphabet="abcdefgh", min_size=0, max_size=8),
        ),
        min_size=1,
        max_size=30,
    ),
    stride=st.integers(min_value=1, max_value=4),
)
def test_csv_structural_index_spans_roundtrip(rows, stride):
    lines = ["x,y,z"] + [f"{a},{b:.3f},{c}" for a, b, c in rows]
    data = ("\n".join(lines) + "\n").encode()
    index = si.build_csv_index(data, stride=stride)
    assert index.num_rows == len(rows)
    for row, (a, b, c) in enumerate(rows):
        start, end = index.field_span(data, row, 0)
        assert data[start:end].decode() == str(a)
        start, end = index.field_span(data, row, 2)
        assert data[start:end].decode() == c


# ---------------------------------------------------------------------------
# Constant folding preserves semantics
# ---------------------------------------------------------------------------


@SETTINGS
@given(
    a=st.integers(min_value=-100, max_value=100),
    b=st.integers(min_value=1, max_value=100),
    op=st.sampled_from(["+", "-", "*", "<", "<=", ">", ">=", "="]),
)
def test_fold_constants_matches_evaluation(a, b, op):
    expression = BinaryOp(op, Literal(a), Literal(b))
    folded = fold_constants(expression)
    assert isinstance(folded, Literal)
    assert folded.value == expression.evaluate({})


# ---------------------------------------------------------------------------
# Generated code vs Volcano interpreter vs NumPy reference on random data
# ---------------------------------------------------------------------------


@st.composite
def _filter_queries(draw):
    threshold_a = draw(st.integers(min_value=0, max_value=50))
    threshold_b = draw(st.integers(min_value=0, max_value=50))
    op_a = draw(st.sampled_from(["<", "<=", ">", ">="]))
    conjunction = draw(st.booleans())
    return threshold_a, op_a, threshold_b, conjunction


@SETTINGS
@given(
    values=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    query=_filter_queries(),
)
def test_engine_filter_aggregate_matches_reference(tmp_path_factory, values, query):
    threshold_a, op_a, threshold_b, conjunction = query
    directory = tmp_path_factory.mktemp("prop")
    columns = {
        "a": np.asarray(values, dtype=np.int64),
        "b": np.asarray([(v * 7) % 53 for v in values], dtype=np.int64),
    }
    schema = t.make_schema({"a": "int", "b": "int"})
    write_column_table(str(directory / "table"), columns, schema)

    where = f"a {op_a} {threshold_a}"
    if conjunction:
        where += f" AND b < {threshold_b}"
    sql = f"SELECT COUNT(*), SUM(b) FROM data WHERE {where}"

    ops = {"<": np.less, "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal}
    mask = ops[op_a](columns["a"], threshold_a)
    if conjunction:
        mask &= columns["b"] < threshold_b
    expected_count = int(mask.sum())
    expected_sum = float(columns["b"][mask].sum())

    for enable_codegen in (True, False):
        engine = ProteusEngine(enable_codegen=enable_codegen, enable_caching=False)
        engine.register_binary_columns("data", str(directory / "table"))
        result = engine.query(sql)
        assert result.rows[0][0] == expected_count
        assert float(result.rows[0][1]) == pytest.approx(expected_sum)
