"""Resilience subsystem: deadlines, cancellation, admission control, the
worker pool's failure semantics and the DebugLock acquire fix.

The fault-injection chaos coverage lives in ``test_chaos.py``; this module
covers the deterministic behaviours — a zero deadline aborts every tier at
its first check, cancellation interrupts mid-flight work, admission bounds
concurrency and memory, failures land in the metrics registry, and no worker
thread outlives an aborted query.
"""

from __future__ import annotations

import threading
import time

import pytest

from tests.conftest import make_engine
from repro.errors import (
    AdmissionRejectedError,
    MemoryBudgetError,
    ProteusError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.resilience import (
    AdmissionController,
    CancellationToken,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.storage.catalog import DataFormat

#: Engine configurations that pin each of the four execution tiers.
TIER_CONFIGS = {
    "codegen": {},
    "vectorized-parallel": {
        "enable_codegen": False,
        "parallel_workers": 2,
        "vectorized_batch_size": 16,
    },
    "vectorized": {"enable_codegen": False},
    "volcano": {
        "enable_codegen": False,
        "enable_vectorized": False,
        "volcano_check_stride": 1,
    },
}


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
def test_zero_timeout_aborts_every_tier(paths, tier):
    """``timeout=0`` expires at the first cooperative check of every tier:
    per kernel call (codegen), per morsel (parallel), per batch (vectorized),
    per stride (volcano)."""
    engine = make_engine(paths, enable_caching=False, **TIER_CONFIGS[tier])
    with pytest.raises(QueryTimeoutError) as info:
        engine.query("select sum(price) from items_csv where qty > 1", timeout=0)
    assert "[RES001]" in str(info.value)
    profile = engine.last_profile
    assert profile.execution_tier == "aborted"
    assert profile.aborted == "RES001"


def test_engine_default_timeout_applies(paths):
    engine = make_engine(paths, query_timeout_seconds=0, enable_caching=False)
    with pytest.raises(QueryTimeoutError):
        engine.query("select id from items_csv")
    # A per-call timeout overrides the engine default.
    result = engine.query("select count(*) from items_csv", timeout=30.0)
    assert result.rows == [(120,)]


def test_timeout_is_not_a_tier_demotion(paths):
    """A deadline on the codegen tier must surface as RES001 — not be
    swallowed by the runtime-demotion catch and retried on a lower tier
    (which would turn a 0s deadline into a successful slow query)."""
    engine = make_engine(paths, enable_caching=False)
    with pytest.raises(QueryTimeoutError):
        engine.query("select sum(price) from items_csv", timeout=0)
    reasons = engine.last_profile.tier_decline_reasons
    assert all("runtime demotion" not in reason for reason in reasons.values())


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_parallel_timeout_differential(paths, workers):
    """The coded abort is identical at every worker count, and so is the
    successful result — the resilience checks must not perturb the parallel
    tier's deterministic merge."""
    engine = make_engine(
        paths,
        enable_codegen=False,
        enable_caching=False,
        parallel_workers=workers,
        vectorized_batch_size=16,
    )
    with pytest.raises(QueryTimeoutError):
        engine.query("select sum(price) from items_bin where qty > 1", timeout=0)
    assert engine.last_profile.aborted == "RES001"
    result = engine.query("select sum(price) from items_bin where qty > 1")
    assert result.rows == [
        (sum(i * 1.5 for i in range(120) if i % 10 > 1),)
    ]


def test_no_leaked_worker_threads_after_abort(paths):
    engine = make_engine(
        paths,
        enable_codegen=False,
        enable_caching=False,
        parallel_workers=4,
        vectorized_batch_size=16,
    )
    with pytest.raises(QueryTimeoutError):
        engine.query("select sum(price) from items_bin", timeout=0)
    # WorkerPool.run joins every thread before re-raising, so nothing named
    # proteus-worker-* may survive the abort.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread.name.startswith("proteus-worker")
        ]
        if not leaked:
            break
        time.sleep(0.01)
    assert leaked == []


def test_volcano_stride_bounds_check_latency(paths):
    """The Volcano tier checks every ``volcano_check_stride`` tuples, so an
    expired deadline is noticed within one stride of scan progress."""
    engine = make_engine(
        paths,
        enable_codegen=False,
        enable_vectorized=False,
        enable_caching=False,
        volcano_check_stride=10,
    )
    with pytest.raises(QueryTimeoutError):
        engine.query("select id from items_csv", timeout=0)
    assert engine.last_profile.partial_progress.get("volcano_tuples") == 10


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


def test_precancelled_token_aborts_immediately(paths):
    engine = make_engine(paths, enable_caching=False)
    token = CancellationToken()
    token.cancel()
    with pytest.raises(QueryCancelledError) as info:
        engine.query("select id from items_csv", cancel=token)
    assert "[RES002]" in str(info.value)
    assert engine.last_profile.aborted == "RES002"


def test_cancellation_interrupts_mid_query(paths):
    """Cancel deterministically *between* batches: a scripted slow fault's
    sleep hook trips the token, so the very next per-batch check aborts with
    partial progress already recorded."""
    token = CancellationToken()
    injector = FaultInjector(
        FaultPlan([FaultSpec(kind="slow", at_call=3, delay_seconds=0.0)]),
        sleep=lambda seconds: token.cancel(),
    )
    engine = make_engine(
        paths, enable_codegen=False, enable_caching=False, vectorized_batch_size=16
    )
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)
    with pytest.raises(QueryCancelledError):
        engine.query("select sum(price) from items_csv", cancel=token)
    assert engine.last_profile.aborted == "RES002"
    assert engine.last_profile.partial_progress.get("batches", 0) >= 1
    # The token is sticky: re-running with it still aborts; a fresh execution
    # without it completes.
    with pytest.raises(QueryCancelledError):
        engine.query("select sum(price) from items_csv", cancel=token)
    assert engine.query("select count(*) from items_csv").rows == [(120,)]


def test_cancellation_from_another_thread(paths):
    """The documented client pattern: a second thread trips the token while
    the query is scanning (persistent slow faults keep the scan busy long
    enough for the cancel to land mid-flight)."""
    token = CancellationToken()
    scanning = threading.Event()

    def slow_sleep(seconds: float) -> None:
        scanning.set()
        time.sleep(seconds)

    injector = FaultInjector(
        FaultPlan(
            [
                FaultSpec(kind="slow", at_call=call, times=None, delay_seconds=0.02)
                for call in range(1, 9)
            ]
        ),
        sleep=slow_sleep,
    )
    engine = make_engine(
        paths, enable_codegen=False, enable_caching=False, vectorized_batch_size=16
    )
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)

    def canceller() -> None:
        scanning.wait(5.0)
        token.cancel()

    thread = threading.Thread(target=canceller)
    thread.start()
    try:
        with pytest.raises(QueryCancelledError):
            engine.query("select sum(price) from items_csv", cancel=token)
    finally:
        thread.join(5.0)
    assert engine.last_profile.aborted == "RES002"


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def test_admission_controller_concurrency_bound():
    controller = AdmissionController(max_concurrent=1, queue_timeout_seconds=0.05)
    slot = controller.admit()
    assert controller.active == 1
    with pytest.raises(AdmissionRejectedError) as info:
        controller.admit()
    assert "[RES003]" in str(info.value)
    slot.release()
    slot.release()  # idempotent
    second = controller.admit()
    second.release()
    assert controller.active == 0
    assert controller.admitted_total == 2
    assert controller.rejected_total == 1


def test_admission_controller_memory_budget():
    controller = AdmissionController(
        memory_budget_bytes=1024, queue_timeout_seconds=0.01
    )
    # Larger than the whole budget: queueing can never help, reject at once.
    with pytest.raises(MemoryBudgetError) as info:
        controller.admit(estimated_bytes=4096)
    assert "[RES004]" in str(info.value)
    slot = controller.admit(estimated_bytes=800)
    assert controller.reserved_bytes == 800
    # Fits the budget but not the current headroom: queue, then reject.
    with pytest.raises(AdmissionRejectedError):
        controller.admit(estimated_bytes=800)
    slot.release()
    assert controller.reserved_bytes == 0
    controller.admit(estimated_bytes=800).release()


def test_admission_queueing_admits_when_slot_frees():
    controller = AdmissionController(max_concurrent=1, queue_timeout_seconds=5.0)
    slot = controller.admit()
    admitted = []

    def waiter() -> None:
        second = controller.admit()
        admitted.append(second)
        second.release()

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)  # let the waiter queue up on the condition
    slot.release()
    thread.join(5.0)
    assert len(admitted) == 1
    assert controller.rejected_total == 0


def test_engine_admission_rejects_when_full(paths):
    """End-to-end: while one query holds the engine's single admission slot
    (parked inside a scripted slow fault), a second query is rejected with
    RES003 — and admission recovers once the first query finishes."""
    engine = make_engine(
        paths,
        max_concurrent_queries=1,
        admission_queue_seconds=0.05,
        enable_codegen=False,
        enable_caching=False,
    )
    entered = threading.Event()
    release = threading.Event()

    def parked_sleep(seconds: float) -> None:
        entered.set()
        release.wait(10.0)

    injector = FaultInjector(
        FaultPlan([FaultSpec(kind="slow", at_call=1, delay_seconds=0.01)]),
        sleep=parked_sleep,
    )
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)
    failures: list[BaseException] = []

    def holder() -> None:
        try:
            engine.query("select sum(price) from items_csv")
        except BaseException as exc:  # pragma: no cover - surfaced by assert
            failures.append(exc)

    thread = threading.Thread(target=holder)
    thread.start()
    try:
        assert entered.wait(10.0)
        with pytest.raises(AdmissionRejectedError):
            engine.query("select count(*) from items_csv")
        assert engine.admission.rejected_total == 1
    finally:
        release.set()
        thread.join(10.0)
    assert failures == []
    # The holder's slot was released in the engine's finally: admitted again.
    assert engine.query("select count(*) from items_csv").rows == [(120,)]


# ---------------------------------------------------------------------------
# Failure metrics (satellite: queries_failed by code, failures in latency)
# ---------------------------------------------------------------------------


def test_failed_queries_counted_by_code(paths):
    engine = make_engine(paths, enable_caching=False, slow_query_seconds=0.0)
    with pytest.raises(QueryTimeoutError):
        engine.query("select id from items_csv", timeout=0)
    failed = engine.metrics.counter("proteus_queries_failed_total")
    assert failed.value(code="RES001") == 1.0
    # Failed queries spent wall-clock too: they land in the latency histogram
    # and (a query that burned its deadline is slow by definition) the log.
    histogram = engine.metrics.histogram("proteus_query_seconds")
    assert histogram.to_dict()["count"] >= 1
    entries = engine.metrics.slow_queries()
    assert any(
        entry.get("tier") == "aborted" and "RES001" in entry.get("error", "")
        for entry in entries
    )


def test_prepare_failures_are_counted(paths):
    engine = make_engine(paths, enable_caching=False)
    with pytest.raises(ProteusError):
        engine.prepare("select nosuch_column from items_csv")
    failed = engine.metrics.counter("proteus_queries_failed_total")
    assert sum(value for _, value in failed.samples()) >= 1.0


def test_trace_marks_aborted_queries(paths):
    engine = make_engine(paths, enable_caching=False, enable_tracing=True)
    with pytest.raises(QueryTimeoutError):
        engine.query("select id from items_csv", timeout=0)
    trace = engine.tracer.last()
    assert trace is not None
    assert trace.aborted == "RES001"
    assert trace.to_dict()["aborted"] == "RES001"
    engine.query("select count(*) from items_csv")
    assert engine.tracer.last().aborted is None


def test_io_retries_recorded_in_profile_and_metrics(paths):
    engine = make_engine(paths, enable_codegen=False, enable_caching=False)
    injector = FaultInjector(
        FaultPlan([FaultSpec(kind="io-error", at_call=1)]), sleep=lambda s: None
    )
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)
    result = engine.query("select sum(price) from items_csv")
    assert result.rows == [(sum(i * 1.5 for i in range(120)),)]
    assert engine.last_profile.io_retries == 1
    retries = engine.metrics.counter("proteus_io_retries_total")
    assert retries.value() == 1.0


# ---------------------------------------------------------------------------
# WorkerPool failure semantics (satellite: no swallowed concurrent errors)
# ---------------------------------------------------------------------------


def test_worker_pool_attaches_all_concurrent_failures():
    from repro.core.parallel.scheduler import WorkerPool

    pool = WorkerPool(4)
    barrier = threading.Barrier(4, timeout=5.0)

    def failing_task(item: int, worker_id: int) -> None:
        barrier.wait()  # make all four workers fail concurrently
        raise ValueError(f"boom-{item}")

    with pytest.raises(ValueError) as info:
        pool.run(list(range(4)), failing_task)
    attached = info.value.errors
    assert len(attached) == 4
    assert info.value in attached
    assert {str(exc) for exc in attached} == {f"boom-{i}" for i in range(4)}


def test_worker_pool_single_failure_still_plain():
    from repro.core.parallel.scheduler import WorkerPool

    pool = WorkerPool(2)

    def failing_task(item: int, worker_id: int) -> int:
        if item == 3:
            raise ValueError("boom-3")
        return item

    with pytest.raises(ValueError) as info:
        pool.run(list(range(8)), failing_task)
    assert str(info.value) == "boom-3"
    assert info.value in info.value.errors


# ---------------------------------------------------------------------------
# DebugLock acquire semantics (satellite: failed acquire leaves no trace)
# ---------------------------------------------------------------------------


def test_debug_lock_failed_acquire_leaves_no_trace():
    from repro.core.concurrency import DebugLock, global_lock_graph

    outer = DebugLock("test_resilience.outer")
    contended = DebugLock("test_resilience.contended")
    acquired = threading.Event()
    release = threading.Event()

    def holder() -> None:
        contended.acquire()
        acquired.set()
        release.wait(10.0)
        contended.release()

    thread = threading.Thread(target=holder)
    thread.start()
    try:
        assert acquired.wait(10.0)
        with outer:
            assert contended.acquire(blocking=False) is False
            assert contended.acquire(timeout=0.01) is False
        # No held-edge may be recorded for an acquisition that never held
        # the lock (the old bug recorded outer -> contended here, poisoning
        # the lock-order graph with edges that never existed).
        edges = global_lock_graph().edges()
        assert "test_resilience.contended" not in edges.get(
            "test_resilience.outer", set()
        )
    finally:
        release.set()
        thread.join(10.0)
    # ... and no phantom held-stack entry: a later blocking acquire by this
    # thread must not be mistaken for re-entry.
    assert contended.acquire() is True
    contended.release()
