"""Unit tests for the data model (types, schemas, monoids)."""

import numpy as np
import pytest

from repro.core import types as t
from repro.errors import SchemaError


def test_primitive_lookup():
    assert t.primitive_type("int") is t.INT
    assert t.primitive_type("string") is t.STRING
    with pytest.raises(SchemaError):
        t.primitive_type("decimal")


def test_primitive_equality_and_hash():
    assert t.IntType() == t.INT
    assert hash(t.IntType()) == hash(t.INT)
    assert t.INT != t.FLOAT


def test_numpy_dtypes():
    assert t.INT.numpy_dtype() == np.dtype(np.int64)
    assert t.FLOAT.numpy_dtype() == np.dtype(np.float64)
    assert t.BOOL.numpy_dtype() == np.dtype(np.bool_)
    assert t.STRING.numpy_dtype() == np.dtype(object)


def test_record_type_fields_and_paths():
    schema = t.make_schema({"a": "int", "b": {"c": "float", "d": "string"}})
    assert schema.field_names() == ["a", "b"]
    assert schema.field_type("a") is t.INT
    assert schema.resolve_path(("b", "c")) is t.FLOAT
    with pytest.raises(SchemaError):
        schema.field("missing")
    with pytest.raises(SchemaError):
        schema.resolve_path(("a", "c"))


def test_record_type_rejects_duplicates():
    with pytest.raises(SchemaError):
        t.RecordType([t.Field("x", t.INT), t.Field("x", t.FLOAT)])


def test_collection_spec():
    schema = t.make_schema({"items": [{"x": "int"}]})
    collection = schema.field_type("items")
    assert isinstance(collection, t.CollectionType)
    assert isinstance(collection.element, t.RecordType)
    assert collection.element.field_type("x") is t.INT


def test_collection_spec_requires_single_element():
    with pytest.raises(SchemaError):
        t.make_schema({"items": ["int", "float"]})


def test_monoid_lookup_and_properties():
    assert t.monoid("sum").commutative
    assert t.monoid("set").idempotent
    assert t.monoid("bag").is_collection
    assert not t.monoid("max").is_collection
    with pytest.raises(SchemaError):
        t.monoid("median")


def test_infer_type():
    assert t.infer_type(3) is t.INT
    assert t.infer_type(3.5) is t.FLOAT
    assert t.infer_type(True) is t.BOOL
    assert t.infer_type("x") is t.STRING
    record = t.infer_type({"a": 1, "b": [1, 2]})
    assert isinstance(record, t.RecordType)
    assert isinstance(record.field_type("b"), t.CollectionType)


def test_merge_types_widens_numeric():
    assert t.merge_types(t.INT, t.FLOAT) is t.FLOAT
    assert t.merge_types(t.INT, t.INT) is t.INT
    assert t.merge_types(t.INT, t.STRING) is t.STRING


def test_merge_types_records_union_fields():
    left = t.make_schema({"a": "int"})
    right = t.make_schema({"a": "int", "b": "string"})
    merged = t.merge_types(left, right)
    assert isinstance(merged, t.RecordType)
    assert merged.field_names() == ["a", "b"]
    assert merged.field("b").nullable
    assert not merged.field("a").nullable


def test_arithmetic_result_type():
    assert t.arithmetic_result_type(t.INT, t.INT) is t.INT
    assert t.arithmetic_result_type(t.INT, t.FLOAT) is t.FLOAT
    with pytest.raises(SchemaError):
        t.arithmetic_result_type(t.STRING, t.INT)
