"""Unit tests for the binder, normalizer and calculus → algebra translator."""

import pytest

from repro.core import types as t
from repro.core.algebra import Join, Nest, Reduce, Scan, Select, Unnest
from repro.core.binder import bind_comprehension
from repro.core.calculus import (
    Comprehension,
    DatasetSource,
    Filter,
    Generator,
    PathSource,
)
from repro.core.comprehension_parser import parse_comprehension
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    FieldRef,
    Literal,
    OutputColumn,
)
from repro.core.normalizer import fold_constants, normalize
from repro.core.sql_parser import parse_sql
from repro.core.translator import translate
from repro.errors import SchemaError, TranslationError

CATALOG = {
    "items": t.make_schema({"id": "int", "qty": "int", "price": "float", "category": "string"}),
    "orders": t.make_schema(
        {"okey": "int", "total": "float", "origin": {"country": "string"},
         "lines": [{"item": "int", "qty": "int"}]}
    ),
}


def bound(sql: str) -> Comprehension:
    return bind_comprehension(parse_sql(sql), CATALOG)


# -- binder ---------------------------------------------------------------------


def test_binder_resolves_unqualified_columns():
    comp = bound("SELECT qty FROM items WHERE price < 10")
    assert comp.head[0].expression.binding == "items"
    assert comp.filters()[0].predicate.left.binding == "items"


def test_binder_resolves_alias_qualified_columns():
    comp = bound("SELECT i.qty FROM items i")
    assert comp.head[0].expression == FieldRef("i", ("qty",))


def test_binder_expands_star():
    comp = bound("SELECT * FROM items")
    assert [c.name for c in comp.head] == ["id", "qty", "price", "category"]


def test_binder_rejects_unknown_and_ambiguous():
    with pytest.raises(SchemaError):
        bound("SELECT missing FROM items")
    with pytest.raises(SchemaError):
        bind_comprehension(
            parse_sql("SELECT qty FROM items, orders o"),
            {"items": CATALOG["items"],
             "orders": t.make_schema({"qty": "int"})},
        )


def test_binder_nested_paths():
    comp = bound("SELECT origin.country FROM orders")
    assert comp.head[0].expression == FieldRef("orders", ("origin", "country"))


# -- normalizer --------------------------------------------------------------------


def test_normalize_splits_and_pushes_filters():
    comp = bound(
        "SELECT COUNT(*) FROM items i JOIN orders o ON i.id = o.okey "
        "WHERE i.qty < 5 AND o.total > 10"
    )
    normalized = normalize(comp)
    qualifiers = normalized.qualifiers
    # The filter on i must appear right after i's generator, before o's.
    generator_positions = {
        q.var: index for index, q in enumerate(qualifiers) if isinstance(q, Generator)
    }
    filter_positions = [
        (index, q) for index, q in enumerate(qualifiers) if isinstance(q, Filter)
    ]
    i_filter = next(
        index for index, q in filter_positions
        if q.predicate.bindings() == {"i"}
    )
    assert generator_positions["i"] < i_filter < generator_positions["o"]


def test_normalize_drops_trivially_true_filters():
    comp = Comprehension(
        monoid="bag",
        head=[OutputColumn("id", FieldRef("i", ("id",)))],
        qualifiers=[
            Generator("i", DatasetSource("items")),
            Filter(Literal(True)),
        ],
    )
    normalized = normalize(comp)
    assert normalized.filters() == []


def test_fold_constants():
    expr = BinaryOp("+", Literal(1), Literal(2))
    assert fold_constants(expr) == Literal(3)
    boolean = BinaryOp("and", Literal(True), BinaryOp("<", FieldRef("i", ("x",)), Literal(3)))
    folded = fold_constants(boolean)
    assert isinstance(folded, BinaryOp) and folded.op == "<"
    assert fold_constants(BinaryOp("or", Literal(True), FieldRef("i", ("x",)))) == Literal(True)


# -- translator -----------------------------------------------------------------------


def test_translate_projection():
    plan = translate(normalize(bound("SELECT qty FROM items WHERE price < 10")))
    assert isinstance(plan, Reduce)
    assert isinstance(plan.child, Select)
    assert isinstance(plan.child.child, Scan)


def test_translate_join_produces_cartesian_plus_select():
    plan = translate(normalize(bound(
        "SELECT COUNT(*) FROM items i JOIN orders o ON i.id = o.okey"
    )))
    assert isinstance(plan, Reduce)
    select = plan.child
    assert isinstance(select, Select)
    assert isinstance(select.child, Join)


def test_translate_group_by():
    plan = translate(normalize(bound(
        "SELECT qty, COUNT(*) FROM items GROUP BY qty"
    )))
    assert isinstance(plan, Nest)
    assert len(plan.group_by) == 1


def test_translate_unnest():
    comp = parse_comprehension(
        "for { o <- orders, l <- o.lines, l.qty > 1 } yield count"
    )
    plan = translate(normalize(bind_comprehension(comp, CATALOG)))
    assert isinstance(plan, Reduce)
    operators = [type(node).__name__ for node in plan.walk()]
    assert "Unnest" in operators


def test_translate_rejects_mixed_aggregates_without_group_by():
    with pytest.raises(TranslationError):
        translate(normalize(bound("SELECT qty, COUNT(*) FROM items")))


def test_translate_rejects_filter_before_generator():
    comp = Comprehension(
        monoid="bag",
        head=[OutputColumn("x", Literal(1))],
        qualifiers=[Filter(Literal(True)), Generator("i", DatasetSource("items"))],
    )
    with pytest.raises(TranslationError):
        translate(comp)


def test_comprehension_validate_rejects_duplicate_vars():
    comp = Comprehension(
        monoid="bag",
        head=[OutputColumn("x", Literal(1))],
        qualifiers=[
            Generator("i", DatasetSource("items")),
            Generator("i", DatasetSource("orders")),
        ],
    )
    with pytest.raises(TranslationError):
        comp.validate()


def test_algebra_pretty_and_fingerprints():
    plan = translate(normalize(bound("SELECT qty FROM items WHERE price < 10")))
    text = plan.pretty()
    assert "Reduce" in text and "Scan" in text
    same = translate(normalize(bound("SELECT qty FROM items WHERE price < 10")))
    assert plan.fingerprint() == same.fingerprint()
    different = translate(normalize(bound("SELECT qty FROM items WHERE price < 20")))
    assert plan.fingerprint() != different.fingerprint()
