"""Tests of the adaptive caching subsystem: manager, policies, matching,
eviction and engine-level behaviour."""

import numpy as np
import pytest

from repro.caching.manager import CacheManager, estimate_size
from repro.caching.matching import field_cache_key, join_side_cache_key, unnest_cache_key
from repro.caching.policies import (
    AggressiveCachingPolicy,
    DefaultCachingPolicy,
    NoCachingPolicy,
)
from repro.storage.memory import CacheArena

from tests.conftest import expected_items, make_engine


# -- policies ------------------------------------------------------------------


def test_default_policy_caches_numeric_raw_fields_only():
    policy = DefaultCachingPolicy()
    assert policy.should_cache_field("json", "float")
    assert policy.should_cache_field("csv", "int")
    assert not policy.should_cache_field("json", "string")
    assert not policy.should_cache_field("binary_column", "int")
    assert policy.should_cache_join_side({"json"})


def test_policy_format_bias_ordering():
    policy = DefaultCachingPolicy()
    assert policy.format_bias("json") > policy.format_bias("csv") > policy.format_bias("binary_column")


def test_no_caching_policy():
    policy = NoCachingPolicy()
    assert not policy.should_cache_field("json", "float")
    assert not policy.should_cache_join_side({"json"})


def test_aggressive_policy():
    policy = AggressiveCachingPolicy()
    assert policy.should_cache_field("json", "string")
    assert policy.should_cache_field("binary_column", "int")


# -- manager --------------------------------------------------------------------


def test_cache_store_lookup_and_stats():
    manager = CacheManager(CacheArena(1 << 20))
    key = field_cache_key("ds", ("x",))
    assert manager.lookup(key) is None
    manager.store(key, np.arange(10), kind="field", dataset="ds", source_format="json")
    entry = manager.lookup(key)
    assert entry is not None and entry.hits == 1
    assert manager.stats.stores == 1
    assert manager.stats.hits == 1
    assert manager.stats.misses == 1
    assert 0 < manager.stats.hit_rate < 1


def test_cache_store_is_idempotent():
    manager = CacheManager(CacheArena(1 << 20))
    key = field_cache_key("ds", ("x",))
    first = manager.store(key, np.arange(10), kind="field", dataset="ds", source_format="csv")
    second = manager.store(key, np.arange(10), kind="field", dataset="ds", source_format="csv")
    assert first is second
    assert manager.stats.stores == 1


def test_cache_eviction_is_format_biased():
    # Arena fits only two of the three entries; the CSV-backed one (lower
    # bias) must be evicted before the JSON-backed ones.
    array = np.arange(100, dtype=np.int64)  # 800 bytes
    manager = CacheManager(CacheArena(1700))
    manager.store(field_cache_key("c", ("a",)), array, kind="field",
                  dataset="c", source_format="csv")
    manager.store(field_cache_key("j", ("a",)), array, kind="field",
                  dataset="j", source_format="json")
    manager.store(field_cache_key("j", ("b",)), array, kind="field",
                  dataset="j", source_format="json")
    keys = {entry.key for entry in manager.entries()}
    assert field_cache_key("c", ("a",)) not in keys
    assert field_cache_key("j", ("a",)) in keys
    assert manager.stats.evictions == 1


def test_cache_rejects_oversized_entries():
    manager = CacheManager(CacheArena(100))
    entry = manager.store(field_cache_key("d", ("x",)), np.arange(1000),
                          kind="field", dataset="d", source_format="json")
    assert entry is None
    assert manager.stats.rejected == 1


def test_cache_invalidate_dataset_and_clear():
    manager = CacheManager(CacheArena(1 << 20))
    manager.store(field_cache_key("a", ("x",)), np.arange(5), kind="field",
                  dataset="a", source_format="json")
    manager.store(field_cache_key("b", ("x",)), np.arange(5), kind="field",
                  dataset="b", source_format="json")
    assert manager.invalidate_dataset("a") == 1
    assert len(manager.entries_for_dataset("a")) == 0
    manager.clear()
    assert manager.entries() == []
    assert manager.used_bytes == 0


def test_estimate_size_variants():
    assert estimate_size(np.arange(10, dtype=np.int64)) == 80
    assert estimate_size({"a": np.arange(2)}) > 16
    assert estimate_size("hello") == 5
    assert estimate_size(object()) == 64


def test_cache_keys_are_distinct():
    assert field_cache_key("d", ("x",)) != field_cache_key("d", ("y",))
    assert unnest_cache_key("d", ("arr",), [("a",)]) != unnest_cache_key("d", ("arr",), [("b",)])
    assert join_side_cache_key(("scan",), ("key1",)) != join_side_cache_key(("scan",), ("key2",))


# -- engine-level behaviour ---------------------------------------------------------


def test_engine_populates_and_reuses_field_caches(paths):
    engine = make_engine(paths, enable_caching=True)
    first = engine.query("SELECT COUNT(*) FROM items_json WHERE qty < 5")
    entries = engine.cache_entries()
    assert any(entry.kind == "field" for entry in entries)
    stats_before = engine.cache_stats.hits
    second = engine.query("SELECT COUNT(*) FROM items_json WHERE qty < 5")
    assert second.scalar() == first.scalar()
    assert engine.cache_stats.hits > stats_before
    assert second.profile.values_from_cache > 0


def test_engine_does_not_cache_strings_by_default(paths):
    engine = make_engine(paths, enable_caching=True)
    engine.query("SELECT COUNT(*) FROM items_json WHERE category = 'cat1' AND qty < 10")
    descriptions = [entry.description for entry in engine.cache_entries()]
    assert not any("category" in description for description in descriptions)


def test_engine_join_side_cache_reuse(paths):
    engine = make_engine(paths, enable_caching=True)
    engine.query(
        "SELECT COUNT(*) FROM items_bin i JOIN items_csv c ON i.id = c.id WHERE c.qty < 9"
    )
    assert any(entry.kind == "join_side" for entry in engine.cache_entries())
    # A different query over the same join side reuses the materialization.
    hits_before = engine.cache_stats.hits
    engine.query(
        "SELECT MAX(i.price) FROM items_bin i JOIN items_csv c ON i.id = c.id WHERE c.qty < 9"
    )
    assert engine.cache_stats.hits > hits_before


def test_engine_unnest_cache(paths):
    engine = make_engine(paths, enable_caching=True)
    first = engine.query("for { o <- orders, l <- o.lines, l.qty > 1 } yield count")
    assert any(entry.kind == "unnest" for entry in engine.cache_entries())
    second = engine.query("for { o <- orders, l <- o.lines, l.qty > 1 } yield count")
    assert second.scalar() == first.scalar()


def test_engine_cache_results_stay_correct(paths):
    engine = make_engine(paths, enable_caching=True)
    cached_engine_counts = []
    for _ in range(3):
        cached_engine_counts.append(
            engine.query("SELECT SUM(price) FROM items_json WHERE qty < 5").scalar()
        )
    expected = sum(row["price"] for row in expected_items() if row["qty"] < 5)
    assert all(value == pytest.approx(expected) for value in cached_engine_counts)


def test_clear_caches(paths):
    engine = make_engine(paths, enable_caching=True)
    engine.query("SELECT COUNT(*) FROM items_json WHERE qty < 5")
    assert engine.cache_entries()
    engine.clear_caches()
    assert engine.cache_entries() == []


def test_caching_disabled_engine_has_no_entries(paths):
    engine = make_engine(paths, enable_caching=False)
    engine.query("SELECT COUNT(*) FROM items_json WHERE qty < 5")
    assert engine.cache_entries() == []
    assert engine.cache_stats is None
