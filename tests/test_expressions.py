"""Unit tests for the expression AST."""

import pytest

from repro.core import types as t
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    FieldRef,
    IfThenElse,
    Literal,
    RecordConstruct,
    UnaryOp,
    conjunction,
    conjuncts,
    contains_aggregate,
    is_equi_join_predicate,
    iter_aggregates,
    to_string,
)
from repro.errors import ExecutionError, SchemaError


def test_field_ref_evaluation_and_paths():
    ref = FieldRef("l", ("origin", "country"))
    env = {"l": {"origin": {"country": "CH"}}}
    assert ref.evaluate(env) == "CH"
    assert ref.referenced_fields() == {("l", ("origin", "country"))}
    assert ref.extend("code").path == ("origin", "country", "code")


def test_field_ref_missing_binding_raises():
    with pytest.raises(ExecutionError):
        FieldRef("x", ("a",)).evaluate({})


def test_field_ref_empty_path_returns_binding():
    assert FieldRef("v", ()).evaluate({"v": 42}) == 42


def test_binary_arithmetic_and_comparison():
    expr = BinaryOp("+", FieldRef("l", ("a",)), Literal(2))
    assert expr.evaluate({"l": {"a": 3}}) == 5
    cmp = BinaryOp("<", expr, Literal(10))
    assert cmp.evaluate({"l": {"a": 3}}) is True
    assert cmp.evaluate({"l": {"a": 9}}) is False


def test_binary_null_semantics():
    expr = BinaryOp("<", FieldRef("l", ("a",)), Literal(10))
    assert expr.evaluate({"l": {}}) is False
    arith = BinaryOp("+", FieldRef("l", ("a",)), Literal(1))
    assert arith.evaluate({"l": {}}) is None


def test_logical_operators():
    a = BinaryOp(">", FieldRef("l", ("x",)), Literal(1))
    b = BinaryOp("<", FieldRef("l", ("x",)), Literal(5))
    both = BinaryOp("and", a, b)
    either = BinaryOp("or", a, b)
    assert both.evaluate({"l": {"x": 3}})
    assert not both.evaluate({"l": {"x": 7}})
    assert either.evaluate({"l": {"x": 7}})


def test_unknown_operator_rejected():
    with pytest.raises(SchemaError):
        BinaryOp("**", Literal(1), Literal(2))
    with pytest.raises(SchemaError):
        UnaryOp("abs", Literal(1))


def test_unary():
    assert UnaryOp("-", Literal(4)).evaluate({}) == -4
    assert UnaryOp("not", Literal(False)).evaluate({}) is True


def test_record_construct_and_if():
    record = RecordConstruct({"a": Literal(1), "b": FieldRef("x", ("v",))})
    assert record.evaluate({"x": {"v": 2}}) == {"a": 1, "b": 2}
    cond = IfThenElse(BinaryOp(">", Literal(2), Literal(1)), Literal("yes"), Literal("no"))
    assert cond.evaluate({}) == "yes"


def test_aggregate_call_validation():
    with pytest.raises(SchemaError):
        AggregateCall("sum")  # missing argument
    count = AggregateCall("count")
    assert count.result_type({}) is t.INT
    with pytest.raises(ExecutionError):
        count.evaluate({})


def test_contains_and_iter_aggregates():
    expr = BinaryOp("/", AggregateCall("sum", FieldRef("l", ("x",))), AggregateCall("count"))
    assert contains_aggregate(expr)
    assert len(list(iter_aggregates(expr))) == 2
    assert not contains_aggregate(FieldRef("l", ("x",)))


def test_conjuncts_and_conjunction_roundtrip():
    a = BinaryOp(">", FieldRef("l", ("x",)), Literal(1))
    b = BinaryOp("<", FieldRef("l", ("y",)), Literal(5))
    c = BinaryOp("=", FieldRef("l", ("z",)), Literal(0))
    combined = conjunction([a, b, c])
    assert conjuncts(combined) == [a, b, c]
    assert conjunction([]) is None
    assert conjuncts(None) == []


def test_equi_join_detection():
    predicate = BinaryOp("=", FieldRef("o", ("okey",)), FieldRef("l", ("okey",)))
    pair = is_equi_join_predicate(predicate, {"o"}, {"l"})
    assert pair is not None
    left, right = pair
    assert left.binding == "o" and right.binding == "l"
    # Orientation flips when the sides are swapped.
    pair = is_equi_join_predicate(predicate, {"l"}, {"o"})
    assert pair[0].binding == "l"
    # Non-equi predicates are rejected.
    assert is_equi_join_predicate(
        BinaryOp("<", FieldRef("o", ("k",)), FieldRef("l", ("k",))), {"o"}, {"l"}
    ) is None


def test_substitute_binding():
    expr = BinaryOp("+", FieldRef("a", ("x",)), FieldRef("b", ("y",)))
    renamed = expr.substitute_binding("a", "z")
    assert renamed.referenced_fields() == {("z", ("x",)), ("b", ("y",))}


def test_fingerprint_equality_and_hash():
    a = BinaryOp("<", FieldRef("l", ("x",)), Literal(3))
    b = BinaryOp("<", FieldRef("l", ("x",)), Literal(3))
    c = BinaryOp("<", FieldRef("l", ("x",)), Literal(4))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_result_types():
    scope = {"l": t.make_schema({"x": "int", "y": "float", "s": "string"})}
    assert BinaryOp("+", FieldRef("l", ("x",)), FieldRef("l", ("y",))).result_type(scope) is t.FLOAT
    assert BinaryOp("<", FieldRef("l", ("x",)), Literal(1)).result_type(scope) is t.BOOL
    assert BinaryOp("/", FieldRef("l", ("x",)), Literal(2)).result_type(scope) is t.FLOAT
    assert AggregateCall("avg", FieldRef("l", ("x",))).result_type(scope) is t.FLOAT
    assert AggregateCall("max", FieldRef("l", ("y",))).result_type(scope) is t.FLOAT


def test_to_string_is_readable():
    expr = BinaryOp("and",
                    BinaryOp("<", FieldRef("l", ("x",)), Literal(3)),
                    BinaryOp("=", FieldRef("l", ("s",)), Literal("a")))
    text = to_string(expr)
    assert "l.x" in text and "'a'" in text and "and" in text
