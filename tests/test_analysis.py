"""Tests for the static plan analyzer: prepare-time diagnostics, tier
verdicts (differentially checked against the tiers that actually serve),
statistics-proven nullability hints and the tier-parity repo lint."""

import json
import os
import shutil
from pathlib import Path

import pytest

from repro.core import types as t
from repro.errors import AnalysisError, ProteusError, SchemaError

from tests.conftest import make_engine

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import tier_lint  # noqa: E402


REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Prepare-time diagnostics (TYP001 .. TYP005)
# ---------------------------------------------------------------------------


def _prepare_error(engine, query) -> AnalysisError:
    with pytest.raises(ProteusError) as excinfo:
        engine.prepare(query)
    assert isinstance(excinfo.value, AnalysisError)
    return excinfo.value


def test_unknown_nested_output_field_raises_at_prepare(paths):
    """Regression: an unknown field referenced through a nested path used to
    surface as a raw KeyError inside whichever tier executed the query; it
    must be an AnalysisError naming field and dataset at prepare() time."""
    engine = make_engine(paths)
    error = _prepare_error(engine, "SELECT origin.nosuch AS x FROM orders")
    assert error.code == "TYP001"
    assert error.dataset == "orders"
    assert error.field == "origin.nosuch"
    assert "orders" in str(error) and "origin.nosuch" in str(error)
    # The same diagnostic through the comprehension front end.
    error = _prepare_error(
        engine, "for { o <- orders } yield bag (o.origin.nosuch)"
    )
    assert error.code == "TYP001"
    assert error.dataset == "orders"


def test_analysis_error_is_a_schema_error(paths):
    """AnalysisError subclasses SchemaError, so pre-existing callers that
    catch SchemaError keep working."""
    engine = make_engine(paths)
    with pytest.raises(SchemaError):
        engine.prepare("SELECT nonexistent FROM items_csv")


def test_mixed_type_comparison_raises_typ002(paths):
    engine = make_engine(paths)
    error = _prepare_error(
        engine, "SELECT id FROM items_csv WHERE price < category"
    )
    assert error.code == "TYP002"
    assert "float" in str(error) and "string" in str(error)


def test_non_numeric_aggregate_raises_typ003(paths):
    engine = make_engine(paths)
    error = _prepare_error(engine, "SELECT SUM(category) AS s FROM items_csv")
    assert error.code == "TYP003"
    assert "sum()" in str(error)


def test_non_numeric_arithmetic_raises_typ004(paths):
    engine = make_engine(paths)
    error = _prepare_error(engine, "SELECT category + 1 AS x FROM items_csv")
    assert error.code == "TYP004"


def test_unnest_of_scalar_field_raises_typ005(paths):
    engine = make_engine(paths)
    error = _prepare_error(
        engine, "for { o <- orders, l <- o.okey } yield bag (o.okey)"
    )
    assert error.code == "TYP005"
    assert error.dataset == "orders"
    assert error.field == "okey"


def test_errors_raised_before_any_execution(paths):
    """prepare() alone must raise — no execute() call needed."""
    engine = make_engine(paths)
    for query in [
        "SELECT origin.nosuch AS x FROM orders",
        "SELECT id FROM items_csv WHERE price < category",
        "SELECT SUM(category) AS s FROM items_csv",
    ]:
        with pytest.raises(AnalysisError):
            engine.prepare(query)


# ---------------------------------------------------------------------------
# Differential suite: predicted tier == observed tier
# ---------------------------------------------------------------------------

#: Query shapes spanning every operator the verdicts reason about.  None of
#: these hit a run-time demotion (the fixture data has no missing group or
#: join keys), so the static verdict must equal the observed tier exactly.
DIFFERENTIAL_QUERIES = [
    "SELECT id, price FROM items_csv WHERE qty > 5",
    "SELECT COUNT(*) FROM items_json WHERE price > 3",
    "SELECT category, SUM(price) AS total FROM items_csv GROUP BY category",
    "SELECT a.id, b.qty FROM items_csv a JOIN items_json b ON a.id = b.id "
    "WHERE b.qty > 2",
    "SELECT id, price FROM items_bin ORDER BY price DESC LIMIT 7",
    "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item)",
    "for { o <- orders, l <- outer o.lines } yield bag (o.okey, l.item)",
    "SELECT category, COUNT(*) AS n FROM items_csv GROUP BY category "
    "ORDER BY n DESC",
]

CONFIGS = [
    {},
    {"enable_codegen": False},
    {"enable_codegen": False, "enable_vectorized": False},
    {"parallel_workers": 2, "vectorized_batch_size": 16},
    {"enable_codegen": False, "parallel_workers": 2, "vectorized_batch_size": 16},
    {"enable_codegen": False, "parallel_workers": 8, "vectorized_batch_size": 16},
    {"enable_codegen": False, "parallel_workers": 2},  # single morsel
    {"enable_codegen": False, "enable_parallel": False, "parallel_workers": 4},
]


@pytest.mark.parametrize("config", CONFIGS, ids=[str(c) for c in CONFIGS])
def test_predicted_tier_matches_observed(paths, config):
    engine = make_engine(paths, **config)
    for query in DIFFERENTIAL_QUERIES:
        prepared = engine.prepare(query)
        predicted = prepared.analysis.predicted_tier
        result = prepared.execute()
        assert result.tier == predicted, (query, config)
        assert result.profile.predicted_tier == predicted, (query, config)


def test_parameterized_query_verdicts(paths):
    engine = make_engine(
        paths, enable_codegen=False, parallel_workers=2, vectorized_batch_size=16
    )
    prepared = engine.prepare("SELECT id FROM items_csv WHERE price > ?")
    assert prepared.analysis.predicted_tier == "vectorized-parallel"
    for value in (1.0, 3.0, 100.0):
        assert prepared.execute(value).tier == "vectorized-parallel"


def test_verdict_codes_for_declines(paths):
    engine = make_engine(paths, parallel_workers=2, vectorized_batch_size=16)
    # Outer unnest: codegen declines with a plan-shape code, batch serves.
    analysis = engine.prepare(
        "for { o <- orders, l <- outer o.lines } yield bag (o.okey, l.item)"
    ).analysis
    declines = analysis.decline_reasons()
    assert declines["codegen"].startswith("[TIER002]")
    assert analysis.predicted_tier == "vectorized-parallel"

    # Disabled tiers carry TIER001 with the exact configuration wording.
    serial = make_engine(paths, enable_codegen=False, enable_vectorized=False)
    analysis = serial.prepare("SELECT id FROM items_csv").analysis
    declines = analysis.decline_reasons()
    assert declines["codegen"] == "[TIER001] disabled (enable_codegen=False)"
    assert declines["vectorized"] == "[TIER001] disabled (enable_vectorized=False)"


def test_unsplittable_scan_and_single_morsel_codes(paths):
    # Binary row tables cannot be range-split: TIER006.
    engine = make_engine(
        paths, enable_codegen=False, parallel_workers=2, vectorized_batch_size=16
    )
    analysis = engine.prepare("SELECT id FROM items_rowbin WHERE qty > 1").analysis
    declines = analysis.decline_reasons()
    assert declines["vectorized-parallel"].startswith("[TIER006]")
    assert "not range-splittable" in declines["vectorized-parallel"]
    assert analysis.predicted_tier == "vectorized"
    assert engine.query("SELECT id FROM items_rowbin WHERE qty > 1").tier == "vectorized"

    # Default batch size over 120 rows fits one morsel: TIER007.
    single = make_engine(paths, enable_codegen=False, parallel_workers=2)
    analysis = single.prepare("SELECT id FROM items_csv WHERE qty > 1").analysis
    assert analysis.decline_reasons()["vectorized-parallel"].startswith("[TIER007]")
    assert analysis.predicted_tier == "vectorized"


def test_outer_join_declines_all_batch_tiers(paths):
    """TIER005: outer joins are Volcano-only, predicted and observed."""
    from repro.core.physical import PhysHashJoin

    engine = make_engine(paths, parallel_workers=2, vectorized_batch_size=16)
    prepared = engine.prepare(
        "SELECT a.id, b.qty FROM items_csv a JOIN items_json b ON a.id = b.id"
    )
    plan = prepared.plan
    joins = [n for n in plan.walk() if isinstance(n, PhysHashJoin)]
    assert joins, "planner should hash-join an equijoin"
    joins[0].outer = True
    verdicts = engine._verdicts(plan)
    by_tier = {v.tier: v for v in verdicts}
    for tier in ("codegen", "vectorized-parallel", "vectorized"):
        assert not by_tier[tier].serves
        assert by_tier[tier].code == "TIER005"
    assert by_tier["volcano"].serves


# ---------------------------------------------------------------------------
# Runtime demotion (TIER009) and decline recording in the profile
# ---------------------------------------------------------------------------


@pytest.fixture()
def null_group_engine(paths, tmp_path):
    engine = make_engine(paths)
    path = tmp_path / "nullg.json"
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(50):
            record = {"g": None if i % 7 == 0 else f"g{i % 3}", "v": float(i)}
            handle.write(json.dumps(record) + "\n")
    engine.register_json(
        "nullg", str(path), schema=t.make_schema({"g": "string", "v": "float"})
    )
    return engine


def test_runtime_demotion_recorded_in_profile(null_group_engine):
    """Null group keys demote the batch tiers at run time; the profile must
    say so instead of silently swallowing the CodegenError."""
    result = null_group_engine.query(
        "SELECT g, SUM(v) AS s FROM nullg GROUP BY g"
    )
    assert result.tier == "volcano"
    assert result.profile.predicted_tier == "codegen"
    reasons = result.profile.tier_decline_reasons
    assert reasons["codegen"].startswith("[TIER009] runtime demotion:")
    assert "missing values" in reasons["codegen"]
    assert reasons["vectorized"].startswith("[TIER009]")


def test_static_declines_recorded_in_profile(paths):
    engine = make_engine(paths)
    result = engine.query(
        "for { o <- orders, l <- outer o.lines } yield bag (o.okey, l.item)"
    )
    assert result.tier == "vectorized"
    reasons = result.profile.tier_decline_reasons
    assert reasons["codegen"].startswith("[TIER002]")
    assert "outer unnest" in reasons["codegen"]


def test_explain_shows_schema_and_codes(paths):
    engine = make_engine(paths)
    text = engine.explain(
        "SELECT category, COUNT(*) AS n FROM items_csv GROUP BY category"
    )
    assert "== inferred output schema ==" in text
    assert "category: string" in text
    assert "n: int" in text
    assert "codegen: serves this plan  <- selected" in text
    assert "[TIER001]" in text  # the serial parallel tier's decline code


# ---------------------------------------------------------------------------
# Statistics-proven nullability hints
# ---------------------------------------------------------------------------


def test_hints_require_statistics_proof(paths, tmp_path):
    engine = make_engine(paths)
    # Without analyze(), CSV/JSON nullability is unknown: no hints.
    analysis = engine.prepare("SELECT id, price FROM items_csv").analysis
    assert analysis.hints.non_null_columns == frozenset()
    assert all(column.nullable for column in analysis.columns)

    # analyze() proves the fixture columns are fully populated.
    engine.analyze("items_csv")
    analysis = engine.prepare("SELECT id, price FROM items_csv").analysis
    assert analysis.hints.non_null_columns == frozenset({"id", "price"})
    assert not analysis.column("id").nullable

    # A column with observed nulls is never proven, even after analyze().
    path = tmp_path / "holes.json"
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(30):
            record = {"k": i, "v": None if i % 5 == 0 else float(i)}
            handle.write(json.dumps(record) + "\n")
    engine.register_json(
        "holes", str(path), schema=t.make_schema({"k": "int", "v": "float"}),
        analyze=True,
    )
    analysis = engine.prepare("SELECT k, v FROM holes").analysis
    assert analysis.column("k").nullable is False
    assert analysis.column("v").nullable is True
    assert "v" not in analysis.hints.non_null_columns


def test_hinted_aggregates_stay_correct_with_nulls(paths, tmp_path):
    """The hint machinery must never claim a column with nulls: SUM over a
    holey column returns the null-skipping total in every configuration."""
    path = tmp_path / "holes.json"
    expected = 0.0
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(40):
            value = None if i % 3 == 0 else float(i)
            if value is not None:
                expected += value
            handle.write(json.dumps({"k": i, "v": value}) + "\n")
    for analyze in (False, True):
        engine = make_engine(paths)
        engine.register_json(
            "holes", str(path),
            schema=t.make_schema({"k": "int", "v": "float"}), analyze=analyze,
        )
        result = engine.query("SELECT SUM(v) AS s FROM holes")
        assert result.rows == [(expected,)]


def test_hints_apply_after_analyze_and_results_match(paths):
    """Hinted (post-analyze) and unhinted runs of the same ORDER BY and
    GROUP BY queries return identical rows."""
    queries = [
        "SELECT id, category FROM items_csv ORDER BY category, id LIMIT 11",
        "SELECT category, SUM(price) AS total, AVG(qty) AS aq FROM items_csv "
        "GROUP BY category ORDER BY category",
    ]
    cold = make_engine(paths)
    hot = make_engine(paths)
    hot.analyze("items_csv")
    for query in queries:
        assert (
            hot.prepare(query).analysis.hints.non_null_columns != frozenset()
        )
        assert hot.query(query).rows == cold.query(query).rows


def test_prepared_analysis_exposes_verdicts(paths):
    engine = make_engine(paths)
    analysis = engine.prepare("SELECT id FROM items_csv WHERE qty > 2").analysis
    tiers = [verdict.tier for verdict in analysis.verdicts]
    assert tiers == ["codegen", "vectorized-parallel", "vectorized", "volcano"]
    assert analysis.verdict("codegen").serves
    assert analysis.verdict("volcano").serves


# ---------------------------------------------------------------------------
# tier_lint: passes on the repo, fails on seeded violations
# ---------------------------------------------------------------------------


def test_tier_lint_passes_on_repo():
    assert tier_lint.run(REPO_ROOT) == []


def test_tier_lint_flags_unhandled_operator(tmp_path):
    root = tmp_path / "repo"
    for relative in [
        tier_lint.PHYSICAL_MODULE,
        tier_lint.CAPABILITIES_MODULE,
        *tier_lint.EXECUTOR_MODULES.values(),
    ]:
        source = REPO_ROOT / relative
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(source, target)
    physical = root / tier_lint.PHYSICAL_MODULE
    physical.write_text(
        physical.read_text(encoding="utf-8")
        + "\n\nclass PhysBogus(PhysicalPlan):\n    pass\n",
        encoding="utf-8",
    )
    violations = tier_lint.check_tier_parity(root)
    assert len(violations) == len(tier_lint.EXECUTOR_MODULES)
    assert all("PhysBogus" in violation for violation in violations)


def test_tier_lint_flags_stale_capability_entry(tmp_path):
    root = tmp_path / "repo"
    for relative in [
        tier_lint.PHYSICAL_MODULE,
        tier_lint.CAPABILITIES_MODULE,
        *tier_lint.EXECUTOR_MODULES.values(),
    ]:
        source = REPO_ROOT / relative
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(source, target)
    capabilities = root / tier_lint.CAPABILITIES_MODULE
    text = capabilities.read_text(encoding="utf-8")
    capabilities.write_text(
        text.replace(
            "    TIER_VOLCANO: {\n        PhysScan: None,",
            "    TIER_VOLCANO: {\n        PhysGhost: None,\n        PhysScan: None,",
            1,
        ),
        encoding="utf-8",
    )
    violations = tier_lint.check_tier_parity(root)
    assert any("PhysGhost" in violation for violation in violations)


# Lock discipline is now checked repo-wide by tools/concurrency_lint.py
# (see tests/test_concurrency.py for its seeded-violation suite).


def test_tier_lint_cli(capsys):
    assert tier_lint.main(["--root", str(REPO_ROOT)]) == 0
    assert "tier_lint: ok" in capsys.readouterr().out
