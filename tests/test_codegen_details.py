"""Unit tests for the code-generation machinery: context, expression
generators, compiler, runtime helpers and profiles."""

import numpy as np
import pytest

from repro.core.aggregate_utils import literal_results, replace_aggregates
from repro.core.codegen.compiler import compile_query
from repro.core.codegen.context import CodegenContext
from repro.core.codegen.expr_gen import generate_expression, supported_by_codegen
from repro.core.codegen.runtime import ExecutionProfile, QueryRuntime
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    FieldRef,
    IfThenElse,
    Literal,
    RecordConstruct,
    UnaryOp,
)
from repro.errors import CodegenError
from repro.caching.manager import CacheManager
from repro.caching.matching import field_cache_key
from repro.core import types as t
from repro.plugins.json_plugin import JsonPlugin
from repro.storage.catalog import Catalog, DataFormat, Dataset
from repro.storage.memory import MemoryManager

from tests.conftest import ORDERS_SCHEMA, ITEM_COUNT, ITEMS_SCHEMA


# -- codegen context ------------------------------------------------------------


def test_context_emits_and_indents():
    ctx = CodegenContext()
    ctx.emit("x = 1")
    ctx.push()
    ctx.emit("y = 2")
    ctx.pop()
    source = ctx.source()
    assert "def __query__(rt):" in source
    assert "    x = 1" in source
    assert "        y = 2" in source
    with pytest.raises(ValueError):
        ctx.pop()


def test_context_fresh_names_and_constants():
    ctx = CodegenContext()
    first = ctx.fresh("col_a")
    second = ctx.fresh("col_a")
    assert first != second
    payload = object()
    name_one = ctx.register_constant("plugin", payload)
    name_two = ctx.register_constant("plugin", payload)
    assert name_one == name_two  # same object registered once
    assert ctx.constants[name_one] is payload


def test_context_empty_body_compiles():
    ctx = CodegenContext()
    generated = compile_query(ctx)
    assert generated(None) is None


# -- expression generation ----------------------------------------------------------


BUFFERS = {("l", ("a",)): "col_a", ("l", ("b",)): "col_b"}


def test_generate_expression_arithmetic_and_comparison():
    from types import SimpleNamespace

    from repro.core.executor import radix

    expr = BinaryOp("<", BinaryOp("+", FieldRef("l", ("a",)), Literal(1)),
                    FieldRef("l", ("b",)))
    text = generate_expression(expr, BUFFERS)
    assert "col_a" in text and "col_b" in text
    runtime_stub = SimpleNamespace(
        mask=radix.bool_mask, cmp=radix.null_safe_compare,
        arith=radix.null_safe_arith, neg=radix.null_safe_neg,
    )
    namespace = {"col_a": np.asarray([1, 5]), "col_b": np.asarray([3, 3]),
                 "np": np, "rt": runtime_stub}
    result = eval(text, namespace)  # noqa: S307 - controlled test input
    assert list(result) == [True, False]


def test_generate_expression_logic_and_where():
    from types import SimpleNamespace

    from repro.core.executor import radix

    expr = BinaryOp("and",
                    BinaryOp(">", FieldRef("l", ("a",)), Literal(0)),
                    UnaryOp("not", BinaryOp("=", FieldRef("l", ("b",)), Literal(3))))
    text = generate_expression(expr, BUFFERS)
    # Generated fragments reference the runtime's missing-aware helpers.
    runtime_stub = SimpleNamespace(
        mask=radix.bool_mask, cmp=radix.null_safe_compare,
        arith=radix.null_safe_arith, neg=radix.null_safe_neg,
    )
    namespace = {"col_a": np.asarray([1, 2]), "col_b": np.asarray([3, 4]),
                 "np": np, "rt": runtime_stub}
    assert list(eval(text, namespace)) == [False, True]  # noqa: S307
    conditional = IfThenElse(BinaryOp(">", FieldRef("l", ("a",)), Literal(1)),
                             Literal(10), Literal(20))
    text = generate_expression(conditional, BUFFERS)
    assert list(eval(text, namespace)) == [20, 10]  # noqa: S307


def test_generate_expression_errors():
    with pytest.raises(CodegenError):
        generate_expression(FieldRef("x", ("missing",)), BUFFERS)
    with pytest.raises(CodegenError):
        generate_expression(AggregateCall("count"), BUFFERS)
    with pytest.raises(CodegenError):
        generate_expression(RecordConstruct({"a": Literal(1)}), BUFFERS)


def test_supported_by_codegen():
    assert supported_by_codegen(BinaryOp("+", Literal(1), FieldRef("l", ("a",))))
    assert not supported_by_codegen(RecordConstruct({"a": Literal(1)}))


# -- aggregate substitution -------------------------------------------------------------


def test_replace_aggregates():
    total = AggregateCall("sum", FieldRef("l", ("a",)))
    count = AggregateCall("count")
    expr = BinaryOp("/", total, count)
    replaced = replace_aggregates(expr, literal_results({
        total.fingerprint(): 10.0, count.fingerprint(): 4,
    }))
    assert replaced.evaluate({}) == pytest.approx(2.5)
    with pytest.raises(KeyError):
        replace_aggregates(expr, {})


# -- runtime ------------------------------------------------------------------------------


def _runtime_with_json(paths):
    memory = MemoryManager()
    catalog = Catalog()
    dataset = Dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    catalog.register(dataset)
    plugin = JsonPlugin(memory)
    manager = CacheManager(memory.arena)
    runtime = QueryRuntime(catalog, {DataFormat.JSON: plugin}, manager)
    return runtime, plugin, dataset, manager


def test_runtime_scan_populates_and_reuses_cache(paths):
    runtime, plugin, dataset, manager = _runtime_with_json(paths)
    buffers = runtime.scan(plugin, dataset, [("okey",), ("total",)])
    assert buffers.count > 0
    assert manager.peek(field_cache_key("orders", ("okey",))) is not None
    extracted_before = runtime.profile.values_extracted
    again = runtime.scan(plugin, dataset, [("okey",)])
    assert np.array_equal(again.column(("okey",)), buffers.column(("okey",)))
    assert runtime.profile.values_extracted == extracted_before  # served from cache
    assert runtime.profile.values_from_cache > 0


def test_runtime_scan_selected_prefers_cache_and_never_stores(paths):
    runtime, plugin, dataset, manager = _runtime_with_json(paths)
    runtime.scan(plugin, dataset, [("okey",)])
    stores_before = manager.stats.stores
    selected = runtime.scan_selected(plugin, dataset, [("okey",), ("total",)],
                                     np.asarray([1, 3, 5]))
    assert list(selected.column(("okey",))) == [1, 3, 5]
    assert len(selected.column(("total",))) == 3
    # Selective extractions are not admitted to the cache.
    assert manager.peek(field_cache_key("orders", ("total",))) is None
    assert manager.stats.stores == stores_before


def test_runtime_join_group_helpers():
    runtime = QueryRuntime(Catalog(), {})
    left = np.asarray([1, 2, 3, 3])
    right = np.asarray([3, 1, 5])
    li, ri = runtime.radix_join(left, right)
    assert sorted(zip(li.tolist(), ri.tolist())) == [(0, 1), (2, 0), (3, 0)]
    cross_left, cross_right = runtime.cross_product(2, 3)
    assert len(cross_left) == 6 and len(cross_right) == 6
    grouping = runtime.radix_group([np.asarray([1, 1, 2])])
    counts = runtime.group_agg("count", grouping.group_ids, grouping.num_groups)
    assert sorted(counts.tolist()) == [1, 2]
    assert runtime.scalar_agg("max", np.asarray([1.0, 9.0]), 2) == 9.0
    assert runtime.profile.join_output_rows == 3


def test_execution_profile_merge():
    a = ExecutionProfile(rows_scanned=5, values_extracted=10)
    b = ExecutionProfile(rows_scanned=2, values_from_cache=7)
    a.merge(b)
    assert a.rows_scanned == 7
    assert a.values_from_cache == 7
    assert a.values_extracted == 10


# -- generated program inspection -------------------------------------------------------------


def test_generated_program_uses_lazy_materialization(engine):
    engine.query("SELECT MAX(price) FROM items_json WHERE qty < 3")
    source = engine.last_generated_source
    assert source is not None
    assert "scan_selected" in source  # price is deferred until after the filter
    assert "lazy" in source


def test_compiled_queries_are_cached_by_plan(engine):
    engine.query("SELECT COUNT(*) FROM items_bin WHERE qty < 5")
    compiled_before = len(engine._compiled)
    engine.query("SELECT COUNT(*) FROM items_bin WHERE qty < 5")
    assert len(engine._compiled) == compiled_before
    engine.query("SELECT COUNT(*) FROM items_bin WHERE qty < 7")
    assert len(engine._compiled) == compiled_before + 1
