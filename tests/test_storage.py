"""Unit tests for the storage substrates: binary formats, structural indexes,
memory manager and catalog."""

import json
import os

import numpy as np
import pytest

from repro.core import types as t
from repro.errors import CatalogError, StorageError
from repro.storage import binary_format as bf
from repro.storage.catalog import Catalog, DataFormat, Dataset, DatasetStatistics
from repro.storage.memory import CacheArena, MemoryManager
from repro.storage import structural_index as si


# -- binary column/row formats --------------------------------------------------


def test_column_file_roundtrip_numeric(tmp_path):
    path = str(tmp_path / "x.col")
    values = np.arange(100, dtype=np.int64)
    bf.write_column_file(path, values, "int")
    loaded = bf.read_column_file(path)
    assert np.array_equal(np.asarray(loaded), values)


def test_column_file_roundtrip_strings(tmp_path):
    path = str(tmp_path / "s.col")
    values = ["alpha", "", "gamma", "δelta"]
    bf.write_column_file(path, values, "string")
    loaded = bf.read_column_file(path)
    assert list(loaded) == values


def test_column_file_rejects_bad_magic(tmp_path):
    path = str(tmp_path / "bad.col")
    with open(path, "wb") as handle:
        handle.write(b"not a column file at all")
    with pytest.raises(StorageError):
        bf.read_column_file(path)


def test_column_table_roundtrip(tmp_path):
    schema = t.make_schema({"a": "int", "b": "float", "c": "string"})
    columns = {
        "a": np.arange(10),
        "b": np.linspace(0, 1, 10),
        "c": np.asarray([f"v{i}" for i in range(10)], dtype=object),
    }
    directory = str(tmp_path / "table")
    bf.write_column_table(directory, columns, schema)
    table = bf.read_column_table(directory)
    assert table.row_count == 10
    assert np.allclose(table.column("b"), columns["b"])
    assert list(table.column("c")) == list(columns["c"])
    with pytest.raises(StorageError):
        table.column("missing")


def test_column_table_length_mismatch(tmp_path):
    schema = t.make_schema({"a": "int", "b": "int"})
    with pytest.raises(StorageError):
        bf.write_column_table(str(tmp_path / "bad"), {"a": [1, 2], "b": [1]}, schema)


def test_row_table_roundtrip(tmp_path):
    schema = t.make_schema({"a": "int", "s": "string"})
    path = str(tmp_path / "rows.bin")
    bf.write_row_table(path, {"a": [1, 2, 3], "s": ["x", "yy", "zzz"]}, schema)
    table = bf.read_row_table(path)
    assert table.row_count == 3
    assert list(table.column("a")) == [1, 2, 3]
    assert list(table.column("s")) == ["x", "yy", "zzz"]


def test_binary_formats_reject_nested_schema(tmp_path):
    nested = t.make_schema({"a": {"b": "int"}})
    with pytest.raises(StorageError):
        bf.schema_to_dict(nested)


# -- CSV structural index ----------------------------------------------------------


CSV_DATA = b"id,qty,price,name\n" + b"".join(
    f"{i},{i % 7},{i * 1.5:.2f},item{i}\n".encode() for i in range(50)
)


def test_csv_index_field_spans():
    index = si.build_csv_index(CSV_DATA, stride=2)
    assert index.num_rows == 50
    assert index.field_count == 4
    for row in (0, 7, 49):
        start, end = index.field_span(CSV_DATA, row, 3)
        assert CSV_DATA[start:end].decode() == f"item{row}"
        start, end = index.field_span(CSV_DATA, row, 1)
        assert CSV_DATA[start:end].decode() == str(row % 7)


def test_csv_index_stride_tradeoff():
    dense = si.build_csv_index(CSV_DATA, stride=1)
    sparse = si.build_csv_index(CSV_DATA, stride=4)
    assert dense.size_bytes > sparse.size_bytes
    # Both must return identical spans.
    assert dense.field_span(CSV_DATA, 10, 2) == sparse.field_span(CSV_DATA, 10, 2)


def test_csv_index_out_of_range_field():
    index = si.build_csv_index(CSV_DATA)
    with pytest.raises(StorageError):
        index.field_span(CSV_DATA, 0, 10)


def test_csv_index_no_header():
    data = b"1,2,3\n4,5,6\n"
    index = si.build_csv_index(data, has_header=False)
    assert index.num_rows == 2
    start, end = index.field_span(data, 1, 2)
    assert data[start:end] == b"6"


# -- JSON structural index -----------------------------------------------------------


def _json_bytes(objects):
    return ("\n".join(json.dumps(o) for o in objects) + "\n").encode()


def test_json_index_fixed_schema_detection():
    objects = [{"a": i, "b": {"c": i * 2}, "tags": [1, 2]} for i in range(20)]
    index = si.build_json_index(_json_bytes(objects))
    assert index.num_objects == 20
    assert index.fixed_schema
    span = index.field_span(3, "a")
    assert span is not None and span[2] == si.TYPE_NUMBER
    nested = index.field_span(3, "b.c")
    assert nested is not None


def test_json_index_flexible_schema_level0():
    objects = [{"a": 1, "b": 2}, {"b": 5, "a": 6, "extra": "x"}, {"a": 9}]
    index = si.build_json_index(_json_bytes(objects))
    assert not index.fixed_schema
    assert index.field_span(1, "extra")[2] == si.TYPE_STRING
    assert index.field_span(2, "b") is None
    assert {"a", "b", "extra"} <= index.paths()


def test_json_index_arrays_excluded_from_level0_navigation():
    objects = [{"a": 1, "items": [{"x": 1}, {"x": 2}]}] * 3
    data = _json_bytes(objects)
    index = si.build_json_index(data)
    span = index.field_span(0, "items")
    assert span is not None and span[2] == si.TYPE_ARRAY
    # Array element fields are not registered as paths of their own.
    assert "items.x" not in index.paths()
    # The recorded span parses back to the array.
    start, end, _ = span
    assert json.loads(data[start:end]) == [{"x": 1}, {"x": 2}]


def test_json_index_value_spans_roundtrip():
    objects = [{"s": 'he said "hi"', "n": -1.5e3, "b": True, "z": None}]
    data = _json_bytes(objects)
    index = si.build_json_index(data)
    start, end, code = index.field_span(0, "s")
    assert json.loads(data[start:end]) == 'he said "hi"'
    assert code == si.TYPE_STRING
    assert index.field_span(0, "b")[2] == si.TYPE_BOOL
    assert index.field_span(0, "z")[2] == si.TYPE_NULL


def test_json_index_rejects_non_object_stream():
    with pytest.raises(StorageError):
        si.build_json_index(b"[1, 2, 3]")


def test_json_index_size_is_fraction_of_file():
    objects = [
        {"a": i, "b": i * 2, "c": "padding-" * 40 + str(i), "d": [1, 2, 3],
         "body": "lorem ipsum dolor sit amet " * 8}
        for i in range(100)
    ]
    data = _json_bytes(objects)
    index = si.build_json_index(data)
    assert 0 < index.size_bytes < len(data)


# -- memory manager --------------------------------------------------------------------


def test_memory_manager_maps_files(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(b"hello world")
    manager = MemoryManager()
    mapped = manager.map_file(str(path))
    assert bytes(mapped.data[:5]) == b"hello"
    assert str(path) in manager.mapped_files[0]
    manager.release_all()


def test_memory_manager_missing_file():
    manager = MemoryManager()
    with pytest.raises(StorageError):
        manager.map_file("/does/not/exist")


def test_cache_arena_accounting():
    arena = CacheArena(1000)
    arena.register("a", 400)
    arena.register("b", 500)
    assert arena.used_bytes == 900
    assert not arena.can_fit(200)
    with pytest.raises(StorageError):
        arena.register("c", 200)
    arena.unregister("a")
    assert arena.can_fit(200)
    with pytest.raises(StorageError):
        arena.register("huge", 5000)


def test_cache_arena_rejects_duplicates_and_bad_budget():
    with pytest.raises(StorageError):
        CacheArena(0)
    arena = CacheArena(100)
    arena.register("x", 10)
    with pytest.raises(StorageError):
        arena.register("x", 10)


# -- catalog ----------------------------------------------------------------------------


def test_catalog_register_and_lookup():
    catalog = Catalog()
    schema = t.make_schema({"a": "int"})
    dataset = Dataset("d", DataFormat.CSV, "/tmp/d.csv", schema)
    catalog.register(dataset)
    assert "d" in catalog
    assert catalog.get("d").schema is schema
    assert catalog.element_types() == {"d": schema}
    with pytest.raises(CatalogError):
        catalog.register(dataset)
    catalog.register(dataset, replace=True)
    with pytest.raises(CatalogError):
        catalog.get("missing")


def test_catalog_statistics_and_unknown_format():
    catalog = Catalog()
    schema = t.make_schema({"a": "int"})
    with pytest.raises(CatalogError):
        catalog.register(Dataset("x", "parquet", "p", schema))
    catalog.register(Dataset("d", DataFormat.JSON, "p", schema))
    stats = DatasetStatistics(cardinality=10, min_values={"a": 0}, max_values={"a": 9})
    catalog.set_statistics("d", stats)
    assert catalog.statistics("d").value_range("a") == (0, 9)
    assert catalog.statistics("d").value_range("missing") is None
