"""Tests for the vectorized batch executor and the result-assembly fixes.

Covers:

* regression tests for three engine bugs (ORDER BY on a non-projected column,
  stale compiled programs after re-registration, silent broadcast/None-fill in
  result assembly),
* a differential suite asserting the codegen, vectorized and Volcano tiers
  return identical rows on the Sailors/Ships and JSON workloads,
* unit coverage of the plug-in ``scan_batches`` API (native fast paths and
  the per-tuple shim).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import ProteusEngine
from repro.core import types as t
from repro.core.engine import _columns_to_rows
from repro.errors import ExecutionError
from repro.storage.binary_format import write_column_table

from tests.conftest import make_engine

SAILOR_COUNT = 40
SHIP_COUNT = 25

SAILORS_SCHEMA = t.make_schema(
    {"sid": "int", "sname": "string", "rating": "int", "age": "float"}
)
SHIPS_SCHEMA = t.make_schema(
    {"shid": "int", "owner": "int", "tons": "float", "built": "int"}
)
NULLS_SCHEMA = t.make_schema({"id": "int", "val": "float", "tag": "string"})


def sailors() -> list[dict]:
    return [
        {
            "sid": i,
            "sname": f"sailor{i % 7}",
            "rating": i % 10,
            "age": 18.0 + (i * 3) % 40,
        }
        for i in range(SAILOR_COUNT)
    ]


def ships() -> list[dict]:
    return [
        {
            "shid": i,
            "owner": (i * 3) % SAILOR_COUNT,
            "tons": round(50.0 + i * 7.5, 2),
            "built": 1980 + i % 30,
        }
        for i in range(SHIP_COUNT)
    ]


@pytest.fixture(scope="module")
def workload_dir(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("vectorized_workloads")

    with open(directory / "sailors.csv", "w", encoding="utf-8") as handle:
        handle.write("sid,sname,rating,age\n")
        for row in sailors():
            handle.write(f"{row['sid']},{row['sname']},{row['rating']},{row['age']}\n")

    rows = ships()
    columns = {
        "shid": np.asarray([r["shid"] for r in rows], dtype=np.int64),
        "owner": np.asarray([r["owner"] for r in rows], dtype=np.int64),
        "tons": np.asarray([r["tons"] for r in rows], dtype=np.float64),
        "built": np.asarray([r["built"] for r in rows], dtype=np.int64),
    }
    write_column_table(str(directory / "ships_columns"), columns, SHIPS_SCHEMA)

    with open(directory / "nanvals.csv", "w", encoding="utf-8") as handle:
        handle.write("id,val\n1,1.5\n2,nan\n3,2.5\n")

    with open(directory / "nulls.json", "w", encoding="utf-8") as handle:
        for i in range(30):
            record = {
                "id": i,
                "val": None if i % 3 == 0 else i * 2.0,
                "tag": None if i % 5 == 0 else f"t{i % 2}",
            }
            handle.write(json.dumps(record) + "\n")

    return str(directory)


def _tier_engine(paths, workload_dir, **kwargs) -> ProteusEngine:
    engine = make_engine(paths, enable_caching=False, **kwargs)
    engine.register_csv(
        "sailors", os.path.join(workload_dir, "sailors.csv"), schema=SAILORS_SCHEMA
    )
    engine.register_binary_columns(
        "ships", os.path.join(workload_dir, "ships_columns")
    )
    engine.register_json(
        "nulls", os.path.join(workload_dir, "nulls.json"), schema=NULLS_SCHEMA
    )
    engine.register_csv(
        "nanvals",
        os.path.join(workload_dir, "nanvals.csv"),
        schema=t.make_schema({"id": "int", "val": "float"}),
    )
    return engine


@pytest.fixture
def tier_engines(paths, workload_dir):
    """(codegen, vectorized, volcano) engines over the same datasets."""
    return (
        _tier_engine(paths, workload_dir),
        _tier_engine(paths, workload_dir, enable_codegen=False),
        _tier_engine(
            paths, workload_dir, enable_codegen=False, enable_vectorized=False
        ),
    )


def _normalized(rows):
    out = []
    for row in rows:
        out.append(
            tuple(
                round(float(v), 6)
                if isinstance(v, (int, float)) and not isinstance(v, bool)
                else v
                for v in row
            )
        )
    return sorted(out, key=repr)


# ---------------------------------------------------------------------------
# Regression tests for the three engine bugs
# ---------------------------------------------------------------------------


def test_order_by_missing_column_raises(engine):
    with pytest.raises(ExecutionError, match="price"):
        engine.query("SELECT id FROM items_bin ORDER BY price")


def test_order_by_projected_column_still_works(engine):
    result = engine.query("SELECT id FROM items_bin WHERE id < 5 ORDER BY id DESC")
    assert [row[0] for row in result.rows] == [4, 3, 2, 1, 0]


def test_reregister_invalidates_compiled_programs(tmp_path):
    path_a = tmp_path / "a.csv"
    path_a.write_text("k,v\n" + "".join(f"{i},{i}\n" for i in range(10)))
    path_b = tmp_path / "b.csv"
    path_b.write_text("k,v\n" + "".join(f"{i},{i * 100}\n" for i in range(10)))
    schema = t.make_schema({"k": "int", "v": "int"})

    engine = ProteusEngine(enable_caching=False)
    engine.register_csv("swap", str(path_a), schema=schema)
    assert engine.query("SELECT SUM(v) FROM swap").scalar() == sum(range(10))
    # Re-registering the same name with a different file must not serve the
    # stale compiled program (which bakes the old Dataset in as a constant).
    engine.register_csv("swap", str(path_b), schema=schema)
    assert engine.query("SELECT SUM(v) FROM swap").scalar() == sum(range(10)) * 100


def test_reregister_invalidates_caches(tmp_path):
    path_a = tmp_path / "a.csv"
    path_a.write_text("k,v\n" + "".join(f"{i},{i}\n" for i in range(10)))
    path_b = tmp_path / "b.csv"
    path_b.write_text("k,v\n" + "".join(f"{i},{i + 7}\n" for i in range(10)))
    schema = t.make_schema({"k": "int", "v": "int"})

    engine = ProteusEngine(enable_caching=True)
    engine.register_csv("swap", str(path_a), schema=schema)
    assert engine.query("SELECT SUM(v) FROM swap").scalar() == sum(range(10))
    engine.register_csv("swap", str(path_b), schema=schema)
    assert engine.query("SELECT SUM(v) FROM swap").scalar() == sum(range(10)) + 70


def test_columns_to_rows_missing_column_raises():
    with pytest.raises(ExecutionError, match="missing"):
        _columns_to_rows(["present", "missing"], {"present": [1, 2]})


def test_columns_to_rows_mismatched_lengths_raise():
    with pytest.raises(ExecutionError, match="mismatched"):
        _columns_to_rows(["a", "b"], {"a": [1, 2, 3], "b": [1]})
    with pytest.raises(ExecutionError, match="mismatched"):
        _columns_to_rows(
            ["a", "b"], {"a": np.arange(3), "b": np.arange(2)}
        )


def test_columns_to_rows_broadcasts_genuine_scalars():
    # Scalar aggregates / literals broadcast across the row count ...
    rows = _columns_to_rows(["n", "x"], {"n": 7, "x": [10, 20, 30]})
    assert rows == [(7, 10), (7, 20), (7, 30)]
    rows = _columns_to_rows(["n", "x"], {"n": np.asarray(7), "x": np.arange(2)})
    assert rows == [(7, 0), (7, 1)]
    # ... and an all-scalar result is a single row.
    assert _columns_to_rows(["a", "b"], {"a": 1, "b": 2.5}) == [(1, 2.5)]


# ---------------------------------------------------------------------------
# Differential suite: codegen vs vectorized vs Volcano
# ---------------------------------------------------------------------------

DIFFERENTIAL_QUERIES = [
    # Sailors/Ships (CSV + binary columns): selections, ORDER BY, LIMIT.
    "SELECT COUNT(*) FROM sailors WHERE rating > 4",
    # Constant-only projections keep the selected row count.
    "SELECT 7 AS c FROM sailors WHERE rating > 7",
    "SELECT sid, age FROM sailors WHERE rating >= 7 ORDER BY sid LIMIT 5",
    "SELECT sid, sname FROM sailors WHERE age < 30 ORDER BY sid DESC",
    "SELECT MAX(tons), MIN(built) FROM ships WHERE built >= 1990",
    # Joins across formats.
    "SELECT COUNT(*) FROM sailors s JOIN ships h ON s.sid = h.owner "
    "WHERE s.rating > 2",
    "SELECT SUM(h.tons) FROM sailors s JOIN ships h ON s.sid = h.owner "
    "WHERE s.age < 40 AND h.built > 1985",
    # Group-by over each side.
    "SELECT rating, COUNT(*), MAX(age) FROM sailors GROUP BY rating",
    "SELECT built, SUM(tons) FROM ships GROUP BY built",
    "SELECT sname, COUNT(*) FROM sailors GROUP BY sname ORDER BY sname",
    # Aggregate arithmetic and logical combinations in group-by heads.
    "SELECT SUM(tons) / COUNT(*) FROM ships WHERE built < 2005",
    "SELECT rating, MAX(age) > 30 AND MIN(age) > 18 FROM sailors GROUP BY rating",
    "SELECT built, SUM(tons) / COUNT(*) FROM ships GROUP BY built",
    # JSON workloads (flat and nested).
    "SELECT COUNT(*) FROM items_json WHERE qty < 5",
    "SELECT qty, COUNT(*), MAX(price) FROM items_json GROUP BY qty ORDER BY qty",
    "SELECT origin.country, COUNT(*) FROM orders GROUP BY origin.country",
    "for { o <- orders, l <- o.lines, l.qty > 1 } yield count",
    "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item)",
    # Null handling: missing JSON values must not qualify predicates and must
    # be skipped by aggregates in every tier.
    "SELECT COUNT(*) FROM nulls WHERE val > 10",
    "SELECT COUNT(*) FROM nulls WHERE val != 4",
    "SELECT COUNT(*) FROM nulls WHERE val != tag",
    "SELECT COUNT(*) FROM nulls WHERE tag = 't1'",
    "SELECT COUNT(*) FROM nulls WHERE tag != 't0'",
    "SELECT SUM(val), MIN(val), MAX(val) FROM nulls WHERE id >= 0",
    # All-missing extrema are None (not NaN) in every tier, and arithmetic
    # over them propagates None instead of crashing.
    "SELECT MAX(val), MIN(val) FROM nulls WHERE id < 1",
    "SELECT MAX(val) + 1 FROM nulls WHERE id < 1",
    "SELECT id, MAX(val) + 1 FROM nulls GROUP BY id",
    # Division by a zero aggregate follows NumPy semantics in every tier.
    "SELECT SUM(val) / MIN(id - 1) FROM nanvals",
    # Bare truthiness predicates: missing values are false in every tier.
    "SELECT id FROM nulls WHERE val",
    "SELECT id FROM nulls WHERE tag",
    # Projected / ordered missing numerics surface as None in every tier.
    "SELECT id, val FROM nulls",
    "SELECT id, val FROM nulls ORDER BY val",
    # Genuine NaN values in raw float data behave as missing in every tier.
    "SELECT SUM(val), MIN(val), MAX(val) FROM nanvals",
    "SELECT COUNT(*) FROM nanvals WHERE val != 1.5",
    "SELECT id FROM nanvals WHERE val",
    "SELECT id FROM nanvals WHERE NOT val",
    "SELECT id FROM nanvals WHERE val AND id > 0",
    "SELECT id FROM nanvals WHERE val OR id > 2",
]


@pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
def test_tiers_return_identical_rows(tier_engines, query):
    codegen_engine, vectorized_engine, volcano_engine = tier_engines
    reference = volcano_engine.query(query)
    assert reference.tier == "volcano"
    vectorized = vectorized_engine.query(query)
    assert vectorized.tier in ("vectorized", "volcano")
    generated = codegen_engine.query(query)
    assert _normalized(vectorized.rows) == _normalized(reference.rows), query
    assert _normalized(generated.rows) == _normalized(reference.rows), query


def test_vectorized_tier_actually_runs(tier_engines):
    _, vectorized_engine, _ = tier_engines
    result = vectorized_engine.query("SELECT COUNT(*) FROM sailors WHERE rating > 4")
    assert result.tier == "vectorized"
    assert result.profile is not None
    assert result.profile.execution_tier == "vectorized"
    assert result.profile.batches_processed >= 1
    assert result.profile.rows_scanned == SAILOR_COUNT


def test_vectorized_matches_volcano_with_tiny_batches(paths, workload_dir):
    """Multi-batch execution (joins, grouping, unnest) with batch_size 7."""
    small = _tier_engine(
        paths, workload_dir, enable_codegen=False, vectorized_batch_size=7
    )
    volcano = _tier_engine(
        paths, workload_dir, enable_codegen=False, enable_vectorized=False
    )
    for query in DIFFERENTIAL_QUERIES:
        expected = volcano.query(query)
        actual = small.query(query)
        assert _normalized(actual.rows) == _normalized(expected.rows), query


@pytest.mark.parametrize(
    "query",
    [
        # Object keys with None and float keys with NaN-encoded nulls.
        "SELECT tag, COUNT(*) FROM nulls GROUP BY tag",
        "SELECT val, COUNT(*) FROM nulls GROUP BY val",
    ],
)
def test_null_group_keys_fall_back_to_volcano(tier_engines, query):
    codegen_engine, vectorized_engine, volcano_engine = tier_engines
    reference = volcano_engine.query(query)
    # Grouping on a key column containing nulls is not columnar-groupable;
    # both the codegen and the vectorized tier must transparently fall back
    # and still produce Volcano's rows (None group keys, not NaN).
    for engine_under_test in (codegen_engine, vectorized_engine):
        result = engine_under_test.query(query)
        assert result.tier == "volcano"
        assert _normalized(result.rows) == _normalized(reference.rows)


def test_null_join_keys_fall_back_to_volcano(tier_engines):
    codegen_engine, vectorized_engine, volcano_engine = tier_engines
    # NaN-encoded missing float keys must not surface as nan join rows where
    # Volcano produces None — every columnar tier falls back.
    query = (
        "SELECT a.val AS av, b.val AS bv FROM nulls a JOIN nulls b "
        "ON a.val = b.val"
    )
    reference = volcano_engine.query(query)
    # Missing keys join nothing, in the fallback tier too.
    assert all(value is not None for row in reference.rows for value in row)
    for engine_under_test in (codegen_engine, vectorized_engine):
        result = engine_under_test.query(query)
        assert result.tier == "volcano"
        assert _normalized(result.rows) == _normalized(reference.rows)


def test_duplicate_output_names_rejected(tier_engines):
    from repro.errors import PlanningError

    codegen_engine, _, _ = tier_engines
    # Two different expressions under one output name would silently shadow
    # each other in every executor's name-keyed result columns.
    with pytest.raises(PlanningError, match="sid"):
        codegen_engine.query(
            "SELECT s.sid, h.shid AS sid FROM sailors s "
            "JOIN ships h ON s.sid = h.owner"
        )
    # The same expression repeated under one name is fine — on every tier.
    for engine_under_test in tier_engines:
        result = engine_under_test.query("SELECT sid, sid FROM sailors WHERE sid < 2")
        assert result.rows == [(0, 0), (1, 1)], result.tier


def test_scan_preserves_large_int_precision(tmp_path):
    """CSV/JSON numeric fast paths must not round ints above 2**53 through
    float64 at scan time."""
    big = 2**53 + 1
    csv_path = tmp_path / "big.csv"
    csv_path.write_text(f"g,k\n0,{big}\n0,5\n")
    json_path = tmp_path / "big.json"
    json_path.write_text(
        json.dumps({"g": 0, "k": big}) + "\n" + json.dumps({"g": 0, "k": 5}) + "\n"
    )
    huge = 2**70  # beyond int64: lands in an object buffer, stays exact
    huge_csv = tmp_path / "huge.csv"
    huge_csv.write_text(f"g,k\n0,{huge}\n0,5\n")
    schema = t.make_schema({"g": "int", "k": "int"})
    for enable_codegen, enable_vectorized in ((True, True), (False, True), (False, False)):
        engine = ProteusEngine(
            enable_caching=False,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
        )
        engine.register_csv("bigc", str(csv_path), schema=schema)
        engine.register_json("bigj", str(json_path), schema=schema)
        engine.register_csv("huge", str(huge_csv), schema=schema)
        for source in ("bigc", "bigj"):
            result = engine.query(f"SELECT g, MAX(k) FROM {source} GROUP BY g")
            assert result.rows == [(0, big)], (source, result.tier)
        result = engine.query("SELECT g, MAX(k) FROM huge GROUP BY g")
        assert result.rows == [(0, huge)], result.tier
    # The lazy (scan_columns_at) path must stay exact beyond int64 too.
    dataset = engine.catalog.get("huge")
    lazy = engine.plugins["csv"].scan_columns_at(
        dataset, [("k",)], np.asarray([0], dtype=np.int64)
    )
    assert lazy.column(("k",)).tolist() == [huge]


def test_mixed_type_group_keys_fall_back_to_volcano(tmp_path):
    """Heterogeneous raw JSON with a key field of mixed types must demote to
    the Volcano tier instead of crashing in np.unique/argsort."""
    path = tmp_path / "het.json"
    path.write_text(
        json.dumps({"k": 0, "v": 1.0}) + "\n" + json.dumps({"k": "a", "v": 2.0}) + "\n"
    )
    for enable_codegen in (True, False):
        engine = ProteusEngine(enable_caching=False, enable_codegen=enable_codegen)
        engine.register_json(
            "het", str(path), schema=t.make_schema({"k": "string", "v": "float"})
        )
        result = engine.query("SELECT k, COUNT(*) FROM het GROUP BY k")
        assert result.tier == "volcano"
        assert set(result.rows) == {(0, 1), ("a", 1)}


def test_big_int_arithmetic_and_sums_match_across_tiers(tmp_path):
    """Arithmetic near int64 limits and sums of >2**53 ints must not wrap or
    round on the columnar tiers."""
    near_max = 9_000_000_000_000_000_000  # fits int64; doubling would wrap
    exact = 2**53 + 1
    path = tmp_path / "bigmath.csv"
    path.write_text(f"id,k,v\n1,{near_max},{exact}\n2,5,{exact}\n3,7,{exact}\n")
    schema = t.make_schema({"id": "int", "k": "int", "v": "int"})
    engines = []
    for enable_codegen, enable_vectorized in ((True, True), (False, True), (False, False)):
        engine = ProteusEngine(
            enable_caching=False,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
        )
        engine.register_csv("bigmath", str(path), schema=schema)
        engines.append(engine)
    for query, expected in (
        ("SELECT k * 2 AS dbl FROM bigmath WHERE id = 1", [(near_max * 2,)]),
        ("SELECT SUM(v) FROM bigmath", [(3 * exact,)]),
        ("SELECT id, SUM(v) FROM bigmath GROUP BY id",
         [(1, exact), (2, exact), (3, exact)]),
        ("SELECT SUM(k) FROM bigmath WHERE id >= 2", [(12,)]),
    ):
        for engine in engines:
            result = engine.query(query)
            assert sorted(result.rows) == expected, (query, result.tier, result.rows)


def test_int64_sum_does_not_wrap(tmp_path):
    near_max = 9_000_000_000_000_000_000
    path = tmp_path / "wrap.csv"
    path.write_text(f"id,k\n1,{near_max}\n2,{near_max}\n")
    schema = t.make_schema({"id": "int", "k": "int"})
    for enable_codegen, enable_vectorized in ((True, True), (False, True), (False, False)):
        engine = ProteusEngine(
            enable_caching=False,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
        )
        engine.register_csv("wrap", str(path), schema=schema)
        assert engine.query("SELECT SUM(k) FROM wrap").scalar() == 2 * near_max
        result = engine.query("SELECT id - id, SUM(k) FROM wrap GROUP BY id - id")
        assert result.rows == [(0, 2 * near_max)]


def test_empty_sum_is_integer_zero_on_every_tier(tier_engines):
    for engine in tier_engines:
        result = engine.query("SELECT SUM(val) FROM nulls WHERE id < 0")
        assert result.rows == [(0,)], result.tier
        assert isinstance(result.rows[0][0], int), result.tier


def test_nan_probe_keys_keep_vectorized_tier(tmp_path):
    """Codegen rejects NaN probe keys at the kernel; the vectorized tier
    pre-filters them and must still get its attempt (not a Volcano demotion)."""
    build = tmp_path / "b.csv"
    build.write_text("bid,x\n1,10\n2,20\n")
    probe = tmp_path / "r.json"
    probe.write_text(
        json.dumps({"rid": 1, "ref": 1.0}) + "\n"
        + json.dumps({"rid": 2, "ref": None}) + "\n"
    )
    engine = ProteusEngine(enable_caching=False)
    engine.register_csv("b", str(build), schema=t.make_schema({"bid": "int", "x": "int"}))
    engine.register_json("r", str(probe), schema=t.make_schema({"rid": "int", "ref": "float"}))
    result = engine.query("SELECT r.rid, b.x FROM b JOIN r ON b.bid = r.ref")
    assert result.tier == "vectorized"
    assert result.rows == [(1, 10)]


def test_json_nullable_big_ints_stay_exact(tmp_path):
    big = 2**53 + 1
    path = tmp_path / "nbig.json"
    path.write_text(
        json.dumps({"g": 0, "k": big}) + "\n" + json.dumps({"g": 0, "k": None}) + "\n"
    )
    schema = t.make_schema({"g": "int", "k": "int"})
    for enable_codegen, enable_vectorized in ((True, True), (False, True), (False, False)):
        engine = ProteusEngine(
            enable_caching=False,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
        )
        engine.register_json("nbig", str(path), schema=schema)
        result = engine.query("SELECT g, MAX(k) FROM nbig GROUP BY g")
        assert result.rows == [(0, big)], result.tier


def test_builtin_attribute_names_do_not_leak(tmp_path):
    """Field names colliding with builtin attributes over non-record values
    resolve to None (not bound methods) on every tier."""
    path = tmp_path / "attr.json"
    path.write_text(
        json.dumps({"id": 1, "a": {"count": 7}}) + "\n"
        + json.dumps({"id": 2, "a": [1, 2]}) + "\n"
    )
    schema = t.make_schema({"id": "int", "a": {"count": "int"}})
    for enable_codegen, enable_vectorized in ((True, True), (False, True), (False, False)):
        engine = ProteusEngine(
            enable_caching=False,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
        )
        engine.register_json("h", str(path), schema=schema)
        result = engine.query("SELECT id FROM h WHERE a.count")
        assert result.rows == [(1,)], result.tier


def test_values_to_array_keeps_huge_ints_exact():
    from repro.plugins.base import values_to_array

    column = values_to_array([2**70, 5])
    assert column.dtype == object
    assert column.tolist() == [2**70, 5]


def test_null_safe_negation_and_arithmetic_helpers():
    from repro.core.executor import radix

    assert radix.null_safe_neg(np.asarray([True, False])).tolist() == [-1, 0]
    boxed = np.asarray([2.0, None], dtype=object)
    assert radix.null_safe_neg(boxed).tolist() == [-2.0, None]
    assert radix.null_safe_arith("+", boxed, 1).tolist() == [3.0, None]


def test_group_extrema_preserve_int64_precision():
    from repro.core.executor import radix

    values = np.asarray([2**53 + 1, 5], dtype=np.int64)
    result = radix.group_aggregate("max", np.asarray([0, 0]), 1, values)
    assert result.dtype == np.int64
    assert int(result[0]) == 2**53 + 1
    result = radix.group_aggregate("min", np.asarray([0, 1]), 2, values)
    assert result.tolist() == [2**53 + 1, 5]


def test_empty_join_build_side_stays_vectorized(tier_engines):
    _, vectorized_engine, volcano_engine = tier_engines
    # The filter eliminates every build-side row; the join must produce an
    # empty result without demoting the query to the Volcano tier.
    query = (
        "SELECT s.sid, h.tons FROM sailors s JOIN ships h ON s.sid = h.owner "
        "WHERE s.rating > 1000"
    )
    result = vectorized_engine.query(query)
    assert result.tier == "vectorized"
    assert result.rows == volcano_engine.query(query).rows == []


def test_large_int_join_keys_do_not_collide():
    """Join keys above 2**53 must not be collapsed through a float64 cast."""
    from repro.core.executor import radix
    from repro.core.executor.vectorized import _align_probe_keys, _join_keys

    build = _join_keys(np.asarray([2**53, 2**53 + 1], dtype=np.int64), 2)
    table = radix.build_radix_table(build)
    probe, kept = _align_probe_keys(
        build.dtype.kind, _join_keys(np.asarray([2**53 + 1], dtype=np.int64), 1)
    )
    assert kept is None
    left_positions, _ = radix.probe_radix_table(table, probe)
    assert left_positions.tolist() == [1]


def test_int_probe_keys_against_float_build_side():
    """The mirrored direction: int probe keys not exactly representable in
    float64 must not round onto float build keys."""
    from repro.core.executor import radix
    from repro.core.executor.vectorized import _align_probe_keys

    table = radix.build_radix_table(np.asarray([float(2**53), 3.0]))
    probe, kept = _align_probe_keys(
        "f", np.asarray([2**53 + 1, 3], dtype=np.int64)
    )
    left_positions, right_positions = radix.probe_radix_table(table, probe)
    if kept is not None:
        right_positions = kept[right_positions]
    # 2**53 + 1 would round onto the 2**53 build key under a blanket cast.
    assert left_positions.tolist() == [1]
    assert right_positions.tolist() == [1]


def test_int64_min_join_keys_match_in_both_directions():
    """INT64_MIN is a valid, exactly-representable key; the precision guards
    must not drop it."""
    from repro.core.executor import radix
    from repro.core.executor.vectorized import _align_probe_keys

    imin = -(2**63)
    table = radix.build_radix_table(np.asarray([imin, 5], dtype=np.int64))
    probe, kept = _align_probe_keys("i", np.asarray([float(imin), 5.0]))
    left_positions, _ = radix.probe_radix_table(table, probe)
    assert sorted(left_positions.tolist()) == [0, 1]
    table = radix.build_radix_table(np.asarray([float(imin), 5.0]))
    probe, kept = _align_probe_keys("f", np.asarray([imin, 5], dtype=np.int64))
    left_positions, _ = radix.probe_radix_table(table, probe)
    assert sorted(left_positions.tolist()) == [0, 1]


def test_group_code_capacity_guard():
    """Multi-key groupings whose combined code space would wrap int64 must
    fall back instead of silently merging groups."""
    from repro.core.executor import radix
    from repro.errors import VectorizationError

    keys = [np.arange(2**20, dtype=np.int64)] * 4  # capacity 2**80
    with pytest.raises(VectorizationError, match="key-combination"):
        radix.radix_group(keys)


def test_float_probe_keys_against_int_build_side():
    """Non-integral (and NaN) float probe keys cannot match integer build
    keys; integral ones must, with positions mapped back correctly."""
    from repro.core.executor import radix
    from repro.core.executor.vectorized import _align_probe_keys

    table = radix.build_radix_table(np.asarray([3, 4], dtype=np.int64))
    probe, kept = _align_probe_keys("i", np.asarray([3.5, np.nan, 3.0]))
    left_positions, right_positions = radix.probe_radix_table(table, probe)
    if kept is not None:
        right_positions = kept[right_positions]
    assert left_positions.tolist() == [0]
    assert right_positions.tolist() == [2]


def test_codegen_unavailable_shapes_use_vectorized_not_volcano(tier_engines):
    codegen_engine, _, _ = tier_engines
    # Non-equi joins plan as nested loops, which the generator covers; record
    # construction does not.  A plain projection with codegen enabled runs the
    # generated program, the same query with codegen off runs vectorized.
    result = codegen_engine.query("SELECT sid FROM sailors WHERE rating > 8")
    assert result.tier == "codegen"
    codegen_engine.enable_codegen = False
    result = codegen_engine.query("SELECT sid FROM sailors WHERE rating > 8")
    assert result.tier == "vectorized"


# ---------------------------------------------------------------------------
# scan_batches plug-in API
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "dataset,paths_requested",
    [
        ("items_csv", [("id",), ("price",), ("category",)]),
        ("items_json", [("id",), ("qty",)]),
        ("items_bin", [("id",), ("category",)]),
        ("items_rowbin", [("id",), ("qty",)]),  # exercises the per-tuple shim
        ("orders", [("okey",), ("origin", "country")]),
    ],
)
def test_scan_batches_matches_scan_columns(engine, dataset, paths_requested):
    registered = engine.catalog.get(dataset)
    plugin = engine.plugins[registered.format]
    full = plugin.scan_columns(registered, paths_requested)
    batches = list(plugin.scan_batches(registered, paths_requested, batch_size=32))
    assert sum(batch.count for batch in batches) == full.count
    oids = np.concatenate([batch.oids for batch in batches])
    assert oids.tolist() == list(range(full.count))
    for path in paths_requested:
        merged = np.concatenate([batch.column(tuple(path)) for batch in batches])
        assert [v for v in merged] == [v for v in full.column(tuple(path))]


def test_scan_batches_respects_batch_size(engine):
    registered = engine.catalog.get("items_bin")
    plugin = engine.plugins[registered.format]
    batches = list(plugin.scan_batches(registered, [("id",)], batch_size=50))
    assert [batch.count for batch in batches] == [50, 50, 20]
