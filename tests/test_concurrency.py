"""Concurrency correctness: the static lint (seeded violations + the real
repo), the runtime DebugLock sanitizer, and engine-level races — concurrent
``prepare()`` / ``query()`` from many threads against the shared prepared
cache, codegen program cache and cache manager."""

from __future__ import annotations

import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.core.concurrency import (
    DebugLock,
    LockOrderError,
    assert_lock_order_acyclic,
    debug_locks_enabled,
    global_lock_graph,
    make_lock,
    make_rlock,
    reset_lock_order,
    run_concurrently,
    set_debug_locks,
    switch_interval,
)

from tests.conftest import ITEMS_SCHEMA, expected_items, make_engine

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
import concurrency_lint  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def debug_locks():
    """Enable DebugLock for the test, restoring state and graph after."""
    previous = debug_locks_enabled()
    reset_lock_order()
    set_debug_locks(True)
    yield
    set_debug_locks(previous)
    reset_lock_order()


# ---------------------------------------------------------------------------
# Runtime sanitizer: DebugLock + lock-order graph
# ---------------------------------------------------------------------------


def test_make_lock_is_plain_lock_when_disabled():
    previous = debug_locks_enabled()
    set_debug_locks(False)
    try:
        lock = make_lock("Test.disabled")
        assert not isinstance(lock, DebugLock)
        with lock:
            pass
    finally:
        set_debug_locks(previous)


def test_make_lock_is_debug_lock_when_enabled(debug_locks):
    lock = make_lock("Test.enabled")
    assert isinstance(lock, DebugLock)
    with lock:
        pass


def test_debug_lock_rejects_reentry(debug_locks):
    lock = make_lock("Test.reentry")
    with lock:
        with pytest.raises(LockOrderError, match="re-ent|already held"):
            lock.acquire()


def test_debug_rlock_allows_reentry(debug_locks):
    lock = make_rlock("Test.rlock")
    with lock:
        with lock:
            pass


def test_lock_order_cycle_detected(debug_locks):
    a = make_lock("Test.a")
    b = make_lock("Test.b")
    with a:
        with b:
            pass
    with pytest.raises(LockOrderError, match="cycle|order"):
        with b:
            with a:
                pass
    with pytest.raises(LockOrderError):
        assert_lock_order_acyclic()


def test_lock_order_graph_records_edges(debug_locks):
    a = make_lock("Test.outer")
    b = make_lock("Test.inner")
    with a:
        with b:
            pass
    assert "Test.inner" in global_lock_graph().edges().get("Test.outer", set())
    assert_lock_order_acyclic()


def test_run_concurrently_preserves_order_and_raises():
    results = run_concurrently(lambda i: i * i, 8)
    assert results == [i * i for i in range(8)]

    def boom(i: int) -> int:
        if i == 3:
            raise ValueError("worker 3 failed")
        return i

    with pytest.raises(ValueError, match="worker 3"):
        run_concurrently(boom, 8)


def test_switch_interval_restores():
    before = sys.getswitchinterval()
    with switch_interval(1e-4):
        assert sys.getswitchinterval() == pytest.approx(1e-4)
    assert sys.getswitchinterval() == pytest.approx(before)


# ---------------------------------------------------------------------------
# Static lint: seeded violations against synthetic repos
# ---------------------------------------------------------------------------

DECLARATION_TEMPLATE = """\
SHARED_CLASSES = {shared}
GUARDED_BY = {guarded}
THREAD_LOCAL = {thread_local}
IMMUTABLE_AFTER_INIT = {immutable}
BENIGN_RACES = {benign}
EXTERNALLY_GUARDED = {external}
"""


def seed_repo(
    tmp_path: Path,
    module_source: str,
    *,
    shared: dict | None = None,
    guarded: dict | None = None,
    thread_local: dict | None = None,
    immutable: dict | None = None,
    benign: dict | None = None,
    external: dict | None = None,
) -> Path:
    """A minimal checked tree: the declaration module plus one library."""
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "concurrency.py").write_text(
        DECLARATION_TEMPLATE.format(
            shared=shared or {},
            guarded=guarded or {},
            thread_local=thread_local or {},
            immutable=immutable or {},
            benign=benign or {},
            external=external or {},
        ),
        encoding="utf-8",
    )
    (tmp_path / "src" / "repro" / "lib.py").write_text(
        textwrap.dedent(module_source), encoding="utf-8"
    )
    return tmp_path


GUARDED_PLUGIN = """
    import threading

    class Plugin:
        def __init__(self):
            self._states = {}
            self._state_lock = threading.Lock()

        def publish(self, name, state):
            with self._state_lock:
                self._states.setdefault(name, state)

        def invalidate(self, name):
            with self._state_lock:
                self._states.pop(name, None)
"""


def test_lint_accepts_guarded_mutations(tmp_path):
    root = seed_repo(
        tmp_path,
        GUARDED_PLUGIN,
        guarded={"Plugin._states": "_state_lock"},
    )
    assert concurrency_lint.run(root) == []


@pytest.mark.parametrize(
    "mutation",
    [
        "self._states[name] = state",
        "self._states.setdefault(name, state)",
        "self._states.update({name: state})",
        "self._states.pop(name, None)",
        "del self._states[name]",
        "self._states = {}",
    ],
)
def test_lint_flags_unguarded_mutation_forms(tmp_path, mutation):
    # The non-subscript forms here are exactly what the old tier_lint
    # lock-discipline rule missed.
    root = seed_repo(
        tmp_path,
        f"""
        import threading

        class Plugin:
            def __init__(self):
                self._states = {{}}
                self._state_lock = threading.Lock()

            def publish(self, name, state):
                {mutation}
        """,
        guarded={"Plugin._states": "_state_lock"},
    )
    violations = concurrency_lint.run(root)
    assert len(violations) == 1
    assert "_states" in violations[0]
    assert "outside" in violations[0]


def test_lint_flags_undeclared_mutation(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Plugin:
            def __init__(self):
                self._states = {}
                self._lock = threading.Lock()

            def publish(self, name, state):
                with self._lock:
                    self._states[name] = state

            def sneak(self, value):
                self.extra = value
        """,
        guarded={"Plugin._states": "_lock"},
    )
    violations = concurrency_lint.run(root)
    assert len(violations) == 1
    assert "undeclared mutation of Plugin.extra" in violations[0]


def test_lint_flags_immutable_after_init_mutation(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Table:
            def __init__(self):
                self._lock = threading.Lock()
                self._columns = []

            def rebuild(self):
                self._columns.append(1)
        """,
        immutable={"Table._columns": "built once in __init__"},
    )
    violations = concurrency_lint.run(root)
    assert len(violations) == 1
    assert "IMMUTABLE_AFTER_INIT" in violations[0]


def test_lint_flags_lock_order_inversion(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Transfer:
            def __init__(self):
                self._accounts = threading.Lock()
                self._journal = threading.Lock()

            def deposit(self):
                with self._accounts:
                    with self._journal:
                        pass

            def audit(self):
                with self._journal:
                    with self._accounts:
                        pass
        """,
    )
    violations = concurrency_lint.run(root)
    assert any("lock-order cycle" in violation for violation in violations)
    assert any("Transfer._accounts" in violation for violation in violations)


def test_lint_flags_self_deadlock_through_call(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def evict(self, key):
                with self._lock:
                    self._entries.pop(key, None)

            def store(self, key, value):
                with self._lock:
                    self._entries[key] = value
                    self.evict(key)
        """,
        guarded={"Cache._entries": "_lock"},
    )
    violations = concurrency_lint.run(root)
    assert any("re-acquires" in violation for violation in violations)


def test_lint_flags_unlocked_call_to_locked_helper(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def _evict_locked(self, key):
                self._entries.pop(key, None)

            def evict(self, key):
                self._evict_locked(key)
        """,
        guarded={"Cache._entries": "_lock"},
    )
    violations = concurrency_lint.run(root)
    assert len(violations) == 1
    assert "_evict_locked" in violations[0]
    assert "without holding a lock" in violations[0]


def test_lint_flags_stale_declarations(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Plugin:
            def __init__(self):
                self._states = {}
                self._lock = threading.Lock()
        """,
        guarded={
            "Plugin._gone": "_lock",  # attribute does not exist
            "Ghost._states": "_lock",  # class does not exist
            "Plugin._states": "_missing_lock",  # lock does not exist
        },
        benign={"Plugin._states": "duplicate declaration"},
    )
    violations = concurrency_lint.run(root)
    assert any("stale GUARDED_BY entry 'Plugin._gone'" in v for v in violations)
    assert any("no class named Ghost" in v for v in violations)
    assert any("'_missing_lock'" in v for v in violations)
    assert any("declared in both" in v for v in violations)


def test_lint_flags_thread_spawn_in_unchecked_class(tmp_path):
    root = seed_repo(
        tmp_path,
        """
        import threading

        class Pool:
            def run(self, task):
                worker = threading.Thread(target=task)
                worker.start()
                worker.join()
        """,
    )
    violations = concurrency_lint.run(root)
    assert len(violations) == 1
    assert "spawns" in violations[0]
    assert "Pool" in violations[0]


def test_lint_repo_is_clean():
    assert concurrency_lint.run(REPO_ROOT) == []


def test_lint_cli(capsys):
    assert concurrency_lint.main(["--root", str(REPO_ROOT)]) == 0
    assert "concurrency_lint: ok" in capsys.readouterr().out
    assert concurrency_lint.main(["--root", str(REPO_ROOT), "--inventory"]) == 0
    inventory = capsys.readouterr().out
    assert "thread entry points" in inventory
    assert "WorkerPool" in inventory
    assert "static lock-order edges" in inventory


# ---------------------------------------------------------------------------
# Engine races: concurrent prepare/query against the shared caches
# ---------------------------------------------------------------------------

QUERIES = [
    "SELECT COUNT(*) FROM items_csv WHERE qty < 5",
    "SELECT SUM(price) FROM items_json WHERE qty > 2",
    "SELECT MAX(price) FROM items_bin WHERE id < 50",
    "SELECT COUNT(*) FROM items_rowbin WHERE category = 'cat2'",
]


@pytest.mark.parametrize("threads", [2, 8])
def test_concurrent_queries_on_cold_engine(paths, threads, debug_locks):
    """Many threads race first-touch scans, the per-text prepared cache, the
    codegen program cache and the cache manager on one shared engine."""
    engine = make_engine(paths)
    reference = make_engine(paths)
    expected = [reference.query(text).scalar() for text in QUERIES]

    with switch_interval():
        results = run_concurrently(
            lambda i: engine.query(QUERIES[i % len(QUERIES)]).scalar(),
            threads * len(QUERIES),
        )
    for index, value in enumerate(results):
        assert value == pytest.approx(expected[index % len(QUERIES)])
    assert_lock_order_acyclic()


@pytest.mark.parametrize("threads", [2, 8])
def test_concurrent_prepare_shares_one_prepared_query(paths, threads, debug_locks):
    engine = make_engine(paths)
    text = "SELECT id, price FROM items_csv WHERE qty > ?"

    with switch_interval():
        prepared = run_concurrently(
            lambda _: engine._prepare_cached(text), threads
        )
    assert all(p is prepared[0] for p in prepared)
    rows = expected_items()
    expected = sorted(
        (row["id"], row["price"]) for row in rows if row["qty"] > 7
    )
    result = sorted(tuple(row) for row in prepared[0].execute(7).rows)
    assert result == [
        (identifier, pytest.approx(price)) for identifier, price in expected
    ]
    assert_lock_order_acyclic()


def test_concurrent_prepare_and_catalog_churn(paths, debug_locks):
    """Re-registration bumps the catalog epoch while other threads execute
    prepared queries; every result must be consistent with some epoch."""
    engine = make_engine(paths)
    text = "SELECT COUNT(*) FROM items_csv WHERE qty < 5"
    expected = engine.query(text).scalar()
    prepared = engine.prepare(text)

    def task(i: int):
        if i % 4 == 3:
            engine.register_csv(
                "items_csv", paths["items_csv"], schema=ITEMS_SCHEMA
            )
            return expected
        return prepared.execute().scalar()

    with switch_interval():
        results = run_concurrently(task, 8)
    assert all(value == expected for value in results)
    assert_lock_order_acyclic()


@pytest.mark.parametrize("threads", [2, 8])
def test_concurrent_metrics_scrape_during_queries(paths, threads, debug_locks):
    engine = make_engine(paths)

    def task(i: int):
        if i % 2:
            return engine.metrics.render_prometheus()
        return engine.query(QUERIES[i % len(QUERIES)]).scalar()

    with switch_interval():
        results = run_concurrently(task, threads * 2)
    assert all(result is not None for result in results)
    assert_lock_order_acyclic()


def test_worker_pool_under_debug_locks(debug_locks):
    from repro.core.parallel.scheduler import WorkerPool

    pool = WorkerPool(4)
    with switch_interval():
        results = pool.run(list(range(64)), lambda item, worker: item * 2)
    assert results == [item * 2 for item in range(64)]
    assert_lock_order_acyclic()
