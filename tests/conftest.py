"""Shared fixtures: small heterogeneous datasets and engine factories."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import ProteusEngine
from repro.core import types as t
from repro.storage.binary_format import write_column_table, write_row_table

def pytest_addoption(parser):
    parser.addoption(
        "--stress",
        action="store_true",
        default=False,
        help=(
            "run the suite under the concurrency sanitizer: DebugLock "
            "wrappers record the lock-order graph (asserted acyclic at "
            "session end) and sys.setswitchinterval is cranked down so racy "
            "interleavings surface"
        ),
    )


@pytest.fixture(scope="session", autouse=True)
def _concurrency_stress(request):
    """No-op by default; under ``--stress`` every ``make_lock`` created for
    the rest of the session is a :class:`DebugLock` and thread switches are
    ~1000x more frequent."""
    if not request.config.getoption("--stress"):
        yield
        return
    from repro.core.concurrency import (
        assert_lock_order_acyclic,
        reset_lock_order,
        set_debug_locks,
        switch_interval,
    )

    reset_lock_order()
    set_debug_locks(True)
    try:
        with switch_interval():
            yield
    finally:
        set_debug_locks(False)
    assert_lock_order_acyclic()


#: Number of rows in the small "items" dataset used across the test suite.
ITEM_COUNT = 120
#: Number of orders in the nested "orders" dataset.
ORDER_COUNT = 60


def expected_items() -> list[dict]:
    """The canonical contents of the items dataset (same in every format)."""
    rows = []
    for i in range(ITEM_COUNT):
        rows.append(
            {
                "id": i,
                "qty": i % 10,
                "price": round(i * 1.5, 2),
                "category": f"cat{i % 4}",
            }
        )
    return rows


def expected_orders() -> list[dict]:
    """The canonical contents of the nested orders dataset (JSON only)."""
    orders = []
    for i in range(ORDER_COUNT):
        orders.append(
            {
                "okey": i,
                "total": round(i * 2.5, 2),
                "origin": {"country": "CH" if i % 2 else "US", "zone": i % 3},
                "lines": [
                    {"item": j, "qty": j + 1, "price": round((j + 1) * 3.0, 2)}
                    for j in range(i % 4)
                ],
            }
        )
    return orders


ITEMS_SCHEMA = t.make_schema(
    {"id": "int", "qty": "int", "price": "float", "category": "string"}
)

ORDERS_SCHEMA = t.make_schema(
    {
        "okey": "int",
        "total": "float",
        "origin": {"country": "string", "zone": "int"},
        "lines": [{"item": "int", "qty": "int", "price": "float"}],
    }
)


@pytest.fixture(scope="session")
def data_dir(tmp_path_factory) -> str:
    """Materialize the test datasets once per session."""
    directory = tmp_path_factory.mktemp("datasets")
    items = expected_items()
    orders = expected_orders()

    csv_path = directory / "items.csv"
    with open(csv_path, "w", encoding="utf-8") as handle:
        handle.write("id,qty,price,category\n")
        for row in items:
            handle.write(f"{row['id']},{row['qty']},{row['price']},{row['category']}\n")

    items_json_path = directory / "items.json"
    with open(items_json_path, "w", encoding="utf-8") as handle:
        for row in items:
            handle.write(json.dumps(row) + "\n")

    orders_json_path = directory / "orders.json"
    with open(orders_json_path, "w", encoding="utf-8") as handle:
        for order in orders:
            handle.write(json.dumps(order) + "\n")

    columns = {
        "id": np.asarray([row["id"] for row in items], dtype=np.int64),
        "qty": np.asarray([row["qty"] for row in items], dtype=np.int64),
        "price": np.asarray([row["price"] for row in items], dtype=np.float64),
        "category": np.asarray([row["category"] for row in items], dtype=object),
    }
    write_column_table(str(directory / "items_columns"), columns, ITEMS_SCHEMA)
    write_row_table(str(directory / "items_rows.bin"), columns, ITEMS_SCHEMA)
    return str(directory)


@pytest.fixture
def paths(data_dir) -> dict[str, str]:
    return {
        "items_csv": os.path.join(data_dir, "items.csv"),
        "items_json": os.path.join(data_dir, "items.json"),
        "orders_json": os.path.join(data_dir, "orders.json"),
        "items_columns": os.path.join(data_dir, "items_columns"),
        "items_rows": os.path.join(data_dir, "items_rows.bin"),
    }


def make_engine(paths: dict[str, str], **kwargs) -> ProteusEngine:
    """Create an engine with every test dataset registered."""
    engine = ProteusEngine(**kwargs)
    engine.register_csv("items_csv", paths["items_csv"], schema=ITEMS_SCHEMA)
    engine.register_json("items_json", paths["items_json"], schema=ITEMS_SCHEMA)
    engine.register_json("orders", paths["orders_json"], schema=ORDERS_SCHEMA)
    engine.register_binary_columns("items_bin", paths["items_columns"])
    engine.register_binary_rows("items_rowbin", paths["items_rows"])
    return engine


@pytest.fixture
def engine(paths) -> ProteusEngine:
    return make_engine(paths)


@pytest.fixture
def volcano_engine(paths) -> ProteusEngine:
    return make_engine(
        paths, enable_codegen=False, enable_vectorized=False, enable_caching=False
    )
