"""Tests for the morsel-driven parallel execution subsystem.

Covers:

* a differential suite asserting the volcano, serial-vectorized and
  vectorized-parallel tiers return identical rows (nulls, NaN, big ints,
  ORDER BY, LIMIT, joins, group-bys, unnest, empty morsels) across worker
  counts 1 / 2 / 8,
* determinism: repeated parallel runs return identical row orderings, and
  integer results are bit-identical to the serial tier,
* transparent fallback (parallel → serial vectorized → Volcano) for
  unsplittable scans, single-morsel inputs and non-vectorizable shapes,
* the vectorized tiers' use of the adaptive cache (hits and
  materializations),
* unit coverage of morsel planning, the work-stealing scheduler, the
  partition-parallel radix-table build and the plug-in
  ``scan_batch_ranges`` API.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro import ProteusEngine
from repro.core import types as t
from repro.core.executor import radix
from repro.core.parallel import Morsel, WorkerPool, WorkStealingQueue, plan_morsels
from repro.core.parallel.executor import ParallelVectorizedExecutor
from repro.storage.binary_format import write_column_table, write_row_table

SAILOR_COUNT = 600
SHIP_COUNT = 250
NULL_COUNT = 300

SAILORS_SCHEMA = t.make_schema(
    {"sid": "int", "sname": "string", "rating": "int", "age": "float"}
)
NULLS_SCHEMA = t.make_schema({"id": "int", "val": "float", "tag": "string"})
ORDERS_SCHEMA = t.make_schema(
    {
        "okey": "int",
        "total": "float",
        "origin": {"country": "string"},
        "lines": [{"item": "int", "qty": "int"}],
    }
)

#: Small batches so the small test datasets split into many morsels.
BATCH_SIZE = 32


@pytest.fixture(scope="module")
def workload_dir(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("parallel_workloads")

    with open(directory / "sailors.csv", "w", encoding="utf-8") as handle:
        handle.write("sid,sname,rating,age\n")
        for i in range(SAILOR_COUNT):
            handle.write(f"{i},sailor{i % 7},{i % 10},{18.0 + (i * 3) % 40}\n")

    ships_schema = t.make_schema(
        {"shid": "int", "owner": "int", "tons": "float", "built": "int"}
    )
    write_column_table(
        str(directory / "ships_columns"),
        {
            "shid": np.arange(SHIP_COUNT, dtype=np.int64),
            "owner": (np.arange(SHIP_COUNT) * 3 % SAILOR_COUNT).astype(np.int64),
            "tons": np.round(50.0 + np.arange(SHIP_COUNT) * 7.5, 2),
            "built": (1980 + np.arange(SHIP_COUNT) % 30).astype(np.int64),
        },
        ships_schema,
    )

    with open(directory / "nulls.json", "w", encoding="utf-8") as handle:
        for i in range(NULL_COUNT):
            record = {
                "id": i,
                "val": None if i % 3 == 0 else i * 2.0,
                "tag": None if i % 5 == 0 else f"t{i % 2}",
            }
            handle.write(json.dumps(record) + "\n")

    with open(directory / "nanvals.csv", "w", encoding="utf-8") as handle:
        handle.write("id,val\n")
        for i in range(120):
            handle.write(f"{i},{'nan' if i % 4 == 0 else i * 1.5}\n")

    big = 2**53 + 1
    with open(directory / "bigints.csv", "w", encoding="utf-8") as handle:
        handle.write("g,k\n")
        for i in range(200):
            handle.write(f"{i % 3},{big + i}\n")

    with open(directory / "orders.json", "w", encoding="utf-8") as handle:
        for i in range(180):
            record = {
                "okey": i,
                "total": round(i * 2.5, 2),
                "origin": {"country": "CH" if i % 2 else "US"},
                "lines": [
                    {"item": j, "qty": j + 1} for j in range(i % 4)
                ],
            }
            handle.write(json.dumps(record) + "\n")

    write_row_table(
        str(directory / "rows.bin"),
        {"rid": np.arange(200, dtype=np.int64)},
        t.make_schema({"rid": "int"}),
    )

    with open(directory / "empty.csv", "w", encoding="utf-8") as handle:
        handle.write("id,v\n")

    return str(directory)


def _make_engine(workload_dir: str, **kwargs) -> ProteusEngine:
    engine = ProteusEngine(
        enable_caching=False,
        enable_codegen=False,
        vectorized_batch_size=BATCH_SIZE,
        **kwargs,
    )
    engine.register_csv(
        "sailors", os.path.join(workload_dir, "sailors.csv"), schema=SAILORS_SCHEMA
    )
    engine.register_binary_columns(
        "ships", os.path.join(workload_dir, "ships_columns")
    )
    engine.register_json(
        "nulls", os.path.join(workload_dir, "nulls.json"), schema=NULLS_SCHEMA
    )
    engine.register_csv(
        "nanvals",
        os.path.join(workload_dir, "nanvals.csv"),
        schema=t.make_schema({"id": "int", "val": "float"}),
    )
    engine.register_csv(
        "bigints",
        os.path.join(workload_dir, "bigints.csv"),
        schema=t.make_schema({"g": "int", "k": "int"}),
    )
    engine.register_json(
        "orders", os.path.join(workload_dir, "orders.json"), schema=ORDERS_SCHEMA
    )
    engine.register_binary_rows("rowtable", os.path.join(workload_dir, "rows.bin"))
    engine.register_csv(
        "empty",
        os.path.join(workload_dir, "empty.csv"),
        schema=t.make_schema({"id": "int", "v": "int"}),
    )
    return engine


@pytest.fixture(scope="module")
def volcano_engine(workload_dir):
    return _make_engine(workload_dir, enable_vectorized=False)


@pytest.fixture(scope="module")
def serial_engine(workload_dir):
    return _make_engine(workload_dir)


@pytest.fixture(scope="module")
def parallel_engine(workload_dir):
    return _make_engine(workload_dir, parallel_workers=4)


def _assert_rows_match(actual, expected, query="", ordered=True):
    """Row equality, with float cells compared to 1e-12 relative tolerance
    (the parallel merge reassociates float additions across morsels);
    everything else must be identical.  ``ordered=False`` compares as
    multisets — the Volcano interpreter's row order legitimately differs
    from the batch tiers' (first-seen vs lexicographic group order).
    """
    assert len(actual) == len(expected), (query, len(actual), len(expected))
    if not ordered:
        actual = sorted(actual, key=repr)
        expected = sorted(expected, key=repr)
    for row_index, (left, right) in enumerate(zip(actual, expected)):
        assert len(left) == len(right), (query, row_index)
        for a, b in zip(left, right):
            if isinstance(a, float) and isinstance(b, float):
                assert math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12) or (
                    math.isnan(a) and math.isnan(b)
                ), (query, row_index, a, b)
            else:
                assert a == b, (query, row_index, a, b)


DIFFERENTIAL_QUERIES = [
    # Selections, projections, ORDER BY, LIMIT.
    "SELECT sid, age FROM sailors WHERE rating >= 7 ORDER BY sid LIMIT 9",
    "SELECT sid, sname FROM sailors WHERE age < 30 ORDER BY sid DESC",
    "SELECT 7 AS c FROM sailors WHERE rating > 7",
    # Empty morsels: the filter keeps only the first few rows, so every
    # later morsel produces nothing.
    "SELECT sid FROM sailors WHERE sid < 3",
    # No morsel survives at all.
    "SELECT sid FROM sailors WHERE rating > 1000",
    # Global aggregates (partial accumulators + ordered merge).
    "SELECT COUNT(*) FROM sailors WHERE rating > 4",
    "SELECT COUNT(*), SUM(age), MIN(age), MAX(age) FROM sailors",
    "SELECT SUM(age) / COUNT(*) FROM sailors WHERE rating < 9",
    "SELECT MAX(tons), MIN(built) FROM ships WHERE built >= 1990",
    # Group-by (partial grouping + grouped merge), including aggregate
    # arithmetic in the heads.
    "SELECT rating, COUNT(*), MAX(age) FROM sailors GROUP BY rating",
    "SELECT sname, COUNT(*) FROM sailors GROUP BY sname ORDER BY sname",
    "SELECT built, SUM(tons) / COUNT(*) FROM ships GROUP BY built",
    "SELECT rating, MAX(age) > 30 AND MIN(age) > 18 FROM sailors GROUP BY rating",
    # Joins across formats (shared build side, morsel-parallel probe).
    "SELECT COUNT(*) FROM sailors s JOIN ships h ON s.sid = h.owner "
    "WHERE s.rating > 2",
    "SELECT SUM(h.tons) FROM sailors s JOIN ships h ON s.sid = h.owner "
    "WHERE s.age < 40 AND h.built > 1985",
    "SELECT s.rating, COUNT(*) FROM sailors s JOIN ships h ON s.sid = h.owner "
    "GROUP BY s.rating",
    # Empty build side: produces nothing without demoting the tier.
    "SELECT s.sid, h.tons FROM sailors s JOIN ships h ON s.sid = h.owner "
    "WHERE s.rating > 1000",
    # Nulls and NaN: missing values must not qualify predicates and must be
    # skipped by aggregates, in every tier.
    "SELECT COUNT(*) FROM nulls WHERE val > 10",
    "SELECT COUNT(*) FROM nulls WHERE val != 4",
    "SELECT COUNT(*) FROM nulls WHERE tag = 't1'",
    "SELECT SUM(val), MIN(val), MAX(val) FROM nulls WHERE id >= 0",
    "SELECT MAX(val), MIN(val) FROM nulls WHERE id < 1",
    "SELECT id, val FROM nulls ORDER BY val",
    "SELECT id FROM nulls WHERE val",
    "SELECT SUM(val), MIN(val), MAX(val) FROM nanvals",
    "SELECT COUNT(*) FROM nanvals WHERE val != 1.5",
    "SELECT id FROM nanvals WHERE NOT val",
    # Big ints: exact sums/extrema above 2**53 across morsel merges.
    "SELECT g, MAX(k), SUM(k) FROM bigints GROUP BY g",
    "SELECT SUM(k) FROM bigints",
    # Nested JSON: unnest runs inside every worker.
    "SELECT origin.country, COUNT(*) FROM orders GROUP BY origin.country",
    "for { o <- orders, l <- o.lines, l.qty > 1 } yield count",
    "for { o <- orders, l <- o.lines } yield bag (o.okey, l.item)",
    # Empty dataset (zero morsels).
    "SELECT COUNT(*) FROM empty",
    "SELECT id FROM empty WHERE v > 0",
]


@pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
def test_three_tiers_return_identical_rows(
    volcano_engine, serial_engine, parallel_engine, query
):
    reference = volcano_engine.query(query)
    assert reference.tier == "volcano"
    serial = serial_engine.query(query)
    assert serial.tier in ("vectorized", "volcano")
    parallel = parallel_engine.query(query)
    assert parallel.tier in ("vectorized-parallel", "vectorized", "volcano")
    # Volcano orders rows first-seen; the batch tiers may differ — multiset.
    _assert_rows_match(serial.rows, reference.rows, query, ordered=False)
    # The parallel tier must reproduce the serial tier's order exactly.
    _assert_rows_match(parallel.rows, serial.rows, query)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_worker_counts_return_identical_rows(workload_dir, serial_engine, workers):
    engine = _make_engine(workload_dir, parallel_workers=workers)
    for query in DIFFERENTIAL_QUERIES:
        expected = serial_engine.query(query)
        actual = engine.query(query)
        _assert_rows_match(actual.rows, expected.rows, query)


def test_integer_results_are_bit_identical_to_serial(workload_dir, serial_engine):
    """For integer data the ordered morsel merge reproduces the serial rows
    exactly — including row order — not merely as a multiset."""
    engine = _make_engine(workload_dir, parallel_workers=4)
    for query in (
        "SELECT sid, rating FROM sailors WHERE rating >= 5",
        "SELECT rating, COUNT(*) FROM sailors GROUP BY rating",
        "SELECT s.sid, h.shid FROM sailors s JOIN ships h ON s.sid = h.owner",
        "SELECT g, MAX(k), SUM(k) FROM bigints GROUP BY g",
    ):
        actual = engine.query(query)
        assert actual.tier == "vectorized-parallel", query
        assert actual.rows == serial_engine.query(query).rows, query


def test_repeated_parallel_runs_are_deterministic(workload_dir):
    engine = _make_engine(workload_dir, parallel_workers=8)
    queries = [
        "SELECT s.rating, SUM(h.tons), COUNT(*) FROM sailors s "
        "JOIN ships h ON s.sid = h.owner GROUP BY s.rating",
        "SELECT sid, age FROM sailors WHERE rating > 3",
        "SELECT SUM(val), MAX(val) FROM nulls",
    ]
    for query in queries:
        runs = [engine.query(query).rows for _ in range(4)]
        assert runs[0] == runs[1] == runs[2] == runs[3], query


def test_parallel_tier_attribution_and_profile(parallel_engine):
    result = parallel_engine.query("SELECT COUNT(*) FROM sailors WHERE rating > 4")
    assert result.tier == "vectorized-parallel"
    profile = result.profile
    assert profile.execution_tier == "vectorized-parallel"
    assert profile.parallel_workers == 4
    assert profile.morsels_dispatched > 1
    assert profile.rows_scanned == SAILOR_COUNT
    assert profile.batches_processed >= profile.morsels_dispatched


def test_unsplittable_scan_falls_back_to_serial_vectorized(parallel_engine):
    # The binary row plug-in only has the per-tuple batch shim, so the
    # parallel tier refuses its scans and the serial tier serves them.
    result = parallel_engine.query("SELECT COUNT(*) FROM rowtable WHERE rid < 50")
    assert result.tier == "vectorized"
    assert result.rows == [(50,)]


def test_single_morsel_input_falls_back_to_serial(workload_dir):
    engine = _make_engine(workload_dir, parallel_workers=4)
    engine.vectorized_batch_size = 4096  # one morsel covers all 600 rows
    result = engine.query("SELECT COUNT(*) FROM sailors")
    assert result.tier == "vectorized"
    assert result.rows == [(SAILOR_COUNT,)]


def test_null_group_keys_fall_back_to_volcano(volcano_engine, parallel_engine):
    query = "SELECT tag, COUNT(*) FROM nulls GROUP BY tag"
    reference = volcano_engine.query(query)
    result = parallel_engine.query(query)
    assert result.tier == "volcano"
    assert sorted(result.rows, key=repr) == sorted(reference.rows, key=repr)


def test_parallel_workers_flag_defaults_to_serial(workload_dir):
    engine = _make_engine(workload_dir)  # no parallel_workers argument
    assert engine.parallel_workers == 1
    assert engine.query("SELECT COUNT(*) FROM sailors").tier == "vectorized"
    disabled = _make_engine(workload_dir, parallel_workers=4, enable_parallel=False)
    assert disabled.query("SELECT COUNT(*) FROM sailors").tier == "vectorized"


# ---------------------------------------------------------------------------
# Adaptive caching from the batch tiers
# ---------------------------------------------------------------------------


def _caching_engine(workload_dir: str, **kwargs) -> ProteusEngine:
    engine = ProteusEngine(
        enable_codegen=False,
        enable_caching=True,
        vectorized_batch_size=BATCH_SIZE,
        **kwargs,
    )
    engine.register_csv(
        "sailors", os.path.join(workload_dir, "sailors.csv"), schema=SAILORS_SCHEMA
    )
    return engine


@pytest.mark.parametrize("workers", [1, 4])
def test_vectorized_tiers_populate_and_hit_the_cache(workload_dir, workers):
    engine = _caching_engine(workload_dir, parallel_workers=workers)
    query = "SELECT SUM(sid) FROM sailors WHERE rating > 2"
    first = engine.query(query)
    # The scan materialized its numeric columns into the adaptive cache.
    descriptions = {entry.description for entry in engine.cache_entries()}
    assert {"sailors.sid", "sailors.rating"} <= descriptions
    hits_before = engine.cache_stats.hits
    second = engine.query(query)
    assert engine.cache_stats.hits > hits_before
    assert second.profile.values_from_cache > 0
    assert second.rows == first.rows


def test_string_columns_respect_the_caching_policy(workload_dir):
    engine = _caching_engine(workload_dir)
    engine.query("SELECT sname FROM sailors WHERE rating > 8")
    descriptions = {entry.description for entry in engine.cache_entries()}
    # The default policy refuses variable-length strings from raw files.
    assert "sailors.sname" not in descriptions


def test_incomplete_scans_are_not_cached(workload_dir):
    engine = _caching_engine(workload_dir)
    # The inner join's build side is empty, so the probe-side scan never
    # runs; nothing incomplete may be admitted for the probe side's columns.
    engine.query(
        "SELECT s.sid, h.age FROM sailors s JOIN sailors h ON s.sid = h.sid "
        "WHERE h.rating > 1000 AND s.age > 0"
    )
    for entry in engine.cache_entries():
        assert len(entry.data) == SAILOR_COUNT, entry.description


# ---------------------------------------------------------------------------
# Morsel planning and the work-stealing scheduler
# ---------------------------------------------------------------------------


def test_plan_morsels_aligns_to_batches():
    morsels = plan_morsels(total_rows=1000, batch_size=64, num_workers=4)
    assert all(morsel.start % 64 == 0 for morsel in morsels)
    assert morsels[0].start == 0
    assert morsels[-1].stop == 1000
    for previous, current in zip(morsels, morsels[1:]):
        assert current.start == previous.stop
    assert len(morsels) >= 4


def test_plan_morsels_edge_cases():
    assert plan_morsels(0, 4096, 4) == []
    assert plan_morsels(10, 4096, 4) == [Morsel(0, 0, 10)]
    explicit = plan_morsels(100, 10, 2, morsel_rows=25)  # aligns up to 30
    assert [(m.start, m.stop) for m in explicit] == [
        (0, 30), (30, 60), (60, 90), (90, 100)
    ]


def test_work_stealing_queue_dispatches_everything_once():
    queue = WorkStealingQueue(list(range(10)), num_workers=3)
    seen = []
    # Worker 2 drains everything: its own block first, then steals.
    while True:
        task = queue.next_task(2)
        if task is None:
            break
        seen.append(task)
    assert sorted(index for index, _ in seen) == list(range(10))
    assert queue.dispatched == 10
    assert queue.stolen > 0
    assert queue.next_task(0) is None


def test_worker_pool_preserves_submission_order():
    pool = WorkerPool(num_workers=4)
    results = pool.run(list(range(50)), lambda item, worker: item * 2)
    assert results == [item * 2 for item in range(50)]


def test_worker_pool_propagates_errors():
    pool = WorkerPool(num_workers=4)

    def explode(item, worker):
        if item == 13:
            raise ValueError("boom")
        return item

    with pytest.raises(ValueError, match="boom"):
        pool.run(list(range(40)), explode)


def test_partition_parallel_table_build_matches_serial(workload_dir):
    engine = _make_engine(workload_dir, parallel_workers=4)
    executor = ParallelVectorizedExecutor(
        engine.catalog, engine.plugins, num_workers=4
    )
    rng = np.random.RandomState(11)
    keys = rng.randint(0, 5000, size=20000).astype(np.int64)
    parallel_table = executor._build_table(keys)
    serial_table = radix.build_radix_table(keys)
    assert parallel_table.build_size == serial_table.build_size
    assert parallel_table.num_partitions == serial_table.num_partitions
    for ours, theirs in zip(parallel_table.partitions, serial_table.partitions):
        assert np.array_equal(ours.sorted_keys, theirs.sorted_keys)
        assert np.array_equal(ours.original_positions, theirs.original_positions)


# ---------------------------------------------------------------------------
# scan_batch_ranges plug-in API
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "dataset,paths_requested",
    [
        ("sailors", [("sid",), ("age",), ("sname",)]),
        ("nulls", [("id",), ("val",)]),
        ("ships", [("shid",), ("tons",)]),
    ],
)
def test_scan_batch_ranges_matches_scan_batches(
    parallel_engine, dataset, paths_requested
):
    registered = parallel_engine.catalog.get(dataset)
    plugin = parallel_engine.plugins[registered.format]
    assert plugin.supports_scan_ranges
    total = plugin.scan_row_count(registered)
    assert total is not None and total > 0
    full = plugin.scan_columns(registered, paths_requested)
    mid = total // 2
    pieces = list(
        plugin.scan_batch_ranges(registered, paths_requested, 0, mid, batch_size=17)
    ) + list(
        plugin.scan_batch_ranges(registered, paths_requested, mid, total, batch_size=17)
    )
    assert sum(piece.count for piece in pieces) == total
    oids = np.concatenate([piece.oids for piece in pieces])
    assert oids.tolist() == list(range(total))
    for path in paths_requested:
        merged = np.concatenate([piece.column(tuple(path)) for piece in pieces])
        reference = full.column(tuple(path))
        assert len(merged) == len(reference), path
        for a, b in zip(merged, reference):
            if isinstance(a, float) and isinstance(b, float) and \
                    math.isnan(a) and math.isnan(b):
                continue
            assert a == b, path


def test_scan_batch_ranges_clamps_to_row_count(parallel_engine):
    registered = parallel_engine.catalog.get("sailors")
    plugin = parallel_engine.plugins[registered.format]
    pieces = list(
        plugin.scan_batch_ranges(
            registered, [("sid",)], SAILOR_COUNT - 5, SAILOR_COUNT + 100, batch_size=3
        )
    )
    assert sum(piece.count for piece in pieces) == 5


def test_unsplittable_plugin_reports_no_ranges(parallel_engine):
    registered = parallel_engine.catalog.get("rowtable")
    plugin = parallel_engine.plugins[registered.format]
    assert not plugin.supports_scan_ranges
    assert plugin.scan_row_count(registered) is None
    from repro.errors import PluginError

    with pytest.raises(PluginError, match="range"):
        list(plugin.scan_batch_ranges(registered, [("rid",)], 0, 10))
