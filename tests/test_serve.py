"""The HTTP serving layer: differential client/server suite, concurrency,
admission/deadline/cancellation translation, scan coalescing, wire bytes.

Every test drives a real :class:`repro.serve.ProteusServer` bound to an
ephemeral loopback port with stdlib ``urllib`` clients — the same black-box
posture as the CI smoke step — and asserts at teardown that the server
leaked no ``proteus-http-*`` / ``proteus-worker-*`` threads.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from tests.conftest import make_engine
from repro.core.concurrency import run_concurrently
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.serve import ProteusServer
from repro.storage.catalog import DataFormat

# ---------------------------------------------------------------------------
# HTTP helpers (stdlib only, mirroring what real clients would do)
# ---------------------------------------------------------------------------


def _request(url, method="GET", payload=None, timeout=30.0):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, (json.loads(body) if body else {})


def _post(server, endpoint, payload):
    return _request(server.url + endpoint, method="POST", payload=payload)


def _rows(body):
    """Reassemble row tuples from a columnar response body."""
    columns = [body["data"][name] for name in body["columns"]]
    return [tuple(values) for values in zip(*columns)] if columns else []


@contextmanager
def serving(engine):
    server = ProteusServer(engine)
    server.start()
    try:
        yield server
    finally:
        server.stop()
        deadline = time.monotonic() + 5.0
        prefixes = ("proteus-http", "proteus-worker")
        while time.monotonic() < deadline:
            leaked = [
                t.name
                for t in threading.enumerate()
                if t.name.startswith(prefixes)
            ]
            if not leaked:
                break
            time.sleep(0.01)
        assert not leaked, f"server leaked threads: {leaked}"


TIER_CONFIGS = [
    ({}, "codegen"),
    (
        {
            "enable_codegen": False,
            "parallel_workers": 2,
            "vectorized_batch_size": 16,
        },
        "vectorized-parallel",
    ),
    ({"enable_codegen": False}, "vectorized"),
    ({"enable_codegen": False, "enable_vectorized": False}, "volcano"),
]

PROJECTION_QUERY = "select id, qty, price from items_csv where qty < 5 order by id"
AGGREGATE_QUERY = (
    "select category, sum(price) as total from items_csv "
    "group by category order by category"
)


# ---------------------------------------------------------------------------
# Differential client/server suite
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "config,expected_tier", TIER_CONFIGS, ids=[t for _, t in TIER_CONFIGS]
)
def test_http_and_direct_execution_identical(paths, config, expected_tier):
    """The same query through HTTP and engine.query() returns identical rows
    (and reports the same serving tier) on every execution tier."""
    engine = make_engine(paths, **config)
    for query in (PROJECTION_QUERY, AGGREGATE_QUERY):
        direct = engine.query(query)
        with serving(engine) as server:
            status, body = _post(server, "/v1/query", {"query": query})
        assert status == 200, body
        assert _rows(body) == direct.rows
        assert body["row_count"] == len(direct)
        assert body["columns"] == direct.columns
    assert direct.tier == expected_tier
    assert body["tier"] == expected_tier
    assert body["profile"]["execution_tier"] == expected_tier


def test_positional_and_named_parameters(engine):
    with serving(engine) as server:
        status, body = _post(
            server,
            "/v1/query",
            {
                "query": (
                    "select id from items_csv "
                    "where qty >= ? and category = :cat order by id"
                ),
                "args": [5],
                "params": {"cat": "cat1"},
            },
        )
    assert status == 200, body
    direct = engine.query(
        "select id from items_csv where qty >= ? and category = :cat order by id",
        5,
        cat="cat1",
    )
    assert _rows(body) == direct.rows
    assert direct.rows  # the predicate actually selects something


def test_prepare_execute_and_close_handles(engine):
    with serving(engine) as server:
        status, body = _post(
            server,
            "/v1/prepare",
            {"query": "select count(*) as n from items_csv where qty = :q"},
        )
        assert status == 200, body
        handle = body["handle"]
        assert body["parameters"] == ["q"]

        status, body = _post(
            server, "/v1/execute", {"handle": handle, "params": {"q": 2}}
        )
        assert status == 200, body
        expected = engine.query(
            "select count(*) as n from items_csv where qty = :q", q=2
        ).scalar()
        assert _rows(body) == [(expected,)]

        # Unknown handle -> 404/SRV003; close -> the handle disappears.
        status, body = _post(server, "/v1/execute", {"handle": "stmt-999"})
        assert (status, body["error"]["code"]) == (404, "SRV003")
        status, body = _request(
            server.url + f"/v1/statement/{handle}", method="DELETE"
        )
        assert (status, body) == (200, {"closed": True})
        status, body = _post(server, "/v1/execute", {"handle": handle})
        assert (status, body["error"]["code"]) == (404, "SRV003")


# ---------------------------------------------------------------------------
# Concurrency: many clients, one engine
# ---------------------------------------------------------------------------


def test_eight_barrier_aligned_concurrent_clients(paths):
    engine = make_engine(paths, parallel_workers=2)
    direct = engine.query(AGGREGATE_QUERY)
    with serving(engine) as server:
        results = run_concurrently(
            lambda i: _post(server, "/v1/query", {"query": AGGREGATE_QUERY}), 8
        )
        statuses = [status for status, _ in results]
        assert statuses == [200] * 8
        for _, body in results:
            assert _rows(body) == direct.rows
        # Request accounting: every hit landed in the HTTP counter.
        samples = engine.metrics.counter("proteus_http_requests_total").samples()
        by_key = {dict(key)["endpoint"]: value for key, value in samples}
        assert by_key["/v1/query"] >= 8


def test_scan_coalescing_n_clients_one_cold_parse(paths):
    """8 concurrent clients hit one cold CSV: exactly one parse happens (the
    leader's), everyone else coalesces on its in-flight materialization."""
    engine = make_engine(paths, enable_codegen=False, vectorized_batch_size=16)
    plugin = engine.plugins[DataFormat.CSV]
    # Persistent slow faults stretch the leader's scan so the other clients
    # demonstrably arrive while it is still in flight.
    injector = FaultInjector(
        FaultPlan(
            [
                FaultSpec(kind="slow", at_call=call, times=None, delay_seconds=0.05)
                for call in range(1, 17)
            ]
        )
    )
    plugin.install_fault_injector(injector)
    base_calls = plugin.scan_calls
    query = "select sum(price) as total from items_csv where qty < 5"
    with serving(engine) as server:
        results = run_concurrently(
            lambda i: _post(server, "/v1/query", {"query": query}), 8
        )
    assert [status for status, _ in results] == [200] * 8
    bodies = [body for _, body in results]
    assert len({json.dumps(body["data"]) for body in bodies}) == 1
    # One cold parse total — the raw file was not re-scanned per client —
    # and nobody burned I/O retries doing it.
    assert plugin.scan_calls - base_calls == 1
    assert all(body["profile"]["io_retries"] == 0 for body in bodies)
    coalesced = engine.metrics.counter("proteus_scans_coalesced_total")
    total = sum(value for _, value in coalesced.samples())
    assert total >= 1, "no client coalesced on the in-flight scan"


# ---------------------------------------------------------------------------
# Resilience translation: 429 / 408 / 499 / 409
# ---------------------------------------------------------------------------


def test_admission_queue_full_maps_to_429(paths):
    engine = make_engine(
        paths, max_concurrent_queries=1, admission_queue_seconds=0.05
    )
    with serving(engine) as server:
        slot = engine.admission.admit(0)
        try:
            status, body = _post(
                server, "/v1/query", {"query": "select count(*) from items_csv"}
            )
        finally:
            slot.release()
        assert status == 429
        assert body["error"]["code"] == "RES003"
        assert "RES003" in body["error"]["message"]
        # Slot released: the same request is admitted now.
        status, _ = _post(
            server, "/v1/query", {"query": "select count(*) from items_csv"}
        )
        assert status == 200


def test_request_timeout_maps_to_408_with_partial_progress(paths):
    engine = make_engine(
        paths, enable_codegen=False, enable_caching=False, vectorized_batch_size=16
    )
    injector = FaultInjector(
        FaultPlan([FaultSpec(kind="slow", at_call=3, delay_seconds=0.3)])
    )
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)
    with serving(engine) as server:
        status, body = _post(
            server,
            "/v1/query",
            {"query": "select sum(price) from items_csv", "timeout_ms": 100},
        )
    assert status == 408
    assert body["error"]["code"] == "RES001"
    assert body["profile"]["aborted"] == "RES001"
    # The deadline fired mid-scan: progress shows how far the query got.
    assert body["partial_progress"]["batches"] >= 1


def test_cancel_endpoint_maps_to_499(paths):
    engine = make_engine(
        paths, enable_codegen=False, enable_caching=False, vectorized_batch_size=16
    )
    scanning = threading.Event()

    def slow_sleep(seconds):
        scanning.set()
        time.sleep(seconds)

    injector = FaultInjector(
        FaultPlan(
            [
                FaultSpec(kind="slow", at_call=call, times=None, delay_seconds=0.02)
                for call in range(1, 33)
            ]
        ),
        sleep=slow_sleep,
    )
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)
    with serving(engine) as server:
        outcome = {}

        def client():
            outcome["response"] = _post(
                server,
                "/v1/query",
                {"query": "select sum(price) from items_csv", "query_id": "q-1"},
            )

        thread = threading.Thread(target=client)
        thread.start()
        assert scanning.wait(5.0), "query never started scanning"
        status, body = _request(server.url + "/v1/query/q-1", method="DELETE")
        assert (status, body) == (200, {"cancelled": True})
        thread.join()
        status, body = outcome["response"]
        assert status == 499
        assert body["error"]["code"] == "RES002"
        # The id is gone once the query unwound: cancelling again is a 404.
        status, body = _request(server.url + "/v1/query/q-1", method="DELETE")
        assert (status, body["error"]["code"]) == (404, "SRV002")


def test_duplicate_query_id_maps_to_409(engine):
    with serving(engine) as server:
        token = server.queries.register("dup-1")
        try:
            status, body = _post(
                server,
                "/v1/query",
                {"query": "select count(*) from items_csv", "query_id": "dup-1"},
            )
            assert (status, body["error"]["code"]) == (409, "SRV004")
        finally:
            server.queries.release("dup-1", token)
        status, _ = _post(
            server,
            "/v1/query",
            {"query": "select count(*) from items_csv", "query_id": "dup-1"},
        )
        assert status == 200


# ---------------------------------------------------------------------------
# Protocol errors and analysis rejections
# ---------------------------------------------------------------------------


def test_analysis_rejection_maps_to_400_with_typ_code(engine):
    with serving(engine) as server:
        status, body = _post(
            server,
            "/v1/query",
            {"query": "select qty + category from items_csv"},
        )
    assert status == 400
    assert body["error"]["code"].startswith("TYP")


def test_malformed_requests_map_to_400(engine):
    with serving(engine) as server:
        cases = [
            {"query": ""},
            {"query": 7},
            {},
            {"query": "select id from items_csv", "args": "nope"},
            {"query": "select id from items_csv", "params": [1]},
            {"query": "select id from items_csv", "timeout_ms": "fast"},
            {"query": "select id from items_csv", "timeout_ms": -1},
            {"query": "select id from items_csv", "query_id": ""},
        ]
        for payload in cases:
            status, body = _post(server, "/v1/query", payload)
            assert (status, body["error"]["code"]) == (400, "SRV001"), payload
        # Non-JSON body and non-object body are SRV001 too.
        req = urllib.request.Request(
            server.url + "/v1/query", data=b"not json", method="POST"
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                status = resp.status
        except urllib.error.HTTPError as exc:
            status = exc.code
            body = json.loads(exc.read())
        assert (status, body["error"]["code"]) == (400, "SRV001")


def test_unknown_endpoint_maps_to_404(engine):
    with serving(engine) as server:
        status, body = _post(server, "/v2/query", {"query": "select 1"})
        assert (status, body["error"]["code"]) == (404, "SRV002")
        status, body = _request(server.url + "/nope")
        assert (status, body["error"]["code"]) == (404, "SRV002")


def test_healthz(engine):
    with serving(engine) as server:
        assert _request(server.url + "/healthz") == (200, {"status": "ok"})


# ---------------------------------------------------------------------------
# /metrics wire bytes (Prometheus text exposition v0.0.4)
# ---------------------------------------------------------------------------


def test_metrics_endpoint_serves_exact_prometheus_wire_format(engine):
    engine.query("select count(*) from items_csv")
    with serving(engine) as server:
        _post(server, "/v1/query", {"query": "select count(*) from items_csv"})
        req = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200
            content_type = resp.headers["Content-Type"]
            body = resp.read()
    assert content_type == PROMETHEUS_CONTENT_TYPE
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    # Exactly one trailing newline after the last sample line.
    assert body.endswith(b"\n")
    assert not body.endswith(b"\n\n")
    text = body.decode("utf-8")
    assert "proteus_queries_total" in text
    assert "proteus_http_requests_total" in text
    # Every non-comment line is a sample: "name[{labels}] value".
    for line in text.rstrip("\n").split("\n"):
        assert line, "blank line inside the exposition"
        if not line.startswith("#"):
            assert " " in line


def test_render_prometheus_wire_contract_unit():
    registry = MetricsRegistry()
    assert registry.render_prometheus() == ""
    registry.counter("demo_total", "Demo.").inc()
    rendered = registry.render_prometheus()
    assert rendered.endswith("\n")
    assert not rendered.endswith("\n\n")
    assert rendered.count("demo_total") >= 2  # HELP/TYPE header + sample


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


def test_server_lifecycle_is_single_use(engine):
    server = ProteusServer(engine)
    server.start()
    with pytest.raises(RuntimeError):
        server.start()
    server.stop()
    server.stop()  # idempotent


def test_context_manager_serves_and_stops(engine):
    with ProteusServer(engine) as server:
        status, _ = _request(server.url + "/healthz")
        assert status == 200
    leaked = [
        t.name
        for t in threading.enumerate()
        if t.name.startswith("proteus-http")
    ]
    assert not leaked
