"""Chaos suite: deterministic fault injection across plugins and tiers.

Every test scripts faults through :class:`~repro.resilience.FaultInjector`
(installed beneath the retry layer of the plugin I/O path) and asserts the
resilience contract: a seeded fault always terminates in either the correct
result (transients recovered by retry) or a coded ``RES00x`` error — never a
hang, a leaked worker or a poisoned cache.  The error-path cache-consistency
coverage (satellite of the resilience PR) lives here too.
"""

from __future__ import annotations

import pytest

from tests.conftest import make_engine
from repro.errors import CorruptDataError, ProteusError, ScanIOError
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.storage.catalog import DataFormat

#: dataset name -> the plugin (DataFormat key) serving it.
DATASET_FORMATS = {
    "items_csv": DataFormat.CSV,
    "items_json": DataFormat.JSON,
    "items_bin": DataFormat.BINARY_COLUMN,
    "items_rowbin": DataFormat.BINARY_ROW,
}

#: Engine configurations pinning each tier (mirrors test_resilience.py).
TIER_CONFIGS = {
    "codegen": {},
    "vectorized-parallel": {
        "enable_codegen": False,
        "parallel_workers": 2,
        "vectorized_batch_size": 16,
    },
    "vectorized": {"enable_codegen": False},
    "volcano": {"enable_codegen": False, "enable_vectorized": False},
}

EXPECTED_FILTERED_SUM = sum(i * 1.5 for i in range(120) if i % 10 > 1)
EXPECTED_ORDERS_TOTAL = sum(i * 2.5 for i in range(60))


def _install(engine, dataset: str, specs) -> FaultInjector:
    injector = FaultInjector(FaultPlan(specs), sleep=lambda seconds: None)
    engine.plugins[DATASET_FORMATS[dataset]].install_fault_injector(injector)
    return injector


def _clear(engine) -> None:
    for plugin in engine.plugins.values():
        plugin.install_fault_injector(None)


# ---------------------------------------------------------------------------
# Scripted single faults, per plugin
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dataset", sorted(DATASET_FORMATS))
def test_transient_io_fault_recovered_by_retry(paths, dataset):
    """A one-shot OSError on any plugin's I/O path is absorbed by the retry
    layer: the query still returns the exact result and the recovery is
    visible in ``profile.io_retries``."""
    engine = make_engine(paths, enable_codegen=False, enable_caching=False)
    injector = _install(
        engine, dataset, [FaultSpec(kind="io-error", at_call=1)]
    )
    result = engine.query(f"select sum(price) from {dataset} where qty > 1")
    assert result.rows == [(EXPECTED_FILTERED_SUM,)]
    assert injector.injected == [(1, "io-error")]
    assert engine.last_profile.io_retries >= 1


@pytest.mark.parametrize("dataset", sorted(DATASET_FORMATS))
def test_persistent_truncation_exhausts_into_res005(paths, dataset):
    """A fault that keeps failing across attempts exhausts the retry policy
    into a coded :class:`ScanIOError`; removing the fault restores exact
    results on the same engine (no poisoned plugin state)."""
    engine = make_engine(paths, enable_codegen=False, enable_caching=False)
    _install(
        engine, dataset, [FaultSpec(kind="truncated", at_call=1, times=None)]
    )
    with pytest.raises(ScanIOError) as info:
        engine.query(f"select sum(price) from {dataset} where qty > 1")
    assert "[RES005]" in str(info.value)
    assert engine.last_profile.aborted == "RES005"
    _clear(engine)
    result = engine.query(f"select sum(price) from {dataset} where qty > 1")
    assert result.rows == [(EXPECTED_FILTERED_SUM,)]


def test_corrupt_data_surfaces_res006_and_is_never_retried(paths):
    engine = make_engine(paths, enable_codegen=False, enable_caching=False)
    injector = _install(
        engine, "items_csv", [FaultSpec(kind="corrupt", at_call=2)]
    )
    with pytest.raises(CorruptDataError) as info:
        engine.query("select sum(price) from items_csv")
    assert "[RES006]" in str(info.value)
    # Corruption is not transient: no retry was charged for it.
    assert engine.last_profile.io_retries == 0
    assert injector.injected == [(2, "corrupt")]
    _clear(engine)
    assert engine.query("select count(*) from items_csv").rows == [(120,)]


def test_retry_budget_exhaustion_is_coded(paths):
    """With a zero per-query retry budget even a recoverable transient
    surfaces as RES005 — the budget bounds total stall time per query."""
    engine = make_engine(
        paths, enable_codegen=False, enable_caching=False, io_retry_budget=0
    )
    _install(engine, "items_csv", [FaultSpec(kind="io-error", at_call=1)])
    with pytest.raises(ScanIOError) as info:
        engine.query("select sum(price) from items_csv")
    assert "retry budget" in str(info.value)


# ---------------------------------------------------------------------------
# Seeded chaos sweeps: every fault terminates in a result or a coded error
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
@pytest.mark.parametrize("seed", range(4))
def test_seeded_chaos_terminates_cleanly(paths, tier, seed):
    """The core chaos property, per tier: under a reproducible random fault
    plan every query either returns the exact expected result or raises a
    coded resilience error — and once the faults are lifted the same engine
    serves exact results again (caches, locks and plugin state intact)."""
    engine = make_engine(paths, enable_caching=True, **TIER_CONFIGS[tier])
    for offset, data_format in enumerate(
        (DataFormat.CSV, DataFormat.JSON, DataFormat.BINARY_COLUMN)
    ):
        injector = FaultInjector(
            FaultPlan.seeded(seed * 16 + offset, faults=3, max_call=6),
            sleep=lambda seconds: None,
        )
        engine.plugins[data_format].install_fault_injector(injector)
    battery = [
        ("select sum(price) from items_csv where qty > 1", EXPECTED_FILTERED_SUM),
        ("select sum(price) from items_json where qty > 1", EXPECTED_FILTERED_SUM),
        ("select count(*) from items_bin", 120),
        ("select sum(total) from orders", EXPECTED_ORDERS_TOTAL),
    ]
    for text, expected in battery:
        try:
            result = engine.query(text)
        except ProteusError as exc:
            code = getattr(exc, "code", "")
            assert isinstance(code, str) and code.startswith("RES"), (
                f"fault must surface as a coded resilience error, got {exc!r}"
            )
        else:
            assert result.rows == [(expected,)]
    _clear(engine)
    for text, expected in battery:
        assert engine.query(text).rows == [(expected,)]
    manager = engine.cache_manager
    if manager is not None:
        assert manager.used_bytes == sum(
            entry.size_bytes for entry in manager.entries()
        )


# ---------------------------------------------------------------------------
# Error-path cache consistency (satellite)
# ---------------------------------------------------------------------------


def test_midscan_failure_leaves_caches_consistent(paths):
    """A query failing mid-scan must not corrupt shared prepare-time state:
    compiled programs, the prepared cache, the cache manager's byte
    accounting and the catalog epoch all stay consistent, and every dataset
    still serves exact results afterwards."""
    engine = make_engine(paths)
    warm = engine.query("select sum(price) from items_csv where qty > 1")
    assert warm.rows == [(EXPECTED_FILTERED_SUM,)]
    compiled_before = len(engine._compiled)
    prepared_before = len(engine._prepared_cache)
    epoch_before = engine._catalog_epoch
    _install(engine, "items_json", [FaultSpec(kind="corrupt", at_call=1)])
    with pytest.raises(CorruptDataError):
        engine.query("select sum(price) from items_json where qty > 1")
    # Shared state after the failure: byte accounting exact, epoch untouched,
    # caches only ever grew (a failed execution never evicts or corrupts).
    manager = engine.cache_manager
    assert manager is not None
    assert manager.used_bytes == sum(
        entry.size_bytes for entry in manager.entries()
    )
    assert engine._catalog_epoch == epoch_before
    assert len(engine._compiled) >= compiled_before
    assert len(engine._prepared_cache) >= prepared_before
    _clear(engine)
    assert engine.query("select sum(price) from items_json where qty > 1").rows == [
        (EXPECTED_FILTERED_SUM,)
    ]
    # The warm shape was not poisoned by the unrelated failure.
    assert (
        engine.query("select sum(price) from items_csv where qty > 1").rows
        == warm.rows
    )


@pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
def test_every_tier_recovers_after_fault(paths, tier):
    """Per tier: fail one query with an injected persistent fault, lift the
    fault, and assert the same engine instance returns exact results — the
    abort path released every resource the tier acquired."""
    engine = make_engine(paths, **TIER_CONFIGS[tier])
    _install(
        engine, "items_csv", [FaultSpec(kind="truncated", at_call=1, times=None)]
    )
    with pytest.raises(ScanIOError):
        engine.query("select sum(price) from items_csv where qty > 1")
    _clear(engine)
    result = engine.query("select sum(price) from items_csv where qty > 1")
    assert result.rows == [(EXPECTED_FILTERED_SUM,)]
    assert engine.last_profile.aborted is None


def test_warm_state_scan_still_crosses_the_guarded_layer(tmp_path):
    """When schema inference at registration pre-builds the plug-in state,
    the full-materialization scan path (the codegen tier's ``scan_columns``)
    must still pass through a guarded I/O step — an injector installed
    *after* registration fires and the retry layer absorbs it."""
    path = tmp_path / "warm.csv"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("id,qty,price\n")
        for i in range(120):
            handle.write(f"{i},{i % 10},{i * 1.5}\n")
    from repro import ProteusEngine

    engine = ProteusEngine(enable_caching=False)
    engine.register_csv("warm", str(path))  # inferred schema builds the index
    injector = FaultInjector(FaultPlan([FaultSpec(kind="io-error", at_call=1)]))
    engine.plugins[DataFormat.CSV].install_fault_injector(injector)
    result = engine.query("select sum(price) from warm where qty > 1")
    assert result.tier == "codegen"
    assert result.rows == [(EXPECTED_FILTERED_SUM,)]
    assert injector.injected == [(1, "io-error")]
    assert engine.last_profile.io_retries >= 1


def test_cache_eviction_between_plan_and_scan_falls_back_to_source(paths):
    """The planner pins ``access_path="cache"`` at plan time; an eviction (or
    concurrent invalidation) can remove the entry before the scan runs.  The
    cache plug-in must re-route that scan to the source plug-in instead of
    surfacing a spurious ``PluginError`` — the race the churn stress test
    hits nondeterministically, reproduced here deterministically."""
    engine = make_engine(paths, enable_caching=True)
    expected = sum(i * 1.5 for i in range(120))
    # An unfiltered scan: the full price column is materialized and cached.
    query = "select sum(price) from items_csv"
    assert engine.query(query).rows == [(expected,)]
    # A fresh query text (the original text's prepared plan was built while
    # the caches were cold and still routes to the raw file): the planner
    # now pins this plan's scan to the cache.
    prepared = engine.prepare(query.replace("select", "select "))
    from repro.core.physical import PhysScan

    scans = [
        node for node in prepared.plan.walk() if isinstance(node, PhysScan)
    ]
    assert scans and all(node.access_path == "cache" for node in scans)
    assert engine.cache_manager is not None
    # Simulate the race: the compiled-program cache was flushed (catalog
    # churn does this) and every cached entry vanishes after planning.
    # Plain eviction does not bump the catalog epoch, so the prepared plan
    # still routes its scan to the cache plug-in, and the fresh codegen
    # compiles against it.
    engine._compiled.clear()
    for entry in engine.cache_manager.entries():
        engine.cache_manager.evict(entry.key)
    assert engine.cache_manager.used_bytes == 0
    assert prepared.execute().rows == [(expected,)]
