"""Tests for the columnar sort subsystem (ORDER BY / LIMIT as plan + kernels).

Covers:

* the :class:`~repro.core.physical.PhysSort` plan root (placement,
  fingerprints, ``explain()`` strategy report),
* a differential ORDER BY / LIMIT suite across all four execution tiers
  (codegen / vectorized-parallel / vectorized / volcano): NaN, None, strings,
  multi-key ascending/descending mixes, ties (stability), ``LIMIT 0`` and
  ``LIMIT`` beyond the row count — results must be identical tier-to-tier,
* parallel per-morsel sort + k-way merge determinism at 1/2/8 workers,
* the streaming top-K accumulator and the k-way merge kernels,
* regression tests for the two satellite bugfixes: uncomparable mixed-type
  object sorts raise a clear :class:`ExecutionError`, and a literal negative
  ``LIMIT`` fails exactly like a negative ``LIMIT ?`` binding.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import ProteusEngine
from repro.core import sort as sortlib
from repro.core.physical import PhysSort
from repro.errors import ExecutionError, ProteusError

from tests.conftest import make_engine

#: One engine configuration per execution tier (mirrors tests/test_prepared).
TIER_CONFIGS = [
    ("codegen", {}),
    (
        "vectorized-parallel",
        {
            "enable_codegen": False,
            "parallel_workers": 4,
            "vectorized_batch_size": 8,
        },
    ),
    ("vectorized", {"enable_codegen": False}),
    ("volcano", {"enable_codegen": False, "enable_vectorized": False}),
]


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------

MESSY_COUNT = 90


def messy_rows() -> list[dict]:
    """Floats with missing values, strings, and heavily tied keys."""
    rows = []
    for i in range(MESSY_COUNT):
        row: dict = {"id": i, "grp": i % 5, "tag": f"t{(i * 7) % 11:02d}"}
        if i % 4 != 3:  # every fourth value is missing
            row["val"] = round((i * 37) % 50 + i / 100.0, 2)
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def messy_path(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("sort_datasets")
    path = directory / "messy.json"
    with open(path, "w", encoding="utf-8") as handle:
        for row in messy_rows():
            handle.write(json.dumps(row) + "\n")
    return str(path)


def messy_engine(messy_path: str, **config) -> ProteusEngine:
    engine = ProteusEngine(enable_caching=False, **config)
    engine.register_json("messy", messy_path)
    return engine


# ---------------------------------------------------------------------------
# PhysSort placement, fingerprints, explain
# ---------------------------------------------------------------------------


def test_planner_places_sort_root(paths):
    engine = make_engine(paths, enable_caching=False)
    prepared = engine.prepare("SELECT id FROM items_bin ORDER BY id DESC LIMIT 7")
    assert isinstance(prepared.plan, PhysSort)
    assert prepared.plan.keys == [("id", False)]
    assert prepared.plan.limit == 7
    plain = engine.prepare("SELECT id FROM items_bin")
    assert not isinstance(plain.plan, PhysSort)


def test_sort_is_fingerprinted(paths):
    engine = make_engine(paths, enable_caching=False)
    a = engine.prepare("SELECT id FROM items_bin ORDER BY id").plan
    b = engine.prepare("SELECT id FROM items_bin ORDER BY id DESC").plan
    c = engine.prepare("SELECT id FROM items_bin ORDER BY id LIMIT 3").plan
    assert a.fingerprint() != b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    # A parameterized LIMIT stays abstract: one fingerprint for every binding.
    d = engine.prepare("SELECT id FROM items_bin ORDER BY id LIMIT ?").plan
    e = engine.prepare("SELECT id FROM items_bin ORDER BY id LIMIT ?").plan
    assert d.fingerprint() == e.fingerprint()


def test_order_by_variants_share_one_compiled_program(paths):
    # The generated program covers the child plan; LIMIT variations of the
    # same shape must not compile twice.
    engine = make_engine(paths, enable_caching=False)
    engine.query("SELECT id FROM items_bin ORDER BY id LIMIT 3")
    engine.query("SELECT id FROM items_bin ORDER BY id LIMIT 9")
    engine.query("SELECT id FROM items_bin ORDER BY id")
    assert len(engine._compiled) == 1


def test_explain_reports_sort_strategy(paths):
    engine = make_engine(paths, enable_caching=False)
    text = engine.explain("SELECT id FROM items_bin ORDER BY id LIMIT 5")
    assert "Sort(id ASC, limit=5)" in text
    assert "== sort strategy ==" in text
    assert "topk" in text
    text = engine.explain("SELECT id FROM items_bin ORDER BY id")
    assert "[strategy: lexsort]" in text


# ---------------------------------------------------------------------------
# Differential suite: identical results on every tier
# ---------------------------------------------------------------------------

DIFFERENTIAL_QUERIES = [
    # NaN / None keys, both directions (NULLS LAST in both).
    "SELECT id, val FROM messy ORDER BY val",
    "SELECT id, val FROM messy ORDER BY val DESC",
    "SELECT id, val FROM messy ORDER BY val DESC LIMIT 10",
    # String keys, both directions.
    "SELECT id, tag FROM messy ORDER BY tag",
    "SELECT id, tag FROM messy ORDER BY tag DESC LIMIT 7",
    # Multi-key ascending/descending mixes.
    "SELECT grp, val, id FROM messy ORDER BY grp, val DESC",
    "SELECT grp, tag, id FROM messy ORDER BY grp DESC, tag",
    "SELECT grp, val, id FROM messy ORDER BY grp DESC, val DESC LIMIT 12",
    # Ties: grp has 18 duplicates per value — stability must keep scan order.
    "SELECT grp, id FROM messy ORDER BY grp",
    "SELECT grp, id FROM messy ORDER BY grp DESC LIMIT 25",
    # LIMIT edge cases.
    "SELECT id FROM messy ORDER BY id LIMIT 0",
    "SELECT id FROM messy ORDER BY id DESC LIMIT 100000",
    "SELECT id FROM messy LIMIT 9",
    "SELECT id FROM messy LIMIT 0",
    # Sorting grouped output.
    "SELECT grp, COUNT(*) AS n FROM messy GROUP BY grp ORDER BY grp DESC",
    # MAX (not SUM): partial float sums legitimately differ in the last ulp
    # on the parallel tier, which is about aggregation, not ordering.
    "SELECT tag, MAX(val) AS m FROM messy GROUP BY tag ORDER BY tag LIMIT 4",
]


@pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
def test_order_by_identical_across_tiers(messy_path, query):
    reference = None
    for tier, config in TIER_CONFIGS:
        engine = messy_engine(messy_path, **config)
        result = engine.query(query)
        rows = result.rows
        if reference is None:
            reference = rows
        else:
            assert rows == reference, (tier, query)


def test_expected_order_with_missing_values(messy_path):
    # Anchor the shared semantics (not just tier agreement): ascending and
    # descending both put missing values last, stably.
    engine = messy_engine(messy_path)
    ascending = engine.query("SELECT id, val FROM messy ORDER BY val").rows
    values = [row["val"] for row in messy_rows() if "val" in row]
    missing_ids = [row["id"] for row in messy_rows() if "val" not in row]
    assert [v for _, v in ascending[: len(values)]] == sorted(values)
    assert [i for i, v in ascending if v is None] == missing_ids
    descending = engine.query("SELECT id, val FROM messy ORDER BY val DESC").rows
    assert [v for _, v in descending[: len(values)]] == sorted(values, reverse=True)
    assert [i for i, v in descending if v is None] == missing_ids


def test_stability_on_ties(messy_path):
    engine = messy_engine(messy_path)
    rows = engine.query("SELECT grp, id FROM messy ORDER BY grp").rows
    for value in range(5):
        ids = [i for g, i in rows if g == value]
        assert ids == sorted(ids)  # scan order preserved within each tie


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_sort_strategy_recorded(messy_path, tier, config):
    engine = messy_engine(messy_path, **config)
    full = engine.query("SELECT id, val FROM messy ORDER BY val DESC")
    assert full.tier == tier
    expected_full = {
        "vectorized-parallel": sortlib.STRATEGY_PARALLEL_MERGE,
    }.get(tier, sortlib.STRATEGY_LEXSORT)
    assert full.profile.sort_strategy == expected_full
    assert full.profile.rows_sorted >= MESSY_COUNT
    topk = engine.query("SELECT id, val FROM messy ORDER BY val LIMIT 3")
    expected_topk = {
        "vectorized-parallel": sortlib.STRATEGY_PARALLEL_MERGE,
    }.get(tier, sortlib.STRATEGY_TOPK)
    assert topk.profile.sort_strategy == expected_topk
    unsorted = engine.query("SELECT id FROM messy")
    assert unsorted.profile.sort_strategy is None


# ---------------------------------------------------------------------------
# Parallel per-morsel sort + merge: bit-identical at any worker count
# ---------------------------------------------------------------------------

PARALLEL_QUERIES = [
    "SELECT id, val FROM messy ORDER BY val",
    "SELECT id, val FROM messy ORDER BY val DESC LIMIT 8",
    "SELECT grp, id FROM messy ORDER BY grp",  # ties across morsels
    "SELECT grp, val, id FROM messy ORDER BY grp, val DESC",
    "SELECT id, tag FROM messy ORDER BY tag DESC",
]


@pytest.mark.parametrize("query", PARALLEL_QUERIES)
def test_parallel_sort_identical_at_any_worker_count(messy_path, query):
    reference = messy_engine(
        messy_path, enable_codegen=False, vectorized_batch_size=8
    ).query(query)
    assert reference.tier == "vectorized"
    for workers in (1, 2, 8):
        engine = messy_engine(
            messy_path,
            enable_codegen=False,
            parallel_workers=workers,
            vectorized_batch_size=8,
        )
        result = engine.query(query)
        expected_tier = "vectorized" if workers == 1 else "vectorized-parallel"
        assert result.tier == expected_tier, (workers, query)
        assert result.rows == reference.rows, (workers, query)
        for name in reference.columns:
            np.testing.assert_array_equal(
                np.asarray(result.column_array(name)),
                np.asarray(reference.column_array(name)),
            )


# ---------------------------------------------------------------------------
# Satellite: uncomparable mixed-type object sorts
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mixed_path(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("sort_mixed")
    path = directory / "mixed.json"
    with open(path, "w", encoding="utf-8") as handle:
        for i, value in enumerate([1, "one", 2, "two", 3]):
            handle.write(json.dumps({"id": i, "m": value}) + "\n")
    return str(path)


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_mixed_type_sort_raises_clear_error(mixed_path, tier, config):
    engine = ProteusEngine(enable_caching=False, **config)
    engine.register_json("mixed", mixed_path)
    with pytest.raises(ExecutionError, match=r"'m'.*int and str"):
        engine.query("SELECT id, m FROM mixed ORDER BY m")
    with pytest.raises(ExecutionError, match=r"'m'.*int and str"):
        engine.query("SELECT id, m FROM mixed ORDER BY m DESC LIMIT 2")


def test_uniform_object_column_still_sorts(mixed_path):
    engine = ProteusEngine(enable_caching=False)
    engine.register_json("mixed", mixed_path)
    result = engine.query("SELECT id, m FROM mixed WHERE id < 2 ORDER BY id")
    assert result.rows == [(0, 1), (1, "one")]


# ---------------------------------------------------------------------------
# Satellite: negative LIMIT handled identically on both paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_negative_limit_rejected_identically(paths, tier, config):
    engine = make_engine(paths, enable_caching=False, **config)
    with pytest.raises(ProteusError, match="LIMIT must not be negative, got -2"):
        engine.query("SELECT id FROM items_bin ORDER BY id LIMIT -2")
    prepared = engine.prepare("SELECT id FROM items_bin ORDER BY id LIMIT ?")
    with pytest.raises(ProteusError, match="must not be negative, got -2"):
        prepared.execute(-2)
    # Validation happens before any execution work on both paths.
    with pytest.raises(ProteusError, match="must not be negative"):
        engine.query("SELECT id FROM items_bin LIMIT ?", -1)
    with pytest.raises(ProteusError, match="LIMIT must not be negative"):
        engine.query("SELECT id FROM items_bin LIMIT -1")


def test_zero_limit_still_allowed(paths):
    engine = make_engine(paths, enable_caching=False)
    assert engine.query("SELECT id FROM items_bin ORDER BY id LIMIT 0").rows == []
    assert engine.query("SELECT id FROM items_bin LIMIT ?", 0).rows == []


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_zero_limit_keeps_column_dtypes(paths, tier, config):
    # An empty ORDER BY ... LIMIT 0 result must keep the columns' real
    # dtypes on the columnar tiers (the streaming top-K and the parallel
    # merge must not fabricate float64 buffers).  Volcano's list-backed
    # buffers have no dtype to preserve — it only guarantees emptiness.
    engine = make_engine(paths, enable_caching=False, **config)
    result = engine.query(
        "SELECT id, category FROM items_bin ORDER BY id LIMIT 0"
    )
    assert result.tier == tier
    assert len(result) == 0
    if tier != "volcano":
        assert result.column_array("id").dtype.kind == "i"
        assert result.column_array("category").dtype == object


# ---------------------------------------------------------------------------
# Kernel units: streaming top-K and the k-way merge
# ---------------------------------------------------------------------------


def test_topk_accumulator_matches_full_sort():
    rng = np.random.RandomState(3)
    accumulator = sortlib.TopKAccumulator(["x", "id"], [("x", True)], 11)
    chunks = []
    base = 0
    for _ in range(40):  # enough pushes to trigger internal compaction
        xs = rng.uniform(0, 1000, 500)
        xs[rng.randint(0, 500, 20)] = np.nan  # missing values mid-stream
        ids = np.arange(base, base + 500)
        base += 500
        chunks.append((xs, ids))
        accumulator.push({"x": xs, "id": ids}, 500)
    count, columns, strategy = accumulator.finish()
    assert strategy == sortlib.STRATEGY_TOPK
    assert count == 11
    all_x = np.concatenate([x for x, _ in chunks])
    all_id = np.concatenate([i for _, i in chunks])
    order = np.lexsort((all_id, np.nan_to_num(all_x), np.isnan(all_x)))
    np.testing.assert_array_equal(columns["id"], all_id[order][:11])


def test_merge_sorted_runs_matches_stable_sort():
    rng = np.random.RandomState(5)
    runs = []
    offset = 0
    for length in (13, 1, 29, 7, 22):
        xs = np.sort(rng.randint(0, 9, length).astype(np.int64))
        runs.append((length, {"x": xs, "id": np.arange(offset, offset + length)}))
        offset += length
    count, columns, strategy = sortlib.merge_sorted_runs(
        ["x", "id"], runs, [("x", True)], None
    )
    assert strategy == sortlib.STRATEGY_PARALLEL_MERGE
    concat_x = np.concatenate([run[1]["x"] for run in runs])
    concat_id = np.concatenate([run[1]["id"] for run in runs])
    order = np.argsort(concat_x, kind="stable")
    np.testing.assert_array_equal(columns["x"], concat_x[order])
    np.testing.assert_array_equal(columns["id"], concat_id[order])
    assert count == len(concat_x)


def test_merge_sorted_runs_descending_with_limit():
    runs = []
    for start in (0, 10, 20):
        xs = np.array([9.0, 5.0, 1.0]) + start
        runs.append((3, {"x": np.sort(xs)[::-1].copy()}))
    # Runs are descending-sorted; merge with the matching key direction.
    count, columns, strategy = sortlib.merge_sorted_runs(
        ["x"], runs, [("x", False)], 4
    )
    assert strategy == sortlib.STRATEGY_PARALLEL_MERGE
    assert columns["x"].tolist() == [29.0, 25.0, 21.0, 19.0]
    assert count == 4


def test_parallel_string_sort_with_single_surviving_morsel(messy_path):
    # String-key runs are handed to the root unsorted (their factorization
    # codes are run-local, so the root re-sorts anyway); the re-sort must
    # happen even when only ONE morsel produces rows.
    serial = messy_engine(
        messy_path, enable_codegen=False, vectorized_batch_size=8
    ).query("SELECT tag, id FROM messy WHERE id < 10 ORDER BY tag")
    parallel = messy_engine(
        messy_path,
        enable_codegen=False,
        parallel_workers=4,
        vectorized_batch_size=8,
    ).query("SELECT tag, id FROM messy WHERE id < 10 ORDER BY tag")
    assert parallel.tier == "vectorized-parallel"
    assert parallel.rows == serial.rows
    tags = [tag for tag, _ in parallel.rows]
    assert tags == sorted(tags)


def test_parallel_merge_with_mixed_dtype_runs(tmp_path):
    # The JSON plugin materializes a nullable int column per scan range:
    # ranges containing a null become float64 (NaN-encoded), ranges without
    # become int64.  The k-way merge must compare such runs in one key
    # space — the int ``~x`` and float ``-x`` descending encodings are
    # mutually incomparable.
    path = tmp_path / "mixed_runs.json"
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(400):
            row: dict = {"id": i}
            if not (i >= 200 and i % 7 == 0):  # nulls only in the back half
                row["x"] = (i * 13) % 97
            handle.write(json.dumps(row) + "\n")
    serial = ProteusEngine(enable_caching=False, enable_codegen=False)
    serial.register_json("mixed_runs", str(path))
    for query in (
        "SELECT id, x FROM mixed_runs ORDER BY x DESC",
        "SELECT id, x FROM mixed_runs ORDER BY x",
        "SELECT id, x FROM mixed_runs ORDER BY x DESC LIMIT 10",
    ):
        expected = serial.query(query).rows
        for workers in (2, 8):
            parallel = ProteusEngine(
                enable_caching=False,
                enable_codegen=False,
                parallel_workers=workers,
                vectorized_batch_size=32,
            )
            parallel.register_json("mixed_runs", str(path))
            result = parallel.query(query)
            assert result.tier == "vectorized-parallel"
            assert result.rows == expected, (query, workers)


def test_pure_limit_output_rows_consistent_across_batch_tiers(messy_path):
    serial = messy_engine(
        messy_path, enable_codegen=False, vectorized_batch_size=8
    ).query("SELECT id FROM messy LIMIT 5")
    parallel = messy_engine(
        messy_path,
        enable_codegen=False,
        parallel_workers=4,
        vectorized_batch_size=8,
    ).query("SELECT id FROM messy LIMIT 5")
    assert parallel.tier == "vectorized-parallel"
    assert serial.profile.output_rows == 5
    assert parallel.profile.output_rows == 5
    # ORDER BY ... LIMIT 0 also reports zero emitted rows on both tiers.
    for engine_result in (
        messy_engine(
            messy_path, enable_codegen=False, vectorized_batch_size=8
        ).query("SELECT id, val FROM messy ORDER BY val LIMIT 0"),
        messy_engine(
            messy_path,
            enable_codegen=False,
            parallel_workers=4,
            vectorized_batch_size=8,
        ).query("SELECT id, val FROM messy ORDER BY val LIMIT 0"),
    ):
        assert len(engine_result) == 0
        assert engine_result.profile.output_rows == 0


def test_streaming_topk_used_by_vectorized_tier(messy_path):
    engine = messy_engine(
        messy_path, enable_codegen=False, vectorized_batch_size=8
    )
    result = engine.query("SELECT id, val FROM messy ORDER BY val LIMIT 5")
    assert result.tier == "vectorized"
    assert result.profile.sort_strategy == sortlib.STRATEGY_TOPK
    # The streaming accumulator sorts per batch, so it counts more sorted
    # rows than the result size but never materializes the full input.
    assert result.profile.rows_sorted >= MESSY_COUNT // 2


def test_limit_only_stops_scanning_early(paths):
    engine = make_engine(paths, enable_caching=False, enable_codegen=False,
                         vectorized_batch_size=8)
    result = engine.query("SELECT id FROM items_bin LIMIT 8")
    assert len(result) == 8
    # 120 input rows, batches of 8: the scan must stop after the first batch.
    assert result.profile.rows_scanned <= 16
