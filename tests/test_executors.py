"""Unit tests for the radix kernels, the Volcano interpreter, the optimizer
stages and the code generator (cross-checked against each other)."""

import numpy as np
import pytest

from repro.core.algebra import Join, Scan, Select
from repro.core.executor import radix
from repro.core.expressions import BinaryOp, FieldRef, Literal, conjunction
from repro.core.optimizer.join_order import choose_build_side, extract_equi_key
from repro.core.optimizer.rules import pushdown_selections, required_paths
from repro.core.physical import PhysHashJoin, PhysScan, PhysSelect, scans_of
from repro.errors import ExecutionError


# -- radix kernels -----------------------------------------------------------------


def _naive_join(left, right):
    pairs = set()
    for i, lv in enumerate(left):
        for j, rv in enumerate(right):
            if lv == rv:
                pairs.add((i, j))
    return pairs


def test_radix_join_matches_naive_int():
    rng = np.random.RandomState(0)
    left = rng.randint(0, 40, size=200)
    right = rng.randint(0, 40, size=150)
    li, ri = radix.radix_join(left, right)
    assert set(zip(li.tolist(), ri.tolist())) == _naive_join(left, right)


def test_radix_join_matches_naive_strings():
    left = np.asarray(["a", "b", "c", "a"], dtype=object)
    right = np.asarray(["c", "a", "d"], dtype=object)
    li, ri = radix.radix_join(left, right)
    assert set(zip(li.tolist(), ri.tolist())) == _naive_join(left, right)


def test_radix_join_empty_and_disjoint():
    li, ri = radix.radix_join(np.asarray([1, 2, 3]), np.asarray([7, 8]))
    assert len(li) == 0 and len(ri) == 0
    li, ri = radix.radix_join(np.asarray([], dtype=np.int64), np.asarray([1, 2]))
    assert len(li) == 0


def test_radix_table_reuse():
    left = np.asarray([1, 2, 2, 3])
    table = radix.build_radix_table(left)
    assert table.build_size == 4
    assert table.size_bytes > 0
    li, ri = radix.probe_radix_table(table, np.asarray([2, 5]))
    assert sorted(li.tolist()) == [1, 2]
    assert set(ri.tolist()) == {0}


def test_radix_group_and_aggregates():
    keys = np.asarray([3, 1, 3, 2, 1, 3])
    values = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    grouping = radix.radix_group([keys])
    assert grouping.num_groups == 3
    counts = radix.group_aggregate("count", grouping.group_ids, grouping.num_groups)
    sums = radix.group_aggregate("sum", grouping.group_ids, grouping.num_groups, values)
    maxima = radix.group_aggregate("max", grouping.group_ids, grouping.num_groups, values)
    by_key = {int(k): (int(c), float(s), float(m))
              for k, c, s, m in zip(grouping.key_arrays[0], counts, sums, maxima)}
    assert by_key[3] == (3, 10.0, 6.0)
    assert by_key[1] == (2, 7.0, 5.0)
    assert by_key[2] == (1, 4.0, 4.0)


def test_radix_group_multiple_keys():
    a = np.asarray([1, 1, 2, 2, 1])
    b = np.asarray(["x", "y", "x", "x", "x"], dtype=object)
    grouping = radix.radix_group([a, b])
    assert grouping.num_groups == 3


def test_radix_group_requires_keys_and_equal_lengths():
    with pytest.raises(ExecutionError):
        radix.radix_group([])
    with pytest.raises(ExecutionError):
        radix.radix_group([np.asarray([1, 2]), np.asarray([1])])


def test_scalar_aggregates():
    values = np.asarray([1.0, 4.0, 2.0])
    assert radix.scalar_aggregate("count", None, 3) == 3
    assert radix.scalar_aggregate("sum", values, 3) == 7.0
    assert radix.scalar_aggregate("max", values, 3) == 4.0
    assert radix.scalar_aggregate("min", values, 3) == 1.0
    assert radix.scalar_aggregate("avg", values, 3) == pytest.approx(7.0 / 3)
    with pytest.raises(ExecutionError):
        radix.scalar_aggregate("sum", None, 3)
    with pytest.raises(ExecutionError):
        radix.scalar_aggregate("median", values, 3)


def test_group_aggregate_unknown_function():
    with pytest.raises(ExecutionError):
        radix.group_aggregate("median", np.asarray([0]), 1, np.asarray([1.0]))


# -- optimizer rules -------------------------------------------------------------------


def _field(binding, name):
    return FieldRef(binding, (name,))


def test_selection_pushdown_through_join():
    left = Scan("items", "i")
    right = Scan("orders", "o")
    join = Join(None, left, right)
    predicate = conjunction([
        BinaryOp("<", _field("i", "qty"), Literal(5)),
        BinaryOp(">", _field("o", "total"), Literal(10)),
        BinaryOp("=", _field("i", "id"), _field("o", "okey")),
    ])
    plan = pushdown_selections(Select(predicate, join))
    assert isinstance(plan, Join)
    # Join predicate holds the cross-binding conjunct.
    assert plan.predicate is not None and plan.predicate.bindings() == {"i", "o"}
    # Each side received its own selection.
    assert isinstance(plan.left, Select) and plan.left.predicate.bindings() == {"i"}
    assert isinstance(plan.right, Select) and plan.right.predicate.bindings() == {"o"}


def test_selection_merge_of_adjacent_selects():
    scan = Scan("items", "i")
    plan = Select(BinaryOp("<", _field("i", "a"), Literal(1)),
                  Select(BinaryOp(">", _field("i", "b"), Literal(0)), scan))
    pushed = pushdown_selections(plan)
    assert isinstance(pushed, Select)
    assert isinstance(pushed.child, Scan)
    assert len(pushed.predicate.bindings()) == 1


def test_required_paths_collects_all_references():
    from repro.core.algebra import Reduce
    from repro.core.expressions import AggregateCall, OutputColumn

    plan = Reduce(
        "agg",
        [OutputColumn("m", AggregateCall("max", _field("i", "price")))],
        Select(BinaryOp("<", _field("i", "qty"), Literal(3)), Scan("items", "i")),
    )
    required = required_paths(plan)
    assert required["i"] == {("price",), ("qty",)}


def test_extract_equi_key_and_residual():
    predicate = conjunction([
        BinaryOp("=", _field("o", "okey"), _field("l", "okey")),
        BinaryOp("<", _field("l", "qty"), Literal(3)),
    ])
    left_key, right_key, residual = extract_equi_key(predicate, {"o"}, {"l"})
    assert left_key.binding == "o"
    assert right_key.binding == "l"
    assert residual is not None and residual.bindings() == {"l"}
    assert extract_equi_key(None, {"o"}, {"l"}) == (None, None, None)


def test_choose_build_side():
    assert choose_build_side(1000, 10) is True
    assert choose_build_side(10, 1000) is False


# -- planner / engine integration --------------------------------------------------------


def test_planner_produces_hash_join_and_projection_pushdown(engine):
    engine.query("SELECT COUNT(*) FROM items_bin")  # warm catalog
    engine.query(
        "SELECT SUM(i.price) FROM items_bin i JOIN items_csv c ON i.id = c.id "
        "WHERE c.qty < 5"
    )
    plan = engine.last_plan
    joins = [node for node in plan.walk() if isinstance(node, PhysHashJoin)]
    assert len(joins) == 1
    scans = scans_of(plan)
    paths_by_dataset = {scan.dataset: set(map(tuple, scan.paths)) for scan in scans}
    # Only the fields the query touches are materialized by each scan.
    assert paths_by_dataset["items_bin"] == {("id",), ("price",)}
    assert paths_by_dataset["items_csv"] == {("id",), ("qty",)}


def test_planner_falls_back_to_nested_loop_for_non_equi_join(engine):
    engine.query(
        "SELECT COUNT(*) FROM items_bin i JOIN items_csv c ON i.id < c.id "
        "WHERE c.qty < 1 AND i.qty < 1"
    )
    from repro.core.physical import PhysNestedLoopJoin

    assert any(isinstance(node, PhysNestedLoopJoin) for node in engine.last_plan.walk())


# -- Volcano vs generated code -------------------------------------------------------------


QUERIES = [
    "SELECT COUNT(*) FROM items_csv WHERE qty < 5",
    "SELECT MAX(price), SUM(qty) FROM items_json WHERE id < 60",
    "SELECT qty, COUNT(*), MAX(price) FROM items_bin WHERE id < 100 GROUP BY qty",
    "SELECT SUM(i.price) FROM items_bin i JOIN items_csv c ON i.id = c.id WHERE c.qty < 4",
    "for { o <- orders, l <- o.lines, l.qty > 1 } yield count",
    "SELECT origin.country, COUNT(*) FROM orders GROUP BY origin.country",
]


def _normalized(rows):
    """Normalize numeric types so int/float representation differences between
    the vectorized and the interpreted executor do not matter."""
    out = []
    for row in rows:
        out.append(tuple(
            round(float(v), 6) if isinstance(v, (int, float)) and not isinstance(v, bool)
            else v
            for v in row
        ))
    return sorted(out, key=repr)


@pytest.mark.parametrize("query", QUERIES)
def test_generated_code_matches_volcano(engine, volcano_engine, query):
    generated = engine.query(query)
    interpreted = volcano_engine.query(query)
    assert generated.tier == "codegen"
    assert interpreted.tier != "codegen"
    assert _normalized(generated.rows) == _normalized(interpreted.rows)


def test_generated_source_is_exposed_and_specialized(engine):
    engine.query("SELECT COUNT(*) FROM items_csv WHERE qty < 5")
    source = engine.last_generated_source
    assert source is not None
    assert "def __query__(rt):" in source
    assert "qty" in source
    # Only the predicate column is scanned eagerly; no other fields appear.
    assert "price" not in source
