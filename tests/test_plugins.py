"""Unit tests for the input plug-ins (CSV, JSON, binary row/column, cache)
and the output plug-ins."""

import numpy as np
import pytest

from repro.caching.manager import CacheManager
from repro.caching.matching import field_cache_key
from repro.core import types as t
from repro.errors import PluginError
from repro.plugins import (
    BinaryColumnPlugin,
    BinaryRowPlugin,
    CachePlugin,
    CsvPlugin,
    JsonPlugin,
)
from repro.plugins.output import BinaryColumnOutput, PositionalOutput
from repro.storage.catalog import DataFormat, Dataset
from repro.storage.memory import MemoryManager

from tests.conftest import ITEMS_SCHEMA, ORDERS_SCHEMA, ITEM_COUNT, ORDER_COUNT, expected_items, expected_orders


@pytest.fixture
def memory():
    return MemoryManager()


def _dataset(name, fmt, path, schema, **options):
    return Dataset(name=name, format=fmt, path=path, schema=schema, options=options)


# -- CSV plug-in --------------------------------------------------------------------


def test_csv_scan_columns(paths, memory):
    plugin = CsvPlugin(memory)
    dataset = _dataset("items", DataFormat.CSV, paths["items_csv"], ITEMS_SCHEMA)
    buffers = plugin.scan_columns(dataset, [("id",), ("price",), ("category",)])
    assert buffers.count == ITEM_COUNT
    assert buffers.column(("id",)).dtype == np.int64
    assert buffers.column(("price",)).dtype == np.float64
    assert buffers.column(("category",))[5] == "cat1"
    expected = expected_items()
    assert buffers.column(("price",))[10] == pytest.approx(expected[10]["price"])


def test_csv_scan_columns_at_is_selective(paths, memory):
    plugin = CsvPlugin(memory)
    dataset = _dataset("items", DataFormat.CSV, paths["items_csv"], ITEMS_SCHEMA)
    oids = np.asarray([3, 17, 40])
    buffers = plugin.scan_columns_at(dataset, [("qty",)], oids)
    assert list(buffers.column(("qty",))) == [3 % 10, 17 % 10, 40 % 10]


def test_csv_infer_schema_and_stats(paths, memory):
    plugin = CsvPlugin(memory)
    dataset = _dataset("items", DataFormat.CSV, paths["items_csv"], None)
    schema = plugin.infer_schema(dataset)
    assert schema.field_type("id") is t.INT
    assert schema.field_type("price") is t.FLOAT
    assert schema.field_type("category") is t.STRING
    dataset.schema = schema
    stats = plugin.collect_statistics(dataset)
    assert stats.cardinality == ITEM_COUNT
    assert stats.min_values["id"] == 0
    assert stats.max_values["id"] == ITEM_COUNT - 1


def test_csv_read_value_and_iterate(paths, memory):
    plugin = CsvPlugin(memory)
    dataset = _dataset("items", DataFormat.CSV, paths["items_csv"], ITEMS_SCHEMA)
    assert plugin.read_value(dataset, 7, ("category",)) == "cat3"
    rows = list(plugin.iterate_rows(dataset, [("id",), ("qty",)]))
    assert len(rows) == ITEM_COUNT
    assert rows[12] == {"id": 12, "qty": 2}


def test_csv_unknown_column(paths, memory):
    plugin = CsvPlugin(memory)
    dataset = _dataset("items", DataFormat.CSV, paths["items_csv"], ITEMS_SCHEMA)
    with pytest.raises(PluginError):
        plugin.scan_columns(dataset, [("missing",)])


def test_csv_index_info(paths, memory):
    plugin = CsvPlugin(memory)
    dataset = _dataset("items", DataFormat.CSV, paths["items_csv"], ITEMS_SCHEMA)
    info = plugin.index_info(dataset)
    assert info["rows"] == ITEM_COUNT
    assert 0 < info["size_bytes"]
    assert info["build_seconds"] >= 0


# -- JSON plug-in ---------------------------------------------------------------------


def test_json_scan_flat_and_nested_fields(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    buffers = plugin.scan_columns(dataset, [("okey",), ("origin", "country")])
    assert buffers.count == ORDER_COUNT
    assert buffers.column(("okey",))[3] == 3
    assert buffers.column(("origin", "country"))[3] == "CH"


def test_json_scan_unnest(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    buffers = plugin.scan_unnest(dataset, ("lines",), [("qty",)])
    expected_total = sum(len(o["lines"]) for o in expected_orders())
    assert buffers.count == expected_total
    assert buffers.column(("qty",)).dtype.kind in "if"
    # parent positions point back into the order stream
    assert buffers.parent_positions.max() < ORDER_COUNT


def test_json_scan_unnest_subset_of_parents(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    parent_oids = np.asarray([5, 6, 7])
    buffers = plugin.scan_unnest(dataset, ("lines",), [("item",)], parent_oids)
    expected_total = sum(len(expected_orders()[i]["lines"]) for i in (5, 6, 7))
    assert buffers.count == expected_total
    # positions index into the *given* parent list
    assert set(buffers.parent_positions.tolist()) <= {0, 1, 2}


def test_json_unnest_requires_array(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    with pytest.raises(PluginError):
        plugin.scan_unnest(dataset, ("origin",), [("country",)])


def test_json_read_value_and_missing_fields(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    assert plugin.read_value(dataset, 2, ("total",)) == pytest.approx(5.0)
    assert plugin.read_value(dataset, 2, ("origin", "zone")) == 2
    assert plugin.read_value(dataset, 2, ("nonexistent",)) is None


def test_json_infer_schema(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], None,
                       sample_size=20)
    schema = plugin.infer_schema(dataset)
    assert schema.has_field("okey")
    assert isinstance(schema.field_type("origin"), t.RecordType)


def test_json_index_info_and_unnest_iterator(paths, memory):
    plugin = JsonPlugin(memory)
    dataset = _dataset("orders", DataFormat.JSON, paths["orders_json"], ORDERS_SCHEMA)
    info = plugin.index_info(dataset)
    assert info["objects"] == ORDER_COUNT
    assert info["fixed_schema"]  # every order has the same field order
    state = plugin.unnest_init(dataset, 5, ("lines",))
    count = 0
    while plugin.unnest_has_next(state):
        element = plugin.unnest_get_next(state)
        assert "item" in element
        count += 1
    assert count == len(expected_orders()[5]["lines"])


# -- binary plug-ins -------------------------------------------------------------------


def test_binary_column_plugin(paths, memory):
    plugin = BinaryColumnPlugin(memory)
    dataset = _dataset("items", DataFormat.BINARY_COLUMN, paths["items_columns"], ITEMS_SCHEMA)
    assert plugin.infer_schema(dataset).field_names() == ITEMS_SCHEMA.field_names()
    buffers = plugin.scan_columns(dataset, [("id",), ("price",)])
    assert buffers.count == ITEM_COUNT
    stats = plugin.collect_statistics(dataset)
    assert stats.max_values["id"] == ITEM_COUNT - 1
    assert plugin.read_value(dataset, 3, ("price",)) == pytest.approx(4.5)


def test_binary_row_plugin(paths, memory):
    plugin = BinaryRowPlugin(memory)
    dataset = _dataset("items", DataFormat.BINARY_ROW, paths["items_rows"], ITEMS_SCHEMA)
    buffers = plugin.scan_columns(dataset, [("qty",), ("category",)])
    assert buffers.count == ITEM_COUNT
    assert buffers.column(("category",))[1] == "cat1"
    rows = list(plugin.iterate_rows(dataset, [("id",)]))
    assert rows[4] == {"id": 4}


def test_binary_plugins_cost_below_text_formats(memory):
    assert BinaryColumnPlugin(memory).field_access_cost < CsvPlugin(memory).field_access_cost
    assert CsvPlugin(memory).field_access_cost < JsonPlugin(memory).field_access_cost


# -- cache plug-in ---------------------------------------------------------------------


def test_cache_plugin_serves_cached_fields(memory):
    manager = CacheManager(memory.arena)
    values = np.arange(50, dtype=np.int64)
    manager.store(field_cache_key("ds", ("x",)), values, kind="field",
                  dataset="ds", source_format="json")
    plugin = CachePlugin(memory, manager)
    dataset = Dataset("ds", DataFormat.CACHE, "", t.make_schema({"x": "int"}))
    assert plugin.can_serve("ds", [("x",)])
    assert not plugin.can_serve("ds", [("y",)])
    buffers = plugin.scan_columns(dataset, [("x",)])
    assert np.array_equal(buffers.column(("x",)), values)
    with pytest.raises(PluginError):
        plugin.scan_columns(dataset, [("y",)])
    assert plugin.read_value(dataset, 7, ("x",)) == 7
    stats = plugin.collect_statistics(dataset)
    assert stats.cardinality == 50


# -- output plug-ins ----------------------------------------------------------------------


def test_binary_column_output_flush_and_cache():
    output = BinaryColumnOutput()
    columns = {"a": np.asarray([1, 2, 3]), "b": np.asarray([1.5, 2.5, 3.5])}
    rows = output.flush_rows(["a", "b"], columns)
    assert rows == [(1, 1.5), (2, 2.5), (3, 3.5)]
    cache = output.materialize_cache(columns["a"], np.arange(3), "a column")
    assert cache.eagerness == "eager"
    assert cache.size_bytes == columns["a"].nbytes


def test_positional_output_is_lazy():
    output = PositionalOutput()
    cache = output.materialize_cache(np.asarray([9.0, 8.0]), np.asarray([4, 5]), "lazy")
    assert cache.eagerness == "lazy"
    assert np.array_equal(cache.data, np.asarray([4, 5]))
