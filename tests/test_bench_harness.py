"""Integration tests of the benchmark harness (adapters, runner, reporting).

These run the actual experiment drivers at very small scales; the full-size
runs live under ``benchmarks/``.
"""

import pytest

from repro.bench import data as bench_data
from repro.bench import experiments
from repro.bench.reporting import ExperimentReport, format_matrix, format_totals
from repro.bench.systems import BaselineAdapter, ProteusAdapter, results_match
from repro.baselines import PostgresLikeEngine
from repro.workloads import templates


def test_results_match_helper():
    assert results_match([(1, 2.0)], [(1.0, 2.0)])
    assert results_match([(1,), (2,)], [(2,), (1,)])
    assert not results_match([(1,)], [(1,), (2,)])
    assert not results_match([(1.0,)], [(1.5,)])


def test_proteus_and_baseline_adapters_agree_on_binary_projection():
    files = bench_data.tpch_files(scale=0.05)
    threshold = files.tables.orderkey_threshold(0.5)
    spec = templates.projection_query("lineitem", threshold, "max", 0.5)

    proteus = ProteusAdapter()
    proteus.attach_binary_columns("lineitem", files.lineitem_columns)
    baseline = BaselineAdapter(PostgresLikeEngine())
    baseline.attach_binary_columns("lineitem", files.lineitem_columns)

    proteus_result = proteus.run(spec)
    baseline_result = baseline.run(spec)
    assert results_match(proteus_result.result, baseline_result.result)
    assert proteus_result.seconds > 0 and baseline_result.seconds > 0


def test_baseline_adapter_skips_unsupported_datasets():
    files = bench_data.tpch_files(scale=0.05)
    from repro.baselines import MongoLikeEngine

    mongo = BaselineAdapter(MongoLikeEngine())
    mongo.attach_csv("lineitem_csv", files.lineitem_csv)  # silently unsupported
    spec = templates.projection_query("lineitem_csv", 10, "count", 0.1)
    assert not mongo.supports(spec)


def test_figure6_experiment_tiny_scale():
    report = experiments.figure6(
        scale=0.05, systems=(experiments.POSTGRES, experiments.DBMS_C, experiments.PROTEUS)
    )
    assert isinstance(report, ExperimentReport)
    # 3 variants x 4 selectivities per system
    assert len([m for m in report.measurements if m.system == "proteus"]) == 12
    assert not report.notes, report.notes  # results cross-validated
    text = format_matrix(report, sorted({m.query for m in report.measurements}),
                         ["postgres_like", "dbms_c_like", "proteus"])
    assert "proteus" in text
    totals = format_totals(report, ["postgres_like", "proteus"])
    assert "postgres_like" in totals


def test_row_store_slower_than_proteus_at_moderate_scale():
    # The comparative shape (per-tuple interpreted row store slower than the
    # generated engine) needs enough rows to amortize Proteus' fixed per-query
    # planning/compilation cost; the full-size runs live under benchmarks/.
    report = experiments.figure6(
        scale=0.5, systems=(experiments.POSTGRES, experiments.PROTEUS)
    )
    assert report.total_seconds("postgres_like") > report.total_seconds("proteus")


def test_figure9_unnest_subset_tiny_scale():
    report = experiments.figure9(
        scale=0.05, systems=(experiments.POSTGRES, experiments.MONGO, experiments.PROTEUS)
    )
    mongo_queries = {m.query for m in report.measurements if m.system == "mongo_like"}
    # MongoDB only runs the first join variant and the unnest queries.
    assert mongo_queries
    assert all(q.startswith(("join_count", "unnest")) for q in mongo_queries)
    assert not report.notes, report.notes


def test_index_construction_experiment():
    result = experiments.index_construction(scale=0.05)
    assert 0 < result.index_ratio < 1.0
    assert result.mongo_load_seconds > 0
    assert result.index_bytes < result.file_bytes


def test_ablation_codegen_runs():
    ablation = experiments.ablation_codegen(scale=0.05)
    assert ablation.baseline_seconds > 0 and ablation.variant_seconds > 0


def test_ablation_csv_stride_monotonic():
    sizes = experiments.ablation_csv_stride(scale=0.05, strides=(1, 10))
    assert sizes[1] > sizes[10]
