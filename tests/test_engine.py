"""End-to-end tests of the public engine API over every supported format."""

import pytest

from repro import ProteusEngine
from repro.errors import ExecutionError, ProteusError, SchemaError

from tests.conftest import ITEM_COUNT, expected_items, expected_orders, make_engine


def test_count_and_filter_consistent_across_formats(engine):
    expected = sum(1 for row in expected_items() if row["qty"] < 5)
    for dataset in ("items_csv", "items_json", "items_bin", "items_rowbin"):
        result = engine.query(f"SELECT COUNT(*) FROM {dataset} WHERE qty < 5")
        assert result.scalar() == expected, dataset


def test_aggregates_match_reference(engine):
    rows = expected_items()
    expected_max = max(row["price"] for row in rows if row["id"] < 50)
    expected_sum = sum(row["qty"] for row in rows if row["id"] < 50)
    result = engine.query("SELECT MAX(price), SUM(qty) FROM items_bin WHERE id < 50")
    assert result.rows[0][0] == pytest.approx(expected_max)
    assert result.rows[0][1] == pytest.approx(expected_sum)


def test_projection_rows_and_order_by(engine):
    result = engine.query(
        "SELECT id, price FROM items_csv WHERE id < 5 ORDER BY id DESC LIMIT 3"
    )
    assert result.columns == ["id", "price"]
    assert [row[0] for row in result.rows] == [4, 3, 2]


def test_group_by_with_multiple_aggregates(engine):
    result = engine.query(
        "SELECT qty, COUNT(*), MAX(price) FROM items_json GROUP BY qty ORDER BY qty"
    )
    assert len(result.rows) == 10
    rows = expected_items()
    for qty, count, max_price in result.rows:
        matching = [row for row in rows if row["qty"] == qty]
        assert count == len(matching)
        assert max_price == pytest.approx(max(row["price"] for row in matching))


def test_heterogeneous_join_csv_binary(engine):
    expected = sum(row["price"] for row in expected_items() if row["qty"] < 5)
    result = engine.query(
        "SELECT SUM(i.price) FROM items_bin i JOIN items_csv c ON i.id = c.id "
        "WHERE c.qty < 5"
    )
    assert result.scalar() == pytest.approx(expected)


def test_heterogeneous_join_json_csv(engine):
    expected = sum(1 for row in expected_items() if row["qty"] < 3)
    result = engine.query(
        "SELECT COUNT(*) FROM items_json j JOIN items_csv c ON j.id = c.id "
        "WHERE j.qty < 3"
    )
    assert result.scalar() == expected


def test_unnest_count_and_projection(engine):
    orders = expected_orders()
    expected_count = sum(
        1 for order in orders for line in order["lines"] if line["qty"] > 1
    )
    result = engine.query("for { o <- orders, l <- o.lines, l.qty > 1 } yield count")
    assert result.scalar() == expected_count

    bag = engine.query("for { o <- orders, l <- o.lines } yield bag (o.okey, l.item)")
    expected_rows = sum(len(order["lines"]) for order in orders)
    assert len(bag.rows) == expected_rows


def test_nested_field_group_by(engine):
    result = engine.query(
        "SELECT origin.country, COUNT(*) FROM orders GROUP BY origin.country"
    )
    counts = dict(result.rows)
    orders = expected_orders()
    assert counts["US"] == sum(1 for o in orders if o["origin"]["country"] == "US")
    assert counts["CH"] == sum(1 for o in orders if o["origin"]["country"] == "CH")


def test_aggregate_arithmetic_in_output(engine):
    rows = [r for r in expected_items() if r["id"] < 40]
    expected = sum(r["price"] for r in rows) / len(rows)
    result = engine.query("SELECT SUM(price) / COUNT(*) FROM items_bin WHERE id < 40")
    assert result.scalar() == pytest.approx(expected)


def test_string_predicates(engine):
    expected = sum(1 for row in expected_items() if row["category"] == "cat2")
    for dataset in ("items_csv", "items_json", "items_bin"):
        result = engine.query(f"SELECT COUNT(*) FROM {dataset} WHERE category = 'cat2'")
        assert result.scalar() == expected, dataset


def test_explain_shows_plan_and_generated_code(engine):
    text = engine.explain("SELECT COUNT(*) FROM items_csv WHERE qty < 5")
    assert "physical plan" in text
    assert "Scan(items_csv" in text
    assert "def __query__" in text


def test_query_result_helpers(engine):
    result = engine.query("SELECT id, qty FROM items_bin WHERE id < 3")
    assert len(result) == 3
    assert result.column("qty") == [0, 1, 2]
    assert result.to_dicts()[0] == {"id": 0, "qty": 0}
    with pytest.raises(ExecutionError):
        result.column("missing")
    with pytest.raises(ExecutionError):
        result.scalar()


def test_invalid_queries_raise(engine):
    with pytest.raises(ProteusError):
        engine.query("DELETE FROM items_csv")
    with pytest.raises(SchemaError):
        engine.query("SELECT nonexistent FROM items_csv")
    with pytest.raises(ProteusError):
        engine.query("SELECT COUNT(*) FROM unknown_dataset")


def test_unregister_clears_state(engine):
    engine.query("SELECT COUNT(*) FROM items_csv")
    engine.unregister("items_csv")
    with pytest.raises(ProteusError):
        engine.query("SELECT COUNT(*) FROM items_csv")
    # Unregistering twice is a no-op.
    engine.unregister("items_csv")


def test_analyze_populates_statistics(engine):
    engine.analyze("items_bin")
    stats = engine.catalog.statistics("items_bin")
    assert stats is not None
    assert stats.cardinality == ITEM_COUNT
    assert stats.max_values["id"] == ITEM_COUNT - 1


def test_structural_index_info(engine):
    info = engine.structural_index_info("orders")
    assert info["objects"] == len(expected_orders())
    with pytest.raises(ProteusError):
        engine.structural_index_info("items_bin")


def test_schema_inference_on_registration(paths):
    engine = ProteusEngine()
    engine.register_csv("items", paths["items_csv"])
    engine.register_json("orders", paths["orders_json"])
    assert engine.catalog.get("items").schema.has_field("price")
    assert engine.catalog.get("orders").schema.has_field("okey")
    result = engine.query("SELECT COUNT(*) FROM items WHERE qty < 5")
    assert result.scalar() == sum(1 for r in expected_items() if r["qty"] < 5)


def test_codegen_disabled_falls_back_to_volcano(paths):
    engine = make_engine(paths, enable_codegen=False)
    result = engine.query("SELECT COUNT(*) FROM items_csv WHERE qty < 5")
    assert result.tier != "codegen"
    assert result.scalar() == sum(1 for r in expected_items() if r["qty"] < 5)


def test_profile_counters_populated(engine):
    result = engine.query("SELECT COUNT(*) FROM items_csv WHERE qty < 5")
    assert result.profile is not None
    assert result.profile.rows_scanned >= ITEM_COUNT
    assert result.execution_seconds > 0
