"""Unit tests for statistics-based estimation, the cost model and join ordering."""

import numpy as np
import pytest

from repro.core import types as t
from repro.core.algebra import Join, Scan, Select
from repro.core.expressions import BinaryOp, FieldRef, Literal, UnaryOp, conjunction
from repro.core.optimizer.cost import CostModel
from repro.core.optimizer.join_order import collect_join_region, order_joins
from repro.core.optimizer.statistics import (
    DEFAULT_SELECTIVITY,
    StatisticsManager,
    _normalize_comparison,
)
from repro.core.physical import PhysScan
from repro.plugins.binary_col_plugin import BinaryColumnPlugin
from repro.plugins.csv_plugin import CsvPlugin
from repro.plugins.json_plugin import JsonPlugin
from repro.storage.catalog import Catalog, DataFormat, Dataset, DatasetStatistics
from repro.storage.memory import MemoryManager


def _catalog_with_stats() -> Catalog:
    catalog = Catalog()
    schema = t.make_schema({"key": "int", "value": "float"})
    small = Dataset("small", DataFormat.BINARY_COLUMN, "/tmp/small", schema)
    small.statistics = DatasetStatistics(
        cardinality=100, min_values={"key": 0}, max_values={"key": 100}
    )
    big = Dataset("big", DataFormat.BINARY_COLUMN, "/tmp/big", schema)
    big.statistics = DatasetStatistics(
        cardinality=100_000, min_values={"key": 0}, max_values={"key": 100}
    )
    other = Dataset("other", DataFormat.CSV, "/tmp/other.csv", schema)
    other.statistics = DatasetStatistics(cardinality=10_000)
    for dataset in (small, big, other):
        catalog.register(dataset)
    return catalog


def test_range_selectivity_uses_min_max():
    catalog = _catalog_with_stats()
    statistics = StatisticsManager(catalog)
    binding = {"b": "big"}
    predicate = BinaryOp("<", FieldRef("b", ("key",)), Literal(25))
    assert statistics.predicate_selectivity(predicate, binding) == pytest.approx(0.25, abs=0.05)
    predicate = BinaryOp(">", FieldRef("b", ("key",)), Literal(75))
    assert statistics.predicate_selectivity(predicate, binding) == pytest.approx(0.25, abs=0.05)
    flipped = BinaryOp(">", Literal(25), FieldRef("b", ("key",)))
    assert statistics.predicate_selectivity(flipped, binding) == pytest.approx(0.25, abs=0.05)


def test_selectivity_defaults_and_combinators():
    catalog = _catalog_with_stats()
    statistics = StatisticsManager(catalog)
    binding = {"o": "other"}
    unknown = BinaryOp("<", FieldRef("o", ("value",)), Literal(1.0))
    assert statistics.predicate_selectivity(unknown, binding) == pytest.approx(DEFAULT_SELECTIVITY)
    conjunct = conjunction([unknown, unknown])
    assert statistics.predicate_selectivity(conjunct, binding) == pytest.approx(
        DEFAULT_SELECTIVITY ** 2
    )
    negated = UnaryOp("not", unknown)
    assert statistics.predicate_selectivity(negated, binding) == pytest.approx(
        1.0 - DEFAULT_SELECTIVITY
    )
    assert statistics.predicate_selectivity(None, binding) == 1.0


def test_estimate_rows_for_scan_select_join():
    catalog = _catalog_with_stats()
    statistics = StatisticsManager(catalog)
    binding = {"s": "small", "b": "big"}
    scan_small = Scan("small", "s")
    scan_big = Scan("big", "b")
    assert statistics.estimate_rows(scan_small, binding) == 100
    select = Select(BinaryOp("<", FieldRef("b", ("key",)), Literal(50)), scan_big)
    assert statistics.estimate_rows(select, binding) < 100_000
    join = Join(BinaryOp("=", FieldRef("s", ("key",)), FieldRef("b", ("key",))),
                scan_small, scan_big)
    cross = Join(None, scan_small, scan_big)
    assert statistics.estimate_rows(join, binding) < statistics.estimate_rows(cross, binding)


def test_normalize_comparison_orientation():
    field, literal, op = _normalize_comparison(
        BinaryOp("<", Literal(5), FieldRef("x", ("a",)))
    )
    assert field is not None and op == ">"
    field, literal, op = _normalize_comparison(
        BinaryOp("=", FieldRef("x", ("a",)), FieldRef("y", ("b",)))
    )
    assert field is None


def test_cost_model_ranks_access_paths():
    catalog = _catalog_with_stats()
    statistics = StatisticsManager(catalog)
    memory = MemoryManager()
    plugins = {
        DataFormat.BINARY_COLUMN: BinaryColumnPlugin(memory),
        DataFormat.CSV: CsvPlugin(memory),
        DataFormat.JSON: JsonPlugin(memory),
    }
    model = CostModel(catalog, statistics, plugins)
    binary_scan = PhysScan("small", "s", [("key",)])
    csv_scan = PhysScan("other", "o", [("key",)])
    cached_scan = PhysScan("other", "o", [("key",)], access_path="cache")
    # Same cardinality would make CSV costlier than binary; here CSV also has
    # a larger cardinality, so the ordering is unambiguous.
    assert model.scan_cost(csv_scan) > model.scan_cost(binary_scan)
    assert model.scan_cost(cached_scan) < model.scan_cost(csv_scan)
    # Plan-level costing is monotone in the number of operators.
    from repro.core.physical import PhysReduce, PhysSelect
    from repro.core.expressions import OutputColumn, AggregateCall

    plan = PhysReduce("agg", [OutputColumn("c", AggregateCall("count"))],
                      PhysSelect(BinaryOp("<", FieldRef("o", ("key",)), Literal(1)),
                                 csv_scan))
    assert model.plan_cost(plan, {"o": "other"}) > model.scan_cost(csv_scan)


def test_join_region_collection_and_greedy_order():
    catalog = _catalog_with_stats()
    statistics = StatisticsManager(catalog)
    binding = {"s": "small", "b": "big", "o": "other"}
    scan_s, scan_b, scan_o = Scan("small", "s"), Scan("big", "b"), Scan("other", "o")
    predicate_sb = BinaryOp("=", FieldRef("s", ("key",)), FieldRef("b", ("key",)))
    predicate_bo = BinaryOp("=", FieldRef("b", ("key",)), FieldRef("o", ("key",)))
    tree = Join(predicate_bo, Join(predicate_sb, scan_b, scan_s), scan_o)
    region = collect_join_region(tree)
    assert region is not None
    inputs, predicates = region
    assert len(inputs) == 3 and len(predicates) == 2
    ordered = order_joins(inputs, predicates, statistics, binding)
    # The greedy order starts from the smallest input ("small", 100 rows).
    assert isinstance(ordered, Join)
    leftmost = ordered
    while isinstance(leftmost, Join):
        leftmost = leftmost.left
    assert isinstance(leftmost, Scan) and leftmost.dataset == "small"
    # Every join in the rebuilt tree carries a predicate (no cartesian products).
    for node in ordered.walk():
        if isinstance(node, Join):
            assert node.predicate is not None
