"""Tests of the simulated comparator systems: each engine must produce correct
results (they are honest engines, just architecturally constrained) and must
exhibit the architectural properties the paper attributes to it."""

import numpy as np
import pytest

from repro.baselines import (
    DbmsCLikeEngine,
    DbmsXLikeEngine,
    FederatedEngine,
    MongoLikeEngine,
    MonetLikeEngine,
    PostgresLikeEngine,
)
from repro.errors import UnsupportedFeatureError
from repro.workloads.query_spec import (
    FilterSpec,
    GroupBySpec,
    JoinSpec,
    QuerySpec,
    TableRef,
    UnnestSpec,
    agg,
    col,
    count_star,
    filt,
)

from tests.conftest import expected_items, expected_orders

ROW_ENGINES = [PostgresLikeEngine, DbmsXLikeEngine]
COLUMN_ENGINES = [MonetLikeEngine, DbmsCLikeEngine]
ALL_RELATIONAL = ROW_ENGINES + COLUMN_ENGINES


def _count_spec(threshold=5):
    return QuerySpec(
        "count_q",
        [TableRef("items", "i")],
        [count_star()],
        [filt("i", "qty", "<", threshold)],
    )


def _agg_spec():
    return QuerySpec(
        "agg_q",
        [TableRef("items", "i")],
        [agg("max", "i", "price"), agg("sum", "i", "qty"), count_star()],
        [filt("i", "id", "<", 60)],
    )


def _group_spec():
    return QuerySpec(
        "group_q",
        [TableRef("items", "i")],
        [col("i", "qty"), count_star(), agg("max", "i", "price")],
        [filt("i", "id", "<", 100)],
        group_by=[GroupBySpec("i", ("qty",))],
    )


def _expected_count(threshold=5):
    return sum(1 for row in expected_items() if row["qty"] < threshold)


@pytest.mark.parametrize("engine_cls", ALL_RELATIONAL)
def test_csv_count_and_aggregates(engine_cls, paths):
    engine = engine_cls()
    engine.load_csv("items", paths["items_csv"])
    assert engine.execute(_count_spec())[0][0] == _expected_count()
    rows = [r for r in expected_items() if r["id"] < 60]
    result = engine.execute(_agg_spec())[0]
    assert result[0] == pytest.approx(max(r["price"] for r in rows))
    assert result[1] == pytest.approx(sum(r["qty"] for r in rows))
    assert result[2] == len(rows)


@pytest.mark.parametrize("engine_cls", ALL_RELATIONAL)
def test_group_by(engine_cls, paths):
    engine = engine_cls()
    engine.load_csv("items", paths["items_csv"])
    result = engine.execute(_group_spec())
    reference = {}
    for row in expected_items():
        if row["id"] < 100:
            entry = reference.setdefault(row["qty"], [0, 0.0])
            entry[0] += 1
            entry[1] = max(entry[1], row["price"])
    assert len(result) == len(reference)
    for qty, count, max_price in result:
        assert count == reference[qty][0]
        assert max_price == pytest.approx(reference[qty][1])


@pytest.mark.parametrize("engine_cls", ALL_RELATIONAL)
def test_binary_join(engine_cls, paths):
    engine = engine_cls()
    table = {
        "id": np.asarray([row["id"] for row in expected_items()]),
        "qty": np.asarray([row["qty"] for row in expected_items()]),
        "price": np.asarray([row["price"] for row in expected_items()]),
    }
    engine.load_columns("items_bin", table)
    engine.load_csv("items", paths["items_csv"])
    spec = QuerySpec(
        "join_q",
        [TableRef("items_bin", "b"), TableRef("items", "i")],
        [agg("sum", "b", "price")],
        [filt("i", "qty", "<", 5)],
        joins=[JoinSpec("b", ("id",), "i", ("id",))],
    )
    expected = sum(row["price"] for row in expected_items() if row["qty"] < 5)
    assert engine.execute(spec)[0][0] == pytest.approx(expected)


@pytest.mark.parametrize("engine_cls", ROW_ENGINES + [MongoLikeEngine])
def test_json_queries_row_engines(engine_cls, paths):
    engine = engine_cls()
    engine.load_json("orders", paths["orders_json"])
    spec = QuerySpec(
        "json_count",
        [TableRef("orders", "o")],
        [count_star()],
        [filt("o", ("origin", "country"), "=", "CH")],
    )
    expected = sum(1 for o in expected_orders() if o["origin"]["country"] == "CH")
    assert engine.execute(spec)[0][0] == expected


@pytest.mark.parametrize("engine_cls", ROW_ENGINES + [MongoLikeEngine])
def test_json_unnest(engine_cls, paths):
    engine = engine_cls()
    engine.load_json("orders", paths["orders_json"])
    spec = QuerySpec(
        "json_unnest",
        [TableRef("orders", "o")],
        [count_star()],
        [filt("u", "qty", ">", 1)],
        unnest=UnnestSpec("o", ("lines",), "u"),
    )
    expected = sum(
        1 for order in expected_orders() for line in order["lines"] if line["qty"] > 1
    )
    assert engine.execute(spec)[0][0] == expected


def test_mongo_rejects_non_json(paths):
    engine = MongoLikeEngine()
    with pytest.raises(UnsupportedFeatureError):
        engine.load_csv("items", paths["items_csv"])
    with pytest.raises(UnsupportedFeatureError):
        engine.load_columns("items", {"a": [1]})


def test_dbms_c_sorts_and_skips(paths):
    engine = DbmsCLikeEngine()
    engine.load_csv("items", paths["items_csv"])
    # The first numeric column (id) becomes the sort key.
    positions = engine.filtered_positions("items", [FilterSpec("i", ("id",), "<", 10)])
    assert len(positions) == 10
    assert engine._sort_keys["items"] == "id"


def test_dbms_c_dictionary_encodes_strings(paths):
    engine = DbmsCLikeEngine()
    engine.load_csv("items", paths["items_csv"])
    assert "category" in engine._dictionaries["items"]
    decoded = engine.column("items", ("category",))
    assert set(decoded) == {"cat0", "cat1", "cat2", "cat3"}


def test_postgres_nested_loop_on_document_joins():
    engine = PostgresLikeEngine()
    assert engine.hash_join_on_document_fields is False


def test_dbms_x_reparses_json_per_access(paths):
    engine = DbmsXLikeEngine()
    engine.load_json("orders", paths["orders_json"])
    rows = list(engine.table_rows("orders"))
    assert isinstance(rows[0], str)  # character-based encoding
    assert engine.row_value("orders", rows[3], ("origin", "zone")) == 0


def test_load_reports_track_time_and_rows(paths):
    engine = PostgresLikeEngine()
    report = engine.load_csv("items", paths["items_csv"])
    assert report.rows == len(expected_items())
    assert engine.total_load_seconds >= report.seconds > 0


def test_federated_routes_and_mediates(paths):
    federated = FederatedEngine()
    federated.load_csv("items", paths["items_csv"])
    federated.load_json("orders", paths["orders_json"])
    # Single-system query goes straight to the owning engine.
    assert federated.execute(_count_spec())[0][0] == _expected_count()
    assert federated.middleware_seconds == 0.0
    # Cross-system query goes through the middleware.
    spec = QuerySpec(
        "cross",
        [TableRef("items", "i"), TableRef("orders", "o")],
        [count_star(), agg("sum", "o", "total")],
        [filt("i", "qty", "<", 5)],
        joins=[JoinSpec("i", ("id",), "o", ("okey",))],
    )
    items = {row["id"]: row for row in expected_items()}
    orders = expected_orders()
    expected_pairs = [
        (items[o["okey"]], o) for o in orders
        if o["okey"] in items and items[o["okey"]]["qty"] < 5
    ]
    result = federated.execute(spec)[0]
    assert result[0] == len(expected_pairs)
    assert result[1] == pytest.approx(sum(o["total"] for _, o in expected_pairs))
    assert federated.middleware_seconds > 0.0
