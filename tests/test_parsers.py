"""Unit tests for the lexer, SQL frontend and comprehension frontend."""

import pytest

from repro.core.calculus import DatasetSource, Filter, Generator, PathSource
from repro.core.comprehension_parser import parse_comprehension
from repro.core.expressions import AggregateCall, BinaryOp, FieldRef, Literal
from repro.core.lexer import IDENT, NUMBER, STRING, SYMBOL, TokenStream, tokenize
from repro.core.sql_parser import UNRESOLVED, parse_sql
from repro.errors import ParseError


# -- lexer -------------------------------------------------------------------


def test_tokenize_basic():
    tokens = tokenize("SELECT a, b FROM t WHERE x <= 3.5 AND s = 'hi'")
    kinds = [token.kind for token in tokens]
    assert kinds.count(STRING) == 1
    assert kinds.count(NUMBER) == 1
    assert any(token.kind == SYMBOL and token.value == "<=" for token in tokens)


def test_tokenize_arrow_and_braces():
    tokens = tokenize("for { x <- Data }")
    values = [token.value for token in tokens if token.kind == SYMBOL]
    assert "<-" in values and "{" in values and "}" in values


def test_tokenize_unterminated_string():
    with pytest.raises(ParseError):
        tokenize("SELECT 'oops")


def test_token_stream_expect_error_mentions_position():
    stream = TokenStream("select +")
    stream.expect(IDENT, "select")
    with pytest.raises(ParseError):
        stream.expect(IDENT, "from")


def test_path_vs_decimal_disambiguation():
    tokens = tokenize("a.b 1.5")
    # a.b is IDENT SYMBOL IDENT, 1.5 is a single number.
    assert [t.kind for t in tokens[:3]] == [IDENT, SYMBOL, IDENT]
    assert tokens[3].kind == NUMBER and tokens[3].value == "1.5"


# -- SQL parser ---------------------------------------------------------------


def test_parse_simple_aggregate():
    comp = parse_sql("SELECT COUNT(*) FROM lineitem WHERE l_orderkey < 100")
    assert comp.datasets() == ["lineitem"]
    assert len(comp.head) == 1
    assert isinstance(comp.head[0].expression, AggregateCall)
    filters = comp.filters()
    assert len(filters) == 1
    assert isinstance(filters[0].predicate, BinaryOp)


def test_parse_aliases_and_projection_names():
    comp = parse_sql("SELECT l.qty AS quantity, price FROM items l")
    assert comp.generators()[0].var == "l"
    assert [c.name for c in comp.head] == ["quantity", "price"]
    # References are unresolved until binding.
    assert comp.head[0].expression.binding == UNRESOLVED


def test_parse_join_on():
    comp = parse_sql(
        "SELECT COUNT(*) FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
        "WHERE l.l_orderkey < 10"
    )
    generators = comp.generators()
    assert [g.var for g in generators] == ["o", "l"]
    assert len(comp.filters()) == 2  # join predicate + where predicate


def test_parse_group_order_limit():
    comp = parse_sql(
        "SELECT qty, COUNT(*) FROM items GROUP BY qty ORDER BY qty DESC LIMIT 3"
    )
    assert len(comp.group_by) == 1
    assert comp.order_by == [("qty", False)]
    assert comp.limit == 3


def test_parse_arithmetic_and_parentheses():
    comp = parse_sql("SELECT SUM((price + 1) * 2) FROM items WHERE NOT qty = 3")
    aggregate = comp.head[0].expression
    assert isinstance(aggregate, AggregateCall)
    assert aggregate.func == "sum"


def test_parse_select_star():
    comp = parse_sql("SELECT * FROM items")
    assert comp.head[0].name == "*"


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_sql("SELECT FROM items")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM items WHERE")
    with pytest.raises(ParseError):
        parse_sql("SELECT a FROM items garbage garbage garbage")


def test_count_star_only_for_count():
    with pytest.raises(ParseError):
        parse_sql("SELECT MAX(*) FROM items")


# -- comprehension parser --------------------------------------------------------


def test_parse_comprehension_example_3_1():
    comp = parse_comprehension(
        "for { s1 <- Sailor, c <- s1.children, s2 <- Ship, p <- s2.personnel, "
        "s1.id = p.id, c.age > 18 } yield bag (s1.id, s2.name, c.name)"
    )
    generators = comp.generators()
    assert [g.var for g in generators] == ["s1", "c", "s2", "p"]
    assert isinstance(generators[0].source, DatasetSource)
    assert isinstance(generators[1].source, PathSource)
    assert generators[1].source.path == ("children",)
    assert len(comp.filters()) == 2
    assert [c.name for c in comp.head] == ["id", "name", "name_1"]


def test_parse_comprehension_aggregate_monoids():
    comp = parse_comprehension("for { l <- lineitem, l.qty > 5 } yield sum (l.qty)")
    assert isinstance(comp.head[0].expression, AggregateCall)
    count = parse_comprehension("for { l <- lineitem } yield count")
    assert count.head[0].expression.func == "count"


def test_parse_comprehension_named_outputs():
    comp = parse_comprehension(
        "for { o <- orders } yield bag (o.okey as key, o.total as amount)"
    )
    assert [c.name for c in comp.head] == ["key", "amount"]


def test_parse_comprehension_unbound_variable_rejected():
    with pytest.raises(ParseError):
        parse_comprehension("for { o <- orders } yield bag (x.okey)")
    with pytest.raises(ParseError):
        parse_comprehension("for { l <- x.lines } yield count")


def test_parse_comprehension_scoping_order():
    # A filter may only reference previously bound generators.
    with pytest.raises(ParseError):
        parse_comprehension(
            "for { o <- orders, l.qty > 2, l <- o.lines } yield count"
        )
