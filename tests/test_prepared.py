"""Tests for Engine API v2: prepared parameterized queries + lazy ResultSet.

Covers:

* parsing of ``?`` positional and ``:name`` named placeholders in both
  frontends (including ``LIMIT ?``),
* prepared executions matching literal queries on all four execution tiers,
  with exactly one code generation across different parameter values,
* the lazy columnar :class:`ResultSet` (``column_array`` with no rows
  round-trip, incremental ``fetch_batches``, lazy ``rows``),
* parameter-binding errors, ``executemany``, the parameterized join
  build-side cache,
* invalidation of outstanding :class:`PreparedQuery` objects by
  re-registration / unregistration,
* the NULLS LAST ordering fix and the ``used_codegen`` deprecation,
* ``explain()``'s tier-cascade report.
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

from repro import ProteusEngine, QueryResult
from repro.core import types as t
from repro.core.comprehension_parser import parse_comprehension
from repro.core.engine import ResultSet, _apply_order_and_limit_columns
from repro.core.expressions import Parameter
from repro.core.sql_parser import parse_sql
from repro.errors import ExecutionError, ProteusError
from tests.conftest import ITEM_COUNT, expected_items, make_engine


# -- parsing -----------------------------------------------------------------


def test_sql_positional_and_named_parameters():
    comp = parse_sql("SELECT id FROM items WHERE qty < ? AND price > :p AND id != ?")
    assert comp.parameters() == [0, "p", 1]


def test_comprehension_parameters():
    comp = parse_comprehension(
        "for { x <- Data, x.qty < ?, x.price > :lo } yield sum x.price"
    )
    assert comp.parameters() == [0, "lo"]


def test_limit_parameter():
    comp = parse_sql("SELECT id FROM items ORDER BY id LIMIT :n")
    assert isinstance(comp.limit, Parameter)
    assert comp.parameters() == ["n"]


def test_parameter_fingerprint_abstracts_value():
    a = parse_sql("SELECT id FROM items WHERE qty < ?")
    b = parse_sql("SELECT id FROM items WHERE qty < ?")
    c = parse_sql("SELECT id FROM items WHERE qty < 5")
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


# -- differential correctness across tiers -----------------------------------


TIER_CONFIGS = [
    ("codegen", {}),
    (
        "vectorized-parallel",
        {
            "enable_codegen": False,
            "parallel_workers": 4,
            "vectorized_batch_size": 8,
        },
    ),
    ("vectorized", {"enable_codegen": False}),
    ("volcano", {"enable_codegen": False, "enable_vectorized": False}),
]


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_prepared_matches_literal_on_every_tier(paths, tier, config):
    engine = make_engine(paths, enable_caching=False, **config)
    prepared = engine.prepare(
        "SELECT COUNT(*) AS n, SUM(price) AS total FROM items_csv WHERE qty < ?"
    )
    for threshold in (5, 3, 8):
        bound = prepared.execute(threshold)
        literal = engine.query(
            f"SELECT COUNT(*) AS n, SUM(price) AS total FROM items_csv "
            f"WHERE qty < {threshold}"
        )
        assert bound.rows == literal.rows, (tier, threshold)
        assert bound.tier == tier


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_prepared_group_by_with_parameter_in_head(paths, tier, config):
    engine = make_engine(paths, enable_caching=False, **config)
    prepared = engine.prepare(
        "SELECT qty, SUM(price) * :rate AS scaled FROM items_json "
        "GROUP BY qty ORDER BY qty"
    )
    for rate in (1.0, 2.5):
        result = prepared.execute(rate=rate)
        rows = expected_items()
        assert len(result.rows) == 10
        for qty, scaled in result.rows:
            expected = sum(r["price"] for r in rows if r["qty"] == qty) * rate
            assert scaled == pytest.approx(expected), (tier, rate)


def test_prepared_join_with_parameterized_build_side(paths):
    # The build side of the join is filtered by the parameter; categories all
    # have the same cardinality, so a stale cached build table (keyed without
    # the bound value) would go unnoticed by size checks and return the
    # previous category's rows.  Caching is ON to exercise that path.
    engine = make_engine(paths, enable_caching=True)
    prepared = engine.prepare(
        "SELECT SUM(i.id) FROM items_bin i JOIN items_csv c ON i.id = c.id "
        "WHERE i.category = :cat"
    )
    for category in ("cat1", "cat2", "cat1"):
        expected = sum(
            r["id"] for r in expected_items() if r["category"] == category
        )
        assert prepared.execute(cat=category).scalar() == expected, category


def test_parameterized_limit_execution(engine):
    prepared = engine.prepare(
        "SELECT id FROM items_bin WHERE id < 20 ORDER BY id DESC LIMIT ?"
    )
    assert [row[0] for row in prepared.execute(3)] == [19, 18, 17]
    assert len(prepared.execute(7)) == 7


def test_limit_parameter_rejects_non_integers(engine):
    prepared = engine.prepare("SELECT id FROM items_bin ORDER BY id LIMIT :n")
    with pytest.raises(ProteusError, match="LIMIT parameter"):
        prepared.execute(n=None)
    with pytest.raises(ProteusError, match="LIMIT parameter"):
        prepared.execute(n="abc")
    with pytest.raises(ProteusError, match="LIMIT parameter"):
        prepared.execute(n=2.5)
    assert len(prepared.execute(n=3.0)) == 3  # integral floats are fine
    assert len(prepared.execute(n=np.int64(4))) == 4


def test_column_array_is_read_only_view(tmp_path):
    # On the codegen tier the buffer may alias the adaptive cache; a
    # writable view would let user code corrupt later query results.
    path = tmp_path / "vals.csv"
    path.write_text("k,v\n" + "".join(f"{i},{i * 1.5}\n" for i in range(20)))
    engine = ProteusEngine(enable_caching=True)
    engine.register_csv("vals", str(path), schema=t.make_schema({"k": "int", "v": "float"}))
    engine.query("SELECT v FROM vals")  # populates the cache
    result = engine.query("SELECT v FROM vals")  # served from the cache
    arr = result.column_array("v")
    with pytest.raises(ValueError):
        arr[0] = 9999.0
    assert engine.query("SELECT v FROM vals").column("v")[0] == 0.0


def test_v1_constructor_honors_used_codegen():
    legacy = QueryResult(columns=["a"], rows=[(1,)], used_codegen=False)
    with pytest.warns(DeprecationWarning):
        assert legacy.used_codegen is False
    assert legacy.rows == [(1,)]


def test_unnest_with_parameter(engine):
    prepared = engine.prepare(
        "for { o <- orders, l <- o.lines, l.qty > ? } yield count"
    )
    from tests.conftest import expected_orders

    for threshold in (1, 2):
        expected = sum(
            1
            for order in expected_orders()
            for line in order["lines"]
            if line["qty"] > threshold
        )
        assert prepared.execute(threshold).scalar() == expected


# -- compile-once acceptance ---------------------------------------------------


def test_one_codegen_across_parameter_values(paths):
    engine = make_engine(paths, enable_caching=False)
    prepared = engine.prepare("SELECT COUNT(*) FROM items_bin WHERE qty < ?")
    assert len(engine._compiled) == 0  # codegen is lazy, not at prepare
    first = prepared.execute(5)
    assert first.tier == "codegen"
    assert len(engine._compiled) == 1
    assert first.profile.compiled_from_cache is False
    second = prepared.execute(3)
    assert len(engine._compiled) == 1  # no second code generation
    assert second.profile.compiled_from_cache is True
    assert first.scalar() != second.scalar()


def test_executemany_reuses_one_program(paths):
    engine = make_engine(paths, enable_caching=False)
    prepared = engine.prepare("SELECT COUNT(*) FROM items_bin WHERE qty < ?")
    results = prepared.executemany([(2,), (4,), {0: 6}, 8])
    expected = [
        sum(1 for r in expected_items() if r["qty"] < value) for value in (2, 4, 6, 8)
    ]
    assert [r.scalar() for r in results] == expected
    assert len(engine._compiled) == 1


def test_query_sugar_accepts_parameters(engine):
    expected = sum(1 for r in expected_items() if r["qty"] < 4)
    assert engine.query(
        "SELECT COUNT(*) FROM items_csv WHERE qty < ?", 4
    ).scalar() == expected
    assert engine.query(
        "SELECT COUNT(*) FROM items_csv WHERE qty < :q", q=4
    ).scalar() == expected


# -- parameter binding errors --------------------------------------------------


def test_binding_errors(engine):
    prepared = engine.prepare(
        "SELECT COUNT(*) FROM items_csv WHERE qty < ? AND price > :lo"
    )
    assert prepared.parameters == [0, "lo"]
    with pytest.raises(ProteusError, match="missing value"):
        prepared.execute(5)
    with pytest.raises(ProteusError, match="unknown named parameter"):
        prepared.execute(5, hi=3)
    with pytest.raises(ProteusError, match="positional"):
        prepared.execute(5, 6, lo=1.0)
    # Unbound parameters also fail through the query() sugar.
    with pytest.raises(ProteusError, match="missing value"):
        engine.query("SELECT COUNT(*) FROM items_csv WHERE qty < ?")


# -- lazy columnar ResultSet ---------------------------------------------------


def test_column_array_without_rows_round_trip(engine):
    result = engine.query("SELECT id, price FROM items_bin WHERE id < 50")
    prices = result.column_array("price")
    assert isinstance(prices, np.ndarray)
    assert prices.dtype == np.float64
    assert result._rows is None  # no tuples were materialized
    assert prices.tolist() == [r["price"] for r in expected_items() if r["id"] < 50]
    # Row access still works afterwards, lazily.
    assert len(result.rows) == 50
    with pytest.raises(ExecutionError):
        result.column_array("missing")


def test_fetch_batches_is_incremental(engine):
    result = engine.query("SELECT id FROM items_bin")
    batches = result.fetch_batches(32)
    first = next(batches)
    assert [row[0] for row in first] == list(range(32))
    assert result._rows is None  # prefix consumption does not materialize all
    sizes = [len(first)] + [len(batch) for batch in batches]
    assert sizes == [32, 32, 32, 24]
    with pytest.raises(ExecutionError):
        next(result.fetch_batches(0))


def test_result_set_v1_surface(engine):
    result = engine.query("SELECT id, qty FROM items_bin WHERE id < 3")
    assert isinstance(result, QueryResult)  # deprecated alias of ResultSet
    assert isinstance(result, ResultSet)
    assert len(result) == 3
    assert result.column("qty") == [0, 1, 2]
    assert result.to_dicts()[0] == {"id": 0, "qty": 0}
    assert list(iter(result)) == result.rows


def test_used_codegen_deprecation(engine):
    result = engine.query("SELECT COUNT(*) FROM items_bin")
    with pytest.warns(DeprecationWarning, match="used_codegen"):
        assert result.used_codegen is True
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert result.tier == "codegen"  # the replacement does not warn


# -- NULLS LAST ordering fix ---------------------------------------------------


def test_order_by_descending_nulls_last_unit():
    data = {"v": [3.0, None, 1.0, None, 2.0]}
    length, ordered = _apply_order_and_limit_columns(
        ["v"], 5, dict(data), [("v", False)], None
    )
    assert ordered["v"] == [3.0, 2.0, 1.0, None, None]
    length, ordered = _apply_order_and_limit_columns(
        ["v"], 5, dict(data), [("v", True)], None
    )
    assert ordered["v"] == [1.0, 2.0, 3.0, None, None]


@pytest.mark.parametrize("tier,config", TIER_CONFIGS)
def test_order_by_nulls_last_both_directions(tmp_path, tier, config):
    path = tmp_path / "with_nulls.json"
    with open(path, "w", encoding="utf-8") as handle:
        for record in (
            {"id": 1, "v": 3.0},
            {"id": 2},
            {"id": 3, "v": 1.0},
            {"id": 4},
            {"id": 5, "v": 2.0},
        ):
            handle.write(json.dumps(record) + "\n")
    engine = ProteusEngine(enable_caching=False, **config)
    engine.register_json("x", str(path), schema=t.make_schema({"id": "int", "v": "float"}))
    descending = engine.query("SELECT id, v FROM x ORDER BY v DESC")
    assert [row[1] for row in descending.rows] == [3.0, 2.0, 1.0, None, None]
    ascending = engine.query("SELECT id, v FROM x ORDER BY v ASC")
    assert [row[1] for row in ascending.rows] == [1.0, 2.0, 3.0, None, None]


# -- invalidation of outstanding prepared queries ------------------------------


def test_reregistration_invalidates_prepared_queries(tmp_path):
    path_a = tmp_path / "a.csv"
    path_a.write_text("k,v\n" + "".join(f"{i},{i}\n" for i in range(10)))
    path_b = tmp_path / "b.csv"
    path_b.write_text("k,v\n" + "".join(f"{i},{i * 100}\n" for i in range(10)))
    schema = t.make_schema({"k": "int", "v": "int"})

    engine = ProteusEngine(enable_caching=True)
    engine.register_csv("swap", str(path_a), schema=schema)
    prepared = engine.prepare("SELECT SUM(v) FROM swap WHERE k < ?")
    assert prepared.execute(10).scalar() == sum(range(10))
    # Re-registering the same name must invalidate the outstanding prepared
    # query (its plan and the compiled program bake the old Dataset in); the
    # next execution transparently re-prepares against the new file.
    engine.register_csv("swap", str(path_b), schema=schema)
    assert prepared.execute(10).scalar() == sum(range(10)) * 100
    # Different parameter values keep working after the re-prepare.
    assert prepared.execute(5).scalar() == sum(range(5)) * 100


def test_unregister_fails_outstanding_prepared_queries(tmp_path):
    path = tmp_path / "gone.csv"
    path.write_text("k\n1\n2\n")
    engine = ProteusEngine(enable_caching=False)
    engine.register_csv("gone", str(path), schema=t.make_schema({"k": "int"}))
    prepared = engine.prepare("SELECT COUNT(*) FROM gone WHERE k < ?")
    assert prepared.execute(10).scalar() == 2
    engine.unregister("gone")
    with pytest.raises(ProteusError):
        prepared.execute(10)


# -- explain tier cascade ------------------------------------------------------


def test_explain_reports_tier_cascade(engine):
    text = engine.explain("SELECT COUNT(*) FROM items_bin WHERE qty < ?")
    assert "== tier cascade ==" in text
    assert "codegen: serves this plan  <- selected" in text
    assert "vectorized-parallel: declines" in text  # serial configuration
    assert "volcano: would serve" in text


def test_explain_cascade_for_volcano_only_shape(engine):
    # A group-by output column that is neither a group key nor an aggregate
    # is only served by the Volcano interpreter.
    text = engine.explain(
        "SELECT qty + 1 AS q1, COUNT(*) FROM items_bin GROUP BY qty"
    )
    assert "codegen: declines" in text
    assert "vectorized: declines" in text
    assert "volcano: serves this plan  <- selected" in text


def test_explain_cascade_reports_unsplittable_parallel_scan(paths):
    engine = make_engine(
        paths, enable_codegen=False, parallel_workers=4, enable_caching=False
    )
    text = engine.explain("SELECT COUNT(*) FROM items_rowbin WHERE qty < 5")
    assert "vectorized-parallel: declines" in text
    assert "not range-splittable" in text
    assert "vectorized: serves this plan  <- selected" in text
