#!/usr/bin/env python3
"""Quickstart: query raw CSV, JSON and binary data through one engine.

This example generates a small heterogeneous data lake (a CSV file, a JSON
object stream and a binary column table), registers the three files with a
:class:`repro.ProteusEngine` — no loading step — and shows the v2 query API:

* ``engine.prepare(text)`` parses, binds and plans a query with ``?`` /
  ``:name`` placeholders **once**; ``pq.execute(value)`` binds constants and
  reuses the single specialized program across calls,
* results are lazy columnar ``ResultSet`` objects — ``column_array`` hands
  out NumPy buffers with no rows round-trip, ``fetch_batches`` streams rows
  in chunks, and ``rows`` materializes tuples only when first touched,
* ``engine.query(text, *params)`` remains as sugar for
  ``prepare(text).execute(*params)``.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro import ProteusEngine
from repro.core import types as t
from repro.errors import ProteusError
from repro.storage.binary_format import write_column_table


def build_data_lake(directory: str) -> dict[str, str]:
    """Materialize a small heterogeneous data lake under ``directory``."""
    rng = np.random.RandomState(0)

    # 1. A CSV file of product sales (what an export job might drop).
    sales_csv = os.path.join(directory, "sales.csv")
    with open(sales_csv, "w", encoding="utf-8") as handle:
        handle.write("sale_id,product_id,quantity,amount\n")
        for sale_id in range(500):
            product_id = int(rng.randint(0, 50))
            quantity = int(rng.randint(1, 10))
            handle.write(f"{sale_id},{product_id},{quantity},{quantity * 19.99:.2f}\n")

    # 2. A JSON object stream of products with a nested list of reviews.
    products_json = os.path.join(directory, "products.json")
    with open(products_json, "w", encoding="utf-8") as handle:
        for product_id in range(50):
            record = {
                "product_id": product_id,
                "name": f"product-{product_id}",
                "price": round(float(rng.uniform(5, 120)), 2),
                "vendor": {"name": f"vendor-{product_id % 7}", "country": "CH"},
                "reviews": [
                    {"stars": int(rng.randint(1, 6)), "helpful": int(rng.randint(0, 40))}
                    for _ in range(int(rng.randint(0, 5)))
                ],
            }
            handle.write(json.dumps(record) + "\n")

    # 3. A binary column table of warehouse stock (a pre-existing DBMS table).
    stock_dir = os.path.join(directory, "stock_columns")
    schema = t.make_schema({"product_id": "int", "stock": "int", "reorder_level": "int"})
    write_column_table(
        stock_dir,
        {
            "product_id": np.arange(50, dtype=np.int64),
            "stock": rng.randint(0, 500, size=50).astype(np.int64),
            "reorder_level": rng.randint(10, 60, size=50).astype(np.int64),
        },
        schema,
    )
    return {"sales": sales_csv, "products": products_json, "stock": stock_dir}


def main() -> None:
    directory = tempfile.mkdtemp(prefix="proteus_quickstart_")
    paths = build_data_lake(directory)

    engine = ProteusEngine(enable_caching=True)
    engine.register_csv("sales", paths["sales"])          # raw CSV, no load step
    engine.register_json("products", paths["products"])   # raw JSON, no load step
    engine.register_binary_columns("stock", paths["stock"])

    print("== Prepared statements: specialize once, execute many times ==")
    # The engine specializes one program for the query *shape*; each execute
    # binds new constants without re-parsing, re-planning or re-compiling.
    top_sellers = engine.prepare(
        "SELECT product_id, COUNT(*) AS sales, SUM(amount) AS revenue "
        "FROM sales WHERE quantity >= :min_qty "
        "GROUP BY product_id ORDER BY revenue DESC LIMIT :how_many"
    )
    for min_qty in (1, 8):
        result = top_sellers.execute(min_qty=min_qty, how_many=3)
        print(f"  top sellers with quantity >= {min_qty} (tier={result.tier}):")
        for row in result:
            print(f"    product {row[0]:>3}  sales={row[1]:>3}  revenue={row[2]:>9.2f}")
    print(f"  compiled programs: {len(engine._compiled)} "
          f"(one shape, two parameter bindings)")

    print("\n== Positional parameters and executemany ==")
    restock = engine.prepare(
        "SELECT COUNT(*) FROM sales s JOIN stock k ON s.product_id = k.product_id "
        "WHERE k.stock < ?"
    )
    for threshold, result in zip((50, 150), restock.executemany([(50,), (150,)])):
        print(f"  sales of products with stock < {threshold:>3}: {result.scalar()}")

    print("\n== Lazy columnar results ==")
    result = engine.query("SELECT product_id, quantity, amount FROM sales")
    amounts = result.column_array("amount")   # NumPy buffer, no row tuples built
    print(f"  column_array('amount'): {type(amounts).__name__}[{amounts.dtype}], "
          f"mean={amounts.mean():.2f}")
    first_batch = next(result.fetch_batches(5))  # stream rows in bounded chunks
    print(f"  first fetch_batches(5) chunk: {len(first_batch)} rows")

    print("\n== SQL over JSON with a nested field ==")
    result = engine.query(
        "SELECT vendor.name, COUNT(*) FROM products GROUP BY vendor.name"
    )
    for vendor, count in sorted(result.rows):
        print(f"  {vendor:<10} {count} products")

    print("\n== Comprehension syntax (parameterized) over nested reviews ==")
    good_reviews = engine.prepare(
        "for { p <- products, r <- p.reviews, r.stars >= :stars } yield count"
    )
    for stars in (3, 5):
        print(f"  reviews with {stars}+ stars: {good_reviews.execute(stars=stars).scalar()}")

    print("\n== Batch-native unnest: nested JSON stays on the fast tiers ==")
    # Flattening a nested collection is an offset-vector operation over whole
    # batches (the plug-in returns per-parent repeat counts; parent columns
    # broadcast with one np.repeat) — so unnest queries run on the vectorized
    # tiers, not the tuple-at-a-time interpreter.  ``outer`` keeps products
    # with no reviews, binding the element to null (one row per such parent).
    unnest_engine = ProteusEngine(enable_codegen=False)  # showcase the batch tier
    unnest_engine.register_json("products", paths["products"])
    inner = unnest_engine.query(
        "for { p <- products, r <- p.reviews } yield bag (p.product_id, r.stars)"
    )
    outer = unnest_engine.query(
        "for { p <- products, r <- outer p.reviews } yield bag (p.product_id, r.stars)"
    )
    reviewless = sum(1 for _, stars in outer.rows if stars is None)
    print(f"  inner unnest: {len(inner)} review rows   tier={inner.tier} "
          f"(flattened {inner.profile.unnest_output_rows} elements batch-natively)")
    print(f"  outer unnest: {len(outer)} rows, {reviewless} products without "
          f"reviews kept as null rows   tier={outer.tier}")

    print("\n== Heterogeneous three-format join (CSV ⋈ JSON ⋈ binary) ==")
    result = engine.query(
        "SELECT SUM(s.amount) FROM sales s "
        "JOIN products p ON s.product_id = p.product_id "
        "JOIN stock k ON s.product_id = k.product_id "
        "WHERE p.price > ? AND k.stock > ?",
        50, 100,  # positional parameters through the query() sugar
    )
    print(f"  revenue from well-stocked premium products: {result.scalar():.2f}")

    print("\n== explain(): plan, generated code and the tier-cascade decision ==")
    explanation = engine.explain(
        "SELECT COUNT(*) FROM sales s JOIN stock k ON s.product_id = k.product_id "
        "WHERE k.stock < ?"
    )
    # Print the plan and cascade; elide the generated program for brevity.
    for section in explanation.split("\n\n"):
        if not section.startswith("== generated code"):
            print(section)

    print(f"\nAdaptive caches built as a side effect: {len(engine.cache_entries())} entries")
    for entry in engine.cache_entries()[:5]:
        print(f"  [{entry.kind}] {entry.description} ({entry.size_bytes} bytes)")

    print("\n== Morsel-driven parallel execution ==")
    # parallel_workers activates the vectorized-parallel tier: the scan is
    # split into batch-aligned morsels executed by a work-stealing worker
    # pool.  Tune it to the physical core count for scan-heavy workloads;
    # inputs smaller than ~2 morsels (128Ki rows by default) transparently
    # stay on the serial tier, so it is safe to leave enabled.  This demo
    # forces small morsels via a small batch size so the tiny dataset fans
    # out; real deployments keep the default batch size.
    parallel = ProteusEngine(
        enable_codegen=False,          # showcase the batch tiers
        parallel_workers=max(os.cpu_count() or 1, 2),
        vectorized_batch_size=64,
    )
    parallel.register_csv("sales", paths["sales"])
    by_product = parallel.prepare(
        "SELECT product_id, COUNT(*), SUM(amount) FROM sales "
        "WHERE quantity >= ? GROUP BY product_id ORDER BY product_id LIMIT 3"
    )
    result = by_product.execute(1)
    profile = result.profile
    print(f"  tier={result.tier} workers={profile.parallel_workers} "
          f"morsels={profile.morsels_dispatched} stolen={profile.morsels_stolen}")
    for row in result:
        print(f"  product {row[0]:>3}  sales={row[1]:>3}  revenue={row[2]:>9.2f}")

    print("\n== Columnar ORDER BY: sort strategies ==")
    # ORDER BY / LIMIT live in the physical plan (a Sort root — see
    # explain()) and run through dtype-specialized kernels instead of boxing
    # rows; profile.sort_strategy records which kernel served the query:
    #   lexsort         one stable NumPy permutation over key transforms,
    #   topk            bounded streaming top-K when a LIMIT is present —
    #                   only K rows survive each batch,
    #   parallel-merge  per-morsel sorted runs + a deterministic k-way merge
    #                   on the parallel tier,
    #   object-fallback boxed comparator for mixed-type object columns.
    full = engine.query("SELECT sale_id, amount FROM sales ORDER BY amount DESC")
    top = engine.query("SELECT sale_id, amount FROM sales ORDER BY amount DESC LIMIT 3")
    print(f"  full sort:  strategy={full.profile.sort_strategy} "
          f"rows_sorted={full.profile.rows_sorted}")
    print(f"  with LIMIT: strategy={top.profile.sort_strategy} "
          f"(top-{len(top)} without a full sort)")
    explanation = engine.explain(
        "SELECT sale_id, amount FROM sales ORDER BY amount DESC LIMIT 3"
    )
    for line in explanation.splitlines():
        if line.startswith("Sort(") or line.startswith("topk:"):
            print(f"  explain: {line}")

    print("\n== Static analysis: prepare-time schema, verdicts and typed errors ==")
    # prepare() runs a static analyzer over the physical plan.  It infers the
    # output schema (dtype + nullability), computes one verdict per execution
    # tier — the first serving verdict is the tier the cascade will pick, and
    # every decline carries a machine-readable TIER0xx code — and rejects
    # structurally broken queries with TYP0xx-coded errors *before* any data
    # is touched.  The same verdicts appear in explain()'s tier-cascade
    # section and, after execution, in profile.tier_decline_reasons (where
    # runtime demotions are recorded under TIER009).
    pq = engine.prepare(
        "SELECT vendor.country AS country, COUNT(*) AS n "
        "FROM products GROUP BY vendor.country"
    )
    analysis = pq.analysis
    print(f"  predicted tier: {analysis.predicted_tier}")
    for info in analysis.columns:
        # Nested record fields are conservatively nullable: only statistics
        # from engine.analyze() can prove a column never misses.
        print(f"    {info.render()}")
    for verdict in analysis.verdicts:
        if not verdict.serves:
            print(f"    {verdict.render()}")
    result = pq.execute()
    print(f"  observed tier:  {result.tier}")
    print(f"  declines recorded in the profile: {result.profile.tier_decline_reasons}")

    # Structural errors surface at prepare() with a diagnostic code naming
    # the dataset and field — not as a crash mid-execution.
    try:
        engine.prepare("SELECT vendor.nosuch AS oops FROM products")
    except ProteusError as exc:
        print(f"  prepare-time type error [{exc.code}]: {exc}")

    # engine.analyze() collects per-field null counts; columns observed to
    # never miss become nullability hints that let the sort kernels and the
    # batch aggregators skip their missing-value scans entirely.
    engine.analyze("sales")
    hinted = engine.prepare("SELECT sale_id, amount FROM sales ORDER BY amount DESC")
    print(f"  proven non-null after analyze('sales'): "
          f"{sorted(hinted.analysis.hints.non_null_columns)}")

    print("\n== Observability: tracing, EXPLAIN ANALYZE and the metrics registry ==")
    # Span tracing is pay-for-what-you-use: off by default (the hot path pays
    # one is-None check), enabled per engine with enable_tracing=True.  Each
    # traced execution lands in a bounded ring buffer as a QueryTrace with
    # engine phases (parse/plan/execute/...) and one span per operator.
    traced = ProteusEngine(enable_tracing=True)
    traced.register_csv("sales", paths["sales"])
    traced.query("SELECT product_id, SUM(amount) FROM sales "
                 "WHERE quantity >= 3 GROUP BY product_id")
    trace = traced.tracer.last()
    print(f"  traced {trace.tier} execution, "
          f"{len(trace.phases)} phases / {len(trace.operators)} operator spans:")
    for span in trace.operators:
        print(f"    {span.name:<14} {span.seconds * 1e3:7.3f} ms  "
              f"rows_out={span.rows_out}")

    # explain(analyze=True) executes the query under a forced trace and
    # renders the plan with the optimizer's estimates beside the measured
    # rows/time per operator, plus the predicted-vs-served tier.
    report = engine.explain(
        "SELECT product_id, COUNT(*) FROM sales WHERE quantity >= 8 "
        "GROUP BY product_id",
        analyze=True,
    )
    for line in report.splitlines()[:4]:
        print(f"  {line}")

    # Every engine carries a thread-safe MetricsRegistry (on by default):
    # queries per tier, a latency histogram, tier-decline codes, cache and
    # per-plugin scan gauges — exported as JSON (to_dict) or Prometheus text
    # (render_prometheus), plus a bounded slow-query log
    # (slow_query_seconds, capturing the active trace when tracing is on).
    snapshot = engine.metrics.to_dict()
    print(f"  queries by tier: {snapshot['proteus_queries_total']['values']}")
    print(f"  cache hit rate:  {snapshot['proteus_cache_hit_rate']['value']:.2f}")
    scrape = engine.metrics.render_prometheus()
    print(f"  prometheus scrape: {len(scrape.splitlines())} lines, e.g. "
          f"{next(l for l in scrape.splitlines() if l.startswith('proteus_queries'))}")

    print("\n== Concurrent clients: one engine, many threads ==")
    # A ProteusEngine is safe to share across threads: the prepared-query
    # cache, the codegen program cache, the plug-in state caches and the
    # byte-budgeted cache manager all publish under locks (the discipline is
    # machine-checked — `python tools/concurrency_lint.py` proves every
    # shared-state mutation guarded and the lock-order graph acyclic).
    # run_concurrently starts the threads barrier-aligned, the worst case
    # for cold shared caches; set_debug_locks(True) (or --stress in the test
    # suite, or PROTEUS_DEBUG_LOCKS=1) swaps every engine lock for a
    # sanitizer that records the runtime lock-order graph and fails fast on
    # deadlock-shaped acquisition patterns.
    from repro.core.concurrency import run_concurrently

    shared = ProteusEngine()
    shared.register_csv("sales", paths["sales"])
    totals = run_concurrently(
        lambda i: shared.query(
            "SELECT SUM(amount) FROM sales WHERE quantity >= ?", i % 4
        ).scalar(),
        8,
    )
    print(f"  8 threads, one engine, one prepared plan: totals={totals[:3]}...")

    print("\n== Resilience: deadlines, cancellation and I/O retry ==")
    # Every query runs under a cooperative QueryContext: deadlines and
    # cancellation are checked per batch / morsel / kernel call / interpreter
    # stride on whichever tier serves the query, and abort with coded
    # RES00x errors (documented in repro/errors.py next to TYP/TIER codes) —
    # never a hang or a leaked worker.  Engine-wide bounds are configured
    # with query_timeout_seconds= / max_concurrent_queries= /
    # query_memory_budget_bytes=; here we use the per-call overrides.
    import threading

    from repro.errors import QueryCancelledError, QueryTimeoutError
    from repro.resilience import (
        CancellationToken,
        FaultInjector,
        FaultPlan,
        FaultSpec,
    )
    from repro.storage.catalog import DataFormat

    resilient = ProteusEngine(enable_codegen=False, enable_caching=False)
    resilient.register_csv("sales", paths["sales"])

    # 1. A deadline: timeout= (seconds) bounds one call; an expired deadline
    #    aborts at the tier's next check with partial progress recorded.
    try:
        resilient.query("SELECT SUM(amount) FROM sales", timeout=0)
    except QueryTimeoutError as exc:
        profile = resilient.last_profile
        print(f"  deadline: {exc} (tier={profile.execution_tier}, "
              f"progress={profile.partial_progress})")

    # 2. Cancellation from another thread: a CancellationToken is shared with
    #    the client; cancel() trips every query holding it at its next check.
    #    (A scripted slow fault keeps the scan busy long enough to land the
    #    cancel mid-flight — the same injector the chaos test suite uses.)
    token = CancellationToken()
    scanning = threading.Event()

    def slow_scan(seconds: float) -> None:
        scanning.set()
        import time as time_module

        time_module.sleep(seconds)

    resilient.plugins[DataFormat.CSV].install_fault_injector(
        FaultInjector(
            FaultPlan([FaultSpec(kind="slow", at_call=call, times=None,
                                 delay_seconds=0.02) for call in range(1, 9)]),
            sleep=slow_scan,
        )
    )
    canceller = threading.Thread(
        target=lambda: (scanning.wait(5.0), token.cancel())
    )
    canceller.start()
    try:
        resilient.query("SELECT SUM(amount) FROM sales", cancel=token)
    except QueryCancelledError as exc:
        print(f"  cancelled from another thread: {exc}")
    finally:
        canceller.join()

    # 3. Transient I/O faults are retried with exponential backoff under a
    #    per-query budget (io_retry_budget=): a one-shot OSError on the scan
    #    path is absorbed and the query still returns the exact result.
    resilient.plugins[DataFormat.CSV].install_fault_injector(
        FaultInjector(FaultPlan([FaultSpec(kind="io-error", at_call=1)]))
    )
    result = resilient.query("SELECT COUNT(*) FROM sales")
    print(f"  survived an injected scan fault: {result.scalar()} rows, "
          f"io_retries={resilient.last_profile.io_retries} "
          f"(also counted in proteus_io_retries_total)")

    print("\n== Serving: the engine as a concurrent HTTP query service ==")
    # ProteusServer mounts ONE shared engine behind a threaded JSON-over-HTTP
    # API (stdlib only).  POST /v1/query takes {query, args, params,
    # timeout_ms, query_id} and returns columns + data + tier + profile;
    # query texts go through the engine's per-text prepared cache, so every
    # client sending the same text shares one plan.  Coded engine errors map
    # onto HTTP statuses (RES003->429, RES001->408, RES002->499, TYP->400 —
    # table in repro/errors.py), DELETE /v1/query/<id> cancels an in-flight
    # query from another connection, and GET /metrics serves the Prometheus
    # scrape with the exact v0.0.4 content type.
    import urllib.request

    from repro import ProteusServer

    def http_json(url: str, payload: dict | None = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        with urllib.request.urlopen(
            urllib.request.Request(url, data=data), timeout=10
        ) as response:
            return json.loads(response.read())

    with ProteusServer(shared) as server:   # the engine threads shared above
        print(f"  listening on {server.url} (ephemeral port, handler "
              f"thread per connection)")
        bodies = run_concurrently(
            lambda i: http_json(
                server.url + "/v1/query",
                {"query": "SELECT COUNT(*), SUM(amount) FROM sales "
                          "WHERE quantity >= :q",
                 "params": {"q": 3}},
            ),
            2,
        )
        for body in bodies:
            print(f"  client got {body['data']} via tier={body['tier']}")
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
            content_type = r.headers["Content-Type"]
            http_hits = next(
                line for line in r.read().decode().splitlines()
                if line.startswith("proteus_http_requests_total")
            )
        print(f"  /metrics ({content_type}):")
        print(f"    {http_hits}")
    print("  server stopped; no handler or worker threads survive stop()")


if __name__ == "__main__":
    main()
