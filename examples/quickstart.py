#!/usr/bin/env python3
"""Quickstart: query raw CSV, JSON and binary data through one engine.

This example generates a small heterogeneous data lake (a CSV file, a JSON
object stream and a binary column table), registers the three files with a
:class:`repro.ProteusEngine` — no loading step — and runs SQL and
comprehension queries over them, including a join that crosses formats.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro import ProteusEngine
from repro.core import types as t
from repro.storage.binary_format import write_column_table


def build_data_lake(directory: str) -> dict[str, str]:
    """Materialize a small heterogeneous data lake under ``directory``."""
    rng = np.random.RandomState(0)

    # 1. A CSV file of product sales (what an export job might drop).
    sales_csv = os.path.join(directory, "sales.csv")
    with open(sales_csv, "w", encoding="utf-8") as handle:
        handle.write("sale_id,product_id,quantity,amount\n")
        for sale_id in range(500):
            product_id = int(rng.randint(0, 50))
            quantity = int(rng.randint(1, 10))
            handle.write(f"{sale_id},{product_id},{quantity},{quantity * 19.99:.2f}\n")

    # 2. A JSON object stream of products with a nested list of reviews.
    products_json = os.path.join(directory, "products.json")
    with open(products_json, "w", encoding="utf-8") as handle:
        for product_id in range(50):
            record = {
                "product_id": product_id,
                "name": f"product-{product_id}",
                "price": round(float(rng.uniform(5, 120)), 2),
                "vendor": {"name": f"vendor-{product_id % 7}", "country": "CH"},
                "reviews": [
                    {"stars": int(rng.randint(1, 6)), "helpful": int(rng.randint(0, 40))}
                    for _ in range(int(rng.randint(0, 5)))
                ],
            }
            handle.write(json.dumps(record) + "\n")

    # 3. A binary column table of warehouse stock (a pre-existing DBMS table).
    stock_dir = os.path.join(directory, "stock_columns")
    schema = t.make_schema({"product_id": "int", "stock": "int", "reorder_level": "int"})
    write_column_table(
        stock_dir,
        {
            "product_id": np.arange(50, dtype=np.int64),
            "stock": rng.randint(0, 500, size=50).astype(np.int64),
            "reorder_level": rng.randint(10, 60, size=50).astype(np.int64),
        },
        schema,
    )
    return {"sales": sales_csv, "products": products_json, "stock": stock_dir}


def main() -> None:
    directory = tempfile.mkdtemp(prefix="proteus_quickstart_")
    paths = build_data_lake(directory)

    engine = ProteusEngine(enable_caching=True)
    engine.register_csv("sales", paths["sales"])          # raw CSV, no load step
    engine.register_json("products", paths["products"])   # raw JSON, no load step
    engine.register_binary_columns("stock", paths["stock"])

    print("== SQL over a raw CSV file ==")
    result = engine.query(
        "SELECT product_id, COUNT(*) AS sales, SUM(amount) AS revenue "
        "FROM sales GROUP BY product_id ORDER BY revenue DESC LIMIT 5"
    )
    for row in result:
        print(f"  product {row[0]:>3}  sales={row[1]:>3}  revenue={row[2]:>9.2f}")

    print("\n== SQL joining CSV sales with the binary stock table ==")
    result = engine.query(
        "SELECT COUNT(*) FROM sales s JOIN stock k ON s.product_id = k.product_id "
        "WHERE k.stock < k.reorder_level"
    )
    print(f"  sales of products that need restocking: {result.scalar()}")

    print("\n== SQL over JSON with a nested field ==")
    result = engine.query(
        "SELECT vendor.name, COUNT(*) FROM products GROUP BY vendor.name"
    )
    for vendor, count in sorted(result.rows):
        print(f"  {vendor:<10} {count} products")

    print("\n== Comprehension syntax: unnesting the nested review arrays ==")
    result = engine.query(
        "for { p <- products, r <- p.reviews, r.stars >= 4 } yield count"
    )
    print(f"  reviews with 4+ stars: {result.scalar()}")

    print("\n== Heterogeneous three-format join (CSV ⋈ JSON ⋈ binary) ==")
    result = engine.query(
        "SELECT SUM(s.amount) FROM sales s "
        "JOIN products p ON s.product_id = p.product_id "
        "JOIN stock k ON s.product_id = k.product_id "
        "WHERE p.price > 50 AND k.stock > 100"
    )
    print(f"  revenue from well-stocked premium products: {result.scalar():.2f}")

    print("\n== The engine specialized itself for the last query ==")
    print(engine.explain(
        "SELECT COUNT(*) FROM sales s JOIN stock k ON s.product_id = k.product_id "
        "WHERE k.stock < 50"
    ))

    print(f"\nAdaptive caches built as a side effect: {len(engine.cache_entries())} entries")
    for entry in engine.cache_entries()[:5]:
        print(f"  [{entry.kind}] {entry.description} ({entry.size_bytes} bytes)")

    print("\n== Morsel-driven parallel execution ==")
    # parallel_workers activates the vectorized-parallel tier: the scan is
    # split into batch-aligned morsels executed by a work-stealing worker
    # pool.  Tune it to the physical core count for scan-heavy workloads;
    # inputs smaller than ~2 morsels (128Ki rows by default) transparently
    # stay on the serial tier, so it is safe to leave enabled.  This demo
    # forces small morsels via a small batch size so the tiny dataset fans
    # out; real deployments keep the default batch size.
    parallel = ProteusEngine(
        enable_codegen=False,          # showcase the batch tiers
        parallel_workers=max(os.cpu_count() or 1, 2),
        vectorized_batch_size=64,
    )
    parallel.register_csv("sales", paths["sales"])
    result = parallel.query(
        "SELECT product_id, COUNT(*), SUM(amount) FROM sales "
        "GROUP BY product_id ORDER BY product_id LIMIT 3"
    )
    profile = result.profile
    print(f"  tier={result.tier} workers={profile.parallel_workers} "
          f"morsels={profile.morsels_dispatched} stolen={profile.morsels_stolen}")
    for row in result:
        print(f"  product {row[0]:>3}  sales={row[1]:>3}  revenue={row[2]:>9.2f}")


if __name__ == "__main__":
    main()
