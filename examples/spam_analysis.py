#!/usr/bin/env python3
"""Spam-analysis walkthrough: the paper's real-world use case (§7.2) in miniature.

A synthetic Symantec-like feed is generated — a JSON spam-trap batch, a CSV
classification output and a pre-existing binary table — and analysed three
ways, mirroring the paper's comparison:

* a PostgreSQL-like RDBMS extended with JSON support (load everything first),
* a federation of a column store (flat data) and a document store (JSON)
  behind a middleware layer,
* Proteus, querying the raw files in place with adaptive caching enabled.

The script runs a representative slice of the 50-query workload on all three
and prints the per-phase time accounting of Table 3.

Run it with::

    python examples/spam_analysis.py
"""

from __future__ import annotations

import tempfile

from repro.baselines import FederatedEngine, PostgresLikeEngine
from repro.bench.systems import BaselineAdapter, ProteusAdapter
from repro.workloads import symantec


def main() -> None:
    directory = tempfile.mkdtemp(prefix="proteus_spam_")
    print("Generating a synthetic spam-analysis feed (JSON + CSV + binary)...")
    files = symantec.materialize(directory, num_json=600, num_csv=2500, num_binary=3000)
    workload = symantec.symantec_workload(files)
    # A representative slice: two queries from each phase of Figure 14.
    selected = [q for q in workload if q.index in
                (1, 4, 9, 13, 16, 23, 26, 30, 31, 33, 36, 39, 41, 45)]

    proteus = ProteusAdapter(enable_caching=True)
    postgres = BaselineAdapter(PostgresLikeEngine())
    federated = BaselineAdapter(FederatedEngine())

    print("Attaching datasets (the comparators load; Proteus only registers):")
    for adapter in (proteus, postgres, federated):
        adapter.attach_binary_columns("mail_log", files.binary_dir)
    for adapter in (postgres, federated):
        adapter.attach_csv("classification", files.csv_path)
        adapter.attach_json("spam_mails", files.json_path)
    proteus.attach_csv("classification", files.csv_path,
                       schema=symantec.CLASSIFICATION_CSV_SCHEMA)
    proteus.attach_json("spam_mails", files.json_path,
                        schema=symantec.SPAM_JSON_SCHEMA)
    for adapter in (proteus, postgres, federated):
        print(f"  {adapter.name:<26} load time {adapter.load_seconds:8.3f} s")

    print(f"\nRunning {len(selected)} queries of the workload on each approach:")
    header = f"  {'query':<6}{'phase':<12}{'proteus':>12}{'postgres':>12}{'federated':>12}"
    print(header)
    totals = {adapter.name: 0.0 for adapter in (proteus, postgres, federated)}
    for query in selected:
        row = [f"  Q{query.index:<5}{query.phase:<12}"]
        reference = None
        for adapter in (proteus, postgres, federated):
            measurement = adapter.run(query.spec)
            totals[adapter.name] += measurement.seconds
            row.append(f"{measurement.seconds * 1000:>10.2f}ms")
            if reference is None:
                reference = measurement.result
        print("".join(row))

    print("\nAccumulated time (queries only):")
    for name, seconds in totals.items():
        print(f"  {name:<26} {seconds:8.3f} s")
    print("\nAccumulated time including loading (Table 3 style):")
    for adapter in (proteus, postgres, federated):
        total = totals[adapter.name] + adapter.load_seconds
        print(f"  {adapter.name:<26} {total:8.3f} s")

    speedup = (totals[postgres.name] + postgres.load_seconds) / (
        totals[proteus.name] + proteus.load_seconds
    )
    print(f"\nProteus is {speedup:.1f}x faster than the RDBMS-with-JSON approach "
          "on this slice (loading included).")
    print(f"Adaptive caches built along the way: {len(proteus.engine.cache_entries())}")


if __name__ == "__main__":
    main()
