#!/usr/bin/env python3
"""Example 3.1 of the paper: nested data and query unnesting.

The paper motivates the nested relational algebra with two datasets —
``Sailor`` (each sailor has a nested list of children) and ``Ship`` (each ship
has a nested list of personnel identifiers) — and the query

    "For each Sailor, return his id, the name of the Ship on which he works,
     and the names of his adult children."

expressed in the comprehension syntax as::

    for { s1 <- Sailor, c <- s1.children, s2 <- Ship,
          p <- s2.personnel, s1.id = p.id, c.age > 18 }
    yield bag (s1.id, s2.name, c.name)

This example materializes the two datasets as JSON, runs exactly that query,
and prints both the result and the plan (two Unnest operators handle the
nested collections explicitly, as in Figure 1 of the paper).

Run it with::

    python examples/sailors_ships.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro import ProteusEngine

SAILORS = [
    {"id": 1, "name": "aris", "children": [
        {"name": "nikos", "age": 22}, {"name": "eleni", "age": 15}]},
    {"id": 2, "name": "maria", "children": [
        {"name": "kostas", "age": 30}]},
    {"id": 3, "name": "giorgos", "children": []},
    {"id": 4, "name": "anna", "children": [
        {"name": "petros", "age": 19}, {"name": "sofia", "age": 21}]},
]

SHIPS = [
    {"name": "poseidon", "personnel": [{"id": 1}, {"id": 3}]},
    {"name": "triton", "personnel": [{"id": 2}]},
    {"name": "nereus", "personnel": [{"id": 4}]},
]

QUERY = (
    "for { s1 <- Sailor, c <- s1.children, s2 <- Ship, "
    "p <- s2.personnel, s1.id = p.id, c.age > 18 } "
    "yield bag (s1.id, s2.name as ship, c.name as child)"
)


def main() -> None:
    directory = tempfile.mkdtemp(prefix="proteus_sailors_")
    sailors_path = os.path.join(directory, "sailors.json")
    ships_path = os.path.join(directory, "ships.json")
    with open(sailors_path, "w", encoding="utf-8") as handle:
        for sailor in SAILORS:
            handle.write(json.dumps(sailor) + "\n")
    with open(ships_path, "w", encoding="utf-8") as handle:
        for ship in SHIPS:
            handle.write(json.dumps(ship) + "\n")

    engine = ProteusEngine()
    engine.register_json("Sailor", sailors_path)
    engine.register_json("Ship", ships_path)

    print("Query (comprehension syntax, Example 3.1 of the paper):\n")
    print("  " + QUERY + "\n")

    print("Physical plan and generated engine:\n")
    print(engine.explain(QUERY))

    result = engine.query(QUERY)
    print("\nAdult children of each sailor, with the ship they work on:")
    for sailor_id, ship, child in sorted(result.rows):
        print(f"  sailor {sailor_id}  ship={ship:<10} child={child}")

    expected = [(1, "poseidon", "nikos"), (2, "triton", "kostas"),
                (4, "nereus", "petros"), (4, "nereus", "sofia")]
    assert sorted(result.rows) == expected, "unexpected result!"
    print("\nResult matches the expected answer.")


if __name__ == "__main__":
    main()
