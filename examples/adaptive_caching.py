#!/usr/bin/env python3
"""Adaptive storage demonstration (§6 / Figure 13).

The same JSON dataset is queried repeatedly.  With caching disabled, every
query pays the raw-data access cost again; with caching enabled, the engine
materializes binary caches of the converted values as a side effect of the
first queries and serves later queries from them — the caches are matched
against new plans and the access path is rewritten automatically.

The script prints the per-query times of a small query sequence under both
configurations and the contents of the cache at the end.

Run it with::

    python examples/adaptive_caching.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import ProteusEngine
from repro.workloads import tpch

QUERIES = [
    ("Q1  selective filter",
     "SELECT COUNT(*) FROM lineitem WHERE l_orderkey < 150"),
    ("Q2  same predicate, more work",
     "SELECT MAX(l_extendedprice), SUM(l_quantity) FROM lineitem WHERE l_orderkey < 150"),
    ("Q3  different predicate, same columns",
     "SELECT MAX(l_extendedprice) FROM lineitem WHERE l_quantity < 25"),
    ("Q4  group-by over cached columns",
     "SELECT l_linenumber, COUNT(*), SUM(l_extendedprice) FROM lineitem "
     "WHERE l_orderkey < 300 GROUP BY l_linenumber"),
    ("Q5  repeat of Q2",
     "SELECT MAX(l_extendedprice), SUM(l_quantity) FROM lineitem WHERE l_orderkey < 150"),
]


def run_sequence(path: str, enable_caching: bool) -> list[float]:
    engine = ProteusEngine(enable_caching=enable_caching)
    engine.register_json("lineitem", path, schema=tpch.LINEITEM_SCHEMA)
    engine.structural_index_info("lineitem")  # build the structural index once
    timings = []
    for _, sql in QUERIES:
        started = time.perf_counter()
        engine.query(sql)
        timings.append(time.perf_counter() - started)
    if enable_caching:
        print("\nCaches materialized as a side effect of the workload:")
        for entry in engine.cache_entries():
            print(f"  [{entry.kind:<9}] {entry.description:<35} "
                  f"{entry.size_bytes:>8} bytes  bias={entry.bias}")
        stats = engine.cache_stats
        print(f"  lookups={stats.lookups} hits={stats.hits} "
              f"hit-rate={stats.hit_rate * 100:.0f}%")
    return timings


def main() -> None:
    directory = tempfile.mkdtemp(prefix="proteus_caching_")
    print("Generating a TPC-H lineitem JSON file...")
    tables = tpch.generate(scale=0.5)
    path = os.path.join(directory, "lineitem.json")
    tpch.write_json(path, tables.lineitem)

    print("\nRunning the query sequence with caching DISABLED:")
    cold = run_sequence(path, enable_caching=False)
    print("\nRunning the query sequence with caching ENABLED:")
    warm = run_sequence(path, enable_caching=True)

    print(f"\n{'query':<38}{'no caching':>14}{'caching':>14}{'speedup':>10}")
    for (label, _), baseline, cached in zip(QUERIES, cold, warm):
        speedup = baseline / cached if cached else float("inf")
        print(f"{label:<38}{baseline * 1000:>12.2f}ms{cached * 1000:>12.2f}ms"
              f"{speedup:>9.1f}x")
    print(f"\ntotal{'':<33}{sum(cold) * 1000:>12.2f}ms{sum(warm) * 1000:>12.2f}ms"
          f"{sum(cold) / sum(warm):>9.1f}x")


if __name__ == "__main__":
    main()
