"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file exists
so that fully offline environments (no ``wheel`` package available for PEP 660
editable installs) can still do ``pip install -e . --no-build-isolation`` or
``python setup.py develop``.
"""

from setuptools import setup

setup()
