"""Input plug-in API (Table 2 of the paper).

Every supported data format is served by an input plug-in.  Plug-ins are the
only component that understands the bytes of a format; operators and
expression generators consume values exclusively through this interface, which
is what makes the engine extensible ("adding a plug-in suffices to support a
new data format", §4).

The API mirrors Table 2:

==================  =========================================================
Paper call          Reproduction method
==================  =========================================================
``generate()``      :meth:`InputPlugin.generate_scan` — emit scan code into a
                    codegen context and return the buffer variables holding
                    the requested fields.
``readValue()``     :meth:`InputPlugin.read_value` — fetch one field of one
                    object identified by its OID.
``readPath()``      :meth:`InputPlugin.read_path` — fetch a nested object /
                    collection reachable through a path.
``unnestInit()``    :meth:`InputPlugin.unnest_init`
``unnestHasNext()`` :meth:`InputPlugin.unnest_has_next`
``unnestGetNext()`` :meth:`InputPlugin.unnest_get_next`
``hashValue()``     :meth:`InputPlugin.hash_value`
``flushValue()``    :meth:`InputPlugin.flush_value`
==================  =========================================================

In addition, plug-ins provide statistics and cost formulas to the optimizer
(§5.2, "Enabling Cost-based Optimizations") and bulk, vectorized accessors
(:meth:`scan_columns`, :meth:`scan_unnest`) that the generated per-query code
calls at run time — the Python analogue of the data-access code the paper's
plug-ins generate as LLVM IR.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.core import types as t
from repro.core.concurrency import make_lock
# Canonical nested-access rule, re-exported for plug-in authors.
from repro.core.types import dig_path  # noqa: F401
from repro.errors import PluginError
from repro.storage.catalog import Dataset, DatasetStatistics
from repro.storage.memory import MemoryManager

FieldPath = tuple[str, ...]


def _noop() -> None:
    return None


@dataclass
class ScanBuffers:
    """The virtual memory buffers a scan populates for the rest of the plan.

    ``columns`` maps each requested field path to a NumPy array with one entry
    per qualifying object; ``oids`` carries the object identifier the plug-in
    produced for each entry, which later lazy accesses (``read_value``) use to
    return to the source object.
    """

    count: int
    oids: np.ndarray
    columns: dict[FieldPath, np.ndarray] = field(default_factory=dict)

    def column(self, path: FieldPath) -> np.ndarray:
        try:
            return self.columns[path]
        except KeyError as exc:
            raise PluginError(f"scan did not materialize field {'.'.join(path)!r}") from exc


@dataclass
class UnnestBuffers:
    """Buffers produced when unnesting a nested collection.

    ``parent_positions`` maps every unnested element back to the position of
    its parent in the parent buffers (so parent fields can be gathered), and
    ``columns`` holds the requested element fields, flattened.
    """

    count: int
    parent_positions: np.ndarray
    columns: dict[FieldPath, np.ndarray] = field(default_factory=dict)

    def column(self, path: FieldPath) -> np.ndarray:
        try:
            return self.columns[path]
        except KeyError as exc:
            raise PluginError(f"unnest did not materialize field {'.'.join(path)!r}") from exc


@dataclass
class UnnestBatch:
    """Offset-vector output of a *batch-native* unnest.

    Instead of per-element parent positions, the batch API describes the
    flattening as one repeat count per parent: ``repeats[i]`` is how many
    output rows parent ``i`` (of the ``parent_oids`` passed in) contributes.
    Parent columns are then broadcast with a single ``np.repeat`` per batch —
    no per-parent round-trips.  Under *outer* unnest a parent whose collection
    is empty or missing contributes exactly one row whose element columns hold
    the missing value (``None`` / NaN), mirroring the Volcano interpreter's
    null child row.
    """

    count: int
    #: int64, one entry per requested parent; ``repeats.sum() == count``.
    repeats: np.ndarray
    columns: dict[FieldPath, np.ndarray] = field(default_factory=dict)

    def column(self, path: FieldPath) -> np.ndarray:
        try:
            return self.columns[path]
        except KeyError as exc:
            raise PluginError(f"unnest did not materialize field {'.'.join(path)!r}") from exc

    def parent_positions(self) -> np.ndarray:
        """Per-element parent positions (the legacy ``UnnestBuffers`` shape),
        derived from the repeat counts with one vectorized ``np.repeat``."""
        return np.repeat(np.arange(len(self.repeats), dtype=np.int64), self.repeats)


@dataclass
class UnnestState:
    """Iterator state for the tuple-at-a-time unnest API."""

    elements: list
    position: int = 0


class InputPlugin(ABC):
    """Base class of all input plug-ins."""

    #: Format name served by the plug-in (matches ``Dataset.format``).
    format_name: str = "abstract"

    #: Relative cost of extracting one value from the source, used by the
    #: optimizer's cost formulas and by the format-biased cache eviction
    #: policy (JSON > CSV > binary).
    field_access_cost: float = 1.0

    #: Whether :meth:`scan_batch_ranges` has a genuinely splittable
    #: implementation.  The morsel-driven parallel tier only splits scans of
    #: plug-ins that set this to ``True``; everything else transparently runs
    #: on the serial tiers.
    supports_scan_ranges: bool = False

    def __init__(self, memory: MemoryManager):
        self.memory = memory
        #: Cumulative scan metrics (scraped by the engine's metrics registry
        #: as per-plugin gauges): wall-clock seconds spent inside this
        #: plug-in's scan/parse paths, bytes of columnar data produced, and
        #: the number of scan streams / kernel calls served.  Updated through
        #: :meth:`record_scan` from the engine-side call sites (the batch
        #: tiers' scan streams and the codegen runtime), one flush per
        #: stream, under a lock (the parallel tier records from workers).
        self.scan_seconds = 0.0
        self.scan_bytes = 0
        self.scan_calls = 0
        self._metrics_lock = make_lock("InputPlugin._metrics_lock")
        #: Deterministic fault harness hook (chaos suite): ``None`` in
        #: production; when installed, every :meth:`io_guard` /
        #: :meth:`io_checkpoint` step consults it *beneath* the retry layer.
        self.fault_injector = None

    def record_scan(self, seconds: float, nbytes: int) -> None:
        """Charge one scan stream / kernel call to this plug-in's metrics."""
        with self._metrics_lock:
            self.scan_seconds += seconds
            self.scan_bytes += int(nbytes)
            self.scan_calls += 1

    # -- resilient raw I/O ----------------------------------------------------

    def install_fault_injector(self, injector) -> None:
        """Install (or clear, with ``None``) a chaos-suite fault injector."""
        self.fault_injector = injector

    def io_guard(self, operation: str, dataset_name: str | None, fn, *args, **kwargs):
        """Run one raw-I/O step (an mmap + parse, a batch slice) under the
        resilience retry policy.

        Transient ``OSError``s — real mmap faults or injected ones — are
        retried with exponential backoff against the active query's retry
        budget (RES005 once exhausted); ``ValueError`` surfaces immediately
        as corrupt data (RES006).  Faults injected by the chaos harness fire
        *inside* the attempt, beneath the retry layer, so an injected
        one-shot I/O error is recovered exactly like a real one.
        """
        from repro.resilience.retry import retry_io

        injector = self.fault_injector
        call = injector.next_call(operation, dataset_name) if injector is not None else 0

        def attempt():
            if injector is not None:
                injector.on_attempt(call, operation, dataset_name)
            return fn(*args, **kwargs)

        return retry_io(attempt, operation=operation, dataset=dataset_name)

    def io_checkpoint(self, operation: str, dataset_name: str | None) -> None:
        """A zero-work :meth:`io_guard` step for streaming scan paths.

        The hot scan generators operate on bytes already mapped into memory,
        so they have no real I/O call to wrap — but the chaos harness still
        needs a deterministic injection point per produced batch.  Without an
        installed injector this is one attribute test.
        """
        if self.fault_injector is None:
            return
        self.io_guard(operation, dataset_name, _noop)

    # -- schema and statistics ----------------------------------------------

    @abstractmethod
    def infer_schema(self, dataset: Dataset) -> t.RecordType:
        """Discover the element schema of the dataset."""

    @abstractmethod
    def collect_statistics(self, dataset: Dataset) -> DatasetStatistics:
        """Gather cardinality and min/max statistics for the dataset."""

    # -- bulk (vectorized) access used by generated code ---------------------

    @abstractmethod
    def scan_columns(self, dataset: Dataset, paths: Sequence[FieldPath]) -> ScanBuffers:
        """Materialize the requested field paths into columnar buffers."""

    def scan_columns_at(
        self, dataset: Dataset, paths: Sequence[FieldPath], oids: np.ndarray
    ) -> ScanBuffers:
        """Materialize the requested fields for the given OIDs only.

        This is the *lazy* access path of §5.2: when a selection has already
        filtered most objects away, converting the remaining fields only for
        the qualifying OIDs avoids touching the raw data for objects that were
        filtered out.  The default implementation extracts full columns and
        gathers; verbose formats override it with genuinely selective access.
        """
        full = self.scan_columns(dataset, paths)
        buffers = ScanBuffers(count=len(oids), oids=np.asarray(oids, dtype=np.int64))
        for path in paths:
            buffers.columns[tuple(path)] = full.column(tuple(path))[oids]
        return buffers

    def scan_unnest(
        self,
        dataset: Dataset,
        collection_path: FieldPath,
        element_paths: Sequence[FieldPath],
        parent_oids: np.ndarray | None = None,
    ) -> UnnestBuffers:
        """Unnest a nested collection field into flattened buffers."""
        raise PluginError(
            f"format {self.format_name!r} does not contain nested collections"
        )

    def scan_unnest_batch(
        self,
        dataset: Dataset,
        collection_path: FieldPath,
        element_paths: Sequence[FieldPath],
        parent_oids: np.ndarray,
        outer: bool = False,
    ) -> UnnestBatch:
        """Unnest a nested collection for a batch of parents at once.

        Returns flattened element buffers plus one repeat count per parent
        (:class:`UnnestBatch`), which is what lets the batch executors
        broadcast parent columns with a single ``np.repeat`` per batch.  With
        ``outer=True`` parents whose collection is empty or missing emit one
        null child row (repeat count 1, element values missing).

        The default implementation is the *per-parent round-trip* path: one
        pass through the Table-2 iterator protocol (``unnest_init`` /
        ``unnest_has_next`` / ``unnest_get_next``) per parent OID — correct
        for every plug-in that can navigate to the collection, but paying the
        per-parent (and per-element) interpretation cost the paper's §5
        measures.  Formats with structural indexes override it with a native
        offset-vector implementation (see ``JsonPlugin.scan_unnest_batch``);
        ``benchmarks/bench_unnest.py`` gates the native path >= 5x over this
        fallback.
        """
        self.io_checkpoint("scan-unnest", dataset.name)
        element_paths = [tuple(path) for path in element_paths]
        repeats = np.zeros(len(parent_oids), dtype=np.int64)
        values: dict[FieldPath, list] = {path: [] for path in element_paths}
        total = 0
        for slot, oid in enumerate(parent_oids):
            state = self.unnest_init(dataset, int(oid), collection_path)
            emitted = 0
            while self.unnest_has_next(state):
                element = self.unnest_get_next(state)
                emitted += 1
                for path in element_paths:
                    values[path].append(dig_path(element, path))
            if emitted == 0 and outer:
                emitted = 1
                for path in element_paths:
                    values[path].append(None)
            repeats[slot] = emitted
            total += emitted
        batch = UnnestBatch(count=total, repeats=repeats)
        for path in element_paths:
            batch.columns[path] = values_to_array(values[path])
        return batch

    def scan_batches(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        batch_size: int = 4096,
    ) -> Iterator[ScanBuffers]:
        """Yield the requested field paths as a stream of columnar batches.

        This is the access path of the vectorized batch executor: instead of
        one dict per tuple (``iterate_rows``) or one monolithic buffer per
        column (``scan_columns``), the scan produces :class:`ScanBuffers` of at
        most ``batch_size`` rows each, with OIDs carrying the global row
        positions.  The default implementation is a per-tuple shim over
        ``iterate_rows`` — correct for every plug-in but paying the per-tuple
        cost once; formats with structural indexes or native columns override
        it with genuinely batched extraction.  Empty datasets yield no batches.
        """
        paths = [tuple(path) for path in paths]
        pending: list[dict] = []
        start = 0
        for record in self.iterate_rows(dataset, paths):
            pending.append(record)
            if len(pending) >= batch_size:
                self.io_checkpoint("scan-batch", dataset.name)
                yield self._shim_batch(pending, paths, start)
                start += len(pending)
                pending = []
        if pending:
            self.io_checkpoint("scan-batch", dataset.name)
            yield self._shim_batch(pending, paths, start)

    def scan_row_count(self, dataset: Dataset) -> int | None:
        """Total number of scannable rows, or ``None`` when counting would
        require a full pass over the source.

        A known row count is what lets the morsel-driven parallel tier split
        a scan into independent row ranges up front; plug-ins backed by a
        structural index or binary layout know it for free.
        """
        return None

    def scan_batch_ranges(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        start: int,
        stop: int,
        batch_size: int = 4096,
    ) -> Iterator[ScanBuffers]:
        """Yield the requested fields for global rows ``[start, stop)`` as
        columnar batches (OIDs carry the global row positions).

        This is the *splittable* access path of the morsel-driven parallel
        tier: disjoint ranges must be servable concurrently from different
        threads without touching shared mutable plug-in state.  Plug-ins
        that implement it natively set :attr:`supports_scan_ranges`; the
        default refuses, which makes the parallel tier fall back to the
        serial vectorized executor.
        """
        raise PluginError(
            f"format {self.format_name!r} does not support range-partitioned "
            "scans"
        )

    def _shim_batch(
        self, records: list[dict], paths: Sequence[FieldPath], start: int
    ) -> ScanBuffers:
        buffers = ScanBuffers(
            count=len(records),
            oids=np.arange(start, start + len(records), dtype=np.int64),
        )
        for path in paths:
            buffers.columns[tuple(path)] = values_to_array(
                [dig_path(record, path) for record in records]
            )
        return buffers

    # -- tuple-at-a-time access (Volcano executor, lazy expression evaluation)

    @abstractmethod
    def iterate_rows(
        self, dataset: Dataset, paths: Sequence[FieldPath] | None = None
    ) -> Iterator[dict]:
        """Yield one dict per object; when ``paths`` is given only those
        fields need to be populated (plus nested structure they traverse)."""

    def read_value(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        """Fetch a single field value by OID (lazy access)."""
        raise PluginError(f"format {self.format_name!r} does not support lazy access")

    def read_path(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        """Fetch a nested object or collection by OID."""
        return self.read_value(dataset, oid, path)

    # -- unnest iterator protocol (Table 2) ----------------------------------

    def unnest_init(self, dataset: Dataset, oid: int, path: FieldPath) -> UnnestState:
        value = self.read_path(dataset, oid, path)
        if value is None:
            return UnnestState([])
        if not isinstance(value, (list, tuple)):
            raise PluginError(f"field {'.'.join(path)!r} is not a collection")
        return UnnestState(list(value))

    def unnest_has_next(self, state: UnnestState) -> bool:
        return state.position < len(state.elements)

    def unnest_get_next(self, state: UnnestState) -> Any:
        value = state.elements[state.position]
        state.position += 1
        return value

    # -- value helpers --------------------------------------------------------

    def hash_value(self, value: Any) -> int:
        """Hash a value for joins/grouping (overridable per format)."""
        return hash(value)

    def flush_value(self, value: Any) -> str:
        """Render a value for result output."""
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    # -- code generation ------------------------------------------------------

    def generate_scan(
        self, ctx, dataset: Dataset, paths: Sequence[FieldPath]
    ) -> dict[FieldPath, str]:
        """Emit scan code into a codegen context.

        The default implementation registers this plug-in in the generated
        program's runtime table and emits a call to :meth:`scan_columns`,
        followed by one buffer variable per requested field.  Plug-ins may
        override this to specialize further (e.g. the binary column plug-in
        emits direct array references).
        """
        dataset_var = ctx.register_constant(f"ds_{dataset.name}", dataset)
        plugin_var = ctx.register_constant(f"plugin_{self.format_name}", self)
        buffers_var = ctx.fresh("buffers")
        path_literal = ", ".join(repr(tuple(path)) for path in paths)
        ctx.emit(
            f"{buffers_var} = rt.scan({plugin_var}, {dataset_var}, ({path_literal}{',' if paths else ''}))"
        )
        variables: dict[FieldPath, str] = {}
        for path in paths:
            var = ctx.fresh("col_" + "_".join(path) if path else "col_value")
            ctx.emit(f"{var} = {buffers_var}.column({tuple(path)!r})")
            variables[path] = var
        oid_var = ctx.fresh("oids")
        ctx.emit(f"{oid_var} = {buffers_var}.oids")
        variables[("__oid__",)] = oid_var
        return variables

    # -- costing --------------------------------------------------------------

    def scan_cost(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        statistics: DatasetStatistics | None,
    ) -> float:
        """Estimated cost of scanning the requested fields of the dataset."""
        cardinality = statistics.cardinality if statistics is not None else 1_000_000
        return cardinality * self.field_access_cost * max(len(paths), 1)


def count_missing(values: np.ndarray) -> int:
    """Observed missing entries in a column buffer.

    Delegates to the executor kernels' ``missing_mask`` so statistics
    collection and execution agree on what "missing" means (``None`` in
    object buffers, NaN in float buffers).  Feeds
    ``DatasetStatistics.null_counts`` — the proof the static analyzer
    needs before it lets a tier skip missing-mask construction."""
    from repro.core.executor.radix import missing_mask

    mask = missing_mask(np.asarray(values))
    return 0 if mask is None else int(mask.sum())


def require_flat_path(path: FieldPath) -> str:
    """Helper for flat formats: a path must have exactly one element."""
    if len(path) != 1:
        raise PluginError(
            f"flat formats have no nested fields; got path {'.'.join(path)!r}"
        )
    return path[0]


def flatten_collections(
    collections: Sequence, element_paths: Sequence[FieldPath], outer: bool = False
) -> UnnestBatch:
    """Flatten already-materialized collection values into an
    :class:`UnnestBatch`.

    ``collections`` holds one Python collection (list/tuple), or ``None``,
    per parent — e.g. an object column a previous unnest materialized.  This
    is the offset-vector kernel behind *column-backed* unnest (nested
    collections inside already-unnested elements), shared so every caller
    agrees on outer-unnest null rows and on the "not a collection" error.
    """
    element_paths = [tuple(path) for path in element_paths]
    repeats = np.zeros(len(collections), dtype=np.int64)
    values: dict[FieldPath, list] = {path: [] for path in element_paths}
    total = 0
    for slot, elements in enumerate(collections):
        if elements is None:
            elements = ()
        elif not isinstance(elements, (list, tuple)):
            raise PluginError("unnest input is not a nested collection")
        if elements:
            repeats[slot] = len(elements)
            total += len(elements)
            for path in element_paths:
                values[path].extend(dig_path(element, path) for element in elements)
        elif outer:
            repeats[slot] = 1
            total += 1
            for path in element_paths:
                values[path].append(None)
    batch = UnnestBatch(count=total, repeats=repeats)
    for path in element_paths:
        batch.columns[path] = values_to_array(values[path])
    return batch


def values_to_array(values: list) -> np.ndarray:
    """Pack extracted Python values into the tightest NumPy column.

    Missing values (``None``) force an object buffer so tuple-at-a-time null
    semantics survive the round-trip through the batch executor; clean numeric
    columns specialize to ``int64`` / ``float64`` / ``bool`` buffers.
    """
    if not values:
        return np.zeros(0, dtype=np.float64)
    if not any(value is None for value in values):
        if all(isinstance(value, bool) for value in values):
            return np.asarray(values, dtype=np.bool_)
        if all(
            isinstance(value, int) and not isinstance(value, bool) for value in values
        ):
            try:
                return np.asarray(values, dtype=np.int64)
            except OverflowError:
                # Ints beyond int64 stay exact in an object buffer (a float64
                # cast would round them).
                pass
        elif all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in values
        ):
            return np.asarray(values, dtype=np.float64)
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array


