"""Binary column input plug-in.

Serves column tables ("binary column files similar to the ones of MonetDB",
§7.1).  Columns are memory-mapped and handed to the generated code directly,
so a scan that touches K columns reads exactly K arrays — the cheapest access
path of the engine, which is why the cost model and the cache-eviction bias
rank binary data below CSV and JSON.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.core import types as t
from repro.core.concurrency import make_lock
from repro.plugins.base import (
    FieldPath,
    InputPlugin,
    ScanBuffers,
    count_missing,
    require_flat_path,
)
from repro.storage.binary_format import ColumnTable, read_column_table
from repro.storage.catalog import Dataset, DatasetStatistics


class BinaryColumnPlugin(InputPlugin):
    """Input plug-in for column tables produced by
    :func:`repro.storage.binary_format.write_column_table`."""

    format_name = "binary_column"
    field_access_cost = 0.05
    supports_scan_ranges = True

    def __init__(self, memory):
        super().__init__(memory)
        self._tables: dict[str, ColumnTable] = {}
        self._table_lock = make_lock("BinaryColumnPlugin._table_lock")

    def _table(self, dataset: Dataset) -> ColumnTable:
        # Double-checked locking: load the memory-mapped table exactly once
        # even under concurrent first access from parallel workers.
        table = self._tables.get(dataset.name)
        if table is not None:
            return table
        with self._table_lock:
            table = self._tables.get(dataset.name)
            if table is None:
                # One guarded raw-I/O step: header reads and column mmaps can
                # fault transiently (retried), a bad header parses into
                # ValueError (surfaced as corrupt data).
                table = self.io_guard(
                    "table-load", dataset.name, read_column_table, dataset.path
                )
                self._tables[dataset.name] = table
            return table

    def invalidate(self, dataset_name: str) -> None:
        with self._table_lock:
            self._tables.pop(dataset_name, None)

    # -- schema and statistics -------------------------------------------------

    def infer_schema(self, dataset: Dataset) -> t.RecordType:
        return self._table(dataset).schema

    def collect_statistics(self, dataset: Dataset) -> DatasetStatistics:
        table = self._table(dataset)
        statistics = DatasetStatistics(cardinality=table.row_count)
        for field in table.schema.fields:
            column = table.column(field.name)
            statistics.null_counts[field.name] = count_missing(column)
            if not field.dtype.is_numeric():
                continue
            if len(column):
                statistics.min_values[field.name] = float(np.min(column))
                statistics.max_values[field.name] = float(np.max(column))
        return statistics

    # -- bulk access --------------------------------------------------------------

    def scan_columns(self, dataset: Dataset, paths: Sequence[FieldPath]) -> ScanBuffers:
        table = self._table(dataset)
        self.io_checkpoint("scan-columns", dataset.name)
        buffers = ScanBuffers(
            count=table.row_count, oids=np.arange(table.row_count, dtype=np.int64)
        )
        for path in paths:
            name = require_flat_path(path)
            buffers.columns[path] = np.asarray(table.column(name))
        return buffers

    def scan_batches(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        batch_size: int = 4096,
    ):
        """Native batched scan: each batch is a zero-copy slice of the
        memory-mapped column arrays."""
        table = self._table(dataset)
        paths = [tuple(path) for path in paths]
        arrays = {
            path: np.asarray(table.column(require_flat_path(path))) for path in paths
        }
        for start in range(0, table.row_count, batch_size):
            self.io_checkpoint("scan-batch", dataset.name)
            stop = min(start + batch_size, table.row_count)
            buffers = ScanBuffers(
                count=stop - start, oids=np.arange(start, stop, dtype=np.int64)
            )
            for path in paths:
                buffers.columns[path] = arrays[path][start:stop]
            yield buffers

    def scan_row_count(self, dataset: Dataset) -> int:
        return self._table(dataset).row_count

    def scan_batch_ranges(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        start: int,
        stop: int,
        batch_size: int = 4096,
    ):
        """Range-partitioned scan for the morsel-driven parallel tier: each
        batch is a zero-copy slice of the memory-mapped column arrays, so
        disjoint ranges are trivially safe to serve concurrently."""
        table = self._table(dataset)
        stop = min(stop, table.row_count)
        paths = [tuple(path) for path in paths]
        arrays = {
            path: np.asarray(table.column(require_flat_path(path))) for path in paths
        }
        for begin in range(start, stop, batch_size):
            self.io_checkpoint("scan-range", dataset.name)
            end = min(begin + batch_size, stop)
            buffers = ScanBuffers(
                count=end - begin, oids=np.arange(begin, end, dtype=np.int64)
            )
            for path in paths:
                buffers.columns[path] = arrays[path][begin:end]
            yield buffers

    # -- tuple-at-a-time access -----------------------------------------------------

    def iterate_rows(
        self, dataset: Dataset, paths: Sequence[FieldPath] | None = None
    ) -> Iterator[dict]:
        table = self._table(dataset)
        names = (
            [require_flat_path(path) for path in paths]
            if paths is not None
            else table.schema.field_names()
        )
        columns = [table.column(name) for name in names]
        for row in range(table.row_count):
            yield {name: _python_value(column[row]) for name, column in zip(names, columns)}

    def read_value(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        table = self._table(dataset)
        name = require_flat_path(path)
        return _python_value(table.column(name)[int(oid)])


def _python_value(value: Any) -> Any:
    """Convert NumPy scalars to plain Python values for tuple-at-a-time use."""
    if isinstance(value, np.generic):
        return value.item()
    return value
