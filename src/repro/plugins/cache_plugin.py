"""Cache input plug-in.

Once materialized, Proteus treats its caches as an additional input dataset
(§6): the cache plug-in exposes the binary column caches held by the caching
manager through the same plug-in API as every other format, so the rest of the
engine does not distinguish between reading a raw file and reading a cache.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.caching.manager import CacheManager
from repro.caching.matching import field_cache_key
from repro.core import types as t
from repro.errors import PluginError
from repro.plugins.base import FieldPath, InputPlugin, ScanBuffers, require_flat_path
from repro.storage.catalog import Dataset, DatasetStatistics


class CachePlugin(InputPlugin):
    """Input plug-in over the caching manager's field caches.

    The ``dataset`` handed to this plug-in names the *source* dataset whose
    converted fields live in the cache; the plug-in serves exactly the fields
    that have been cached and refuses the rest, so the planner only routes a
    scan here when every required field is available.
    """

    format_name = "cache"
    field_access_cost = 0.05

    def __init__(
        self,
        memory,
        manager: CacheManager,
        source_plugins: dict[str, InputPlugin] | None = None,
    ):
        super().__init__(memory)
        self.manager = manager
        #: format -> plug-in map for re-routing a scan back to the source
        #: dataset.  The planner pins ``access_path="cache"`` at plan time;
        #: a concurrent invalidation or eviction can remove the entry before
        #: the scan executes, and without the re-route that window surfaces
        #: as a spurious ``PluginError`` to the client.
        self.source_plugins: dict[str, InputPlugin] = source_plugins or {}

    # -- availability -----------------------------------------------------------

    def cached_paths(self, dataset_name: str) -> set[FieldPath]:
        """Field paths of ``dataset_name`` currently served from the cache."""
        paths: set[FieldPath] = set()
        for entry in self.manager.entries_for_dataset(dataset_name):
            if entry.kind == "field":
                paths.add(tuple(entry.key[2]))
        return paths

    def can_serve(self, dataset_name: str, paths: Sequence[FieldPath]) -> bool:
        available = self.cached_paths(dataset_name)
        return all(tuple(path) in available for path in paths)

    # -- schema and statistics ------------------------------------------------------

    def infer_schema(self, dataset: Dataset) -> t.RecordType:
        fields = []
        for entry in self.manager.entries_for_dataset(dataset.name):
            if entry.kind != "field":
                continue
            path = entry.key[2]
            array = entry.data
            dtype = _type_of(array)
            fields.append(t.Field(".".join(path), dtype))
        return t.RecordType(fields)

    def collect_statistics(self, dataset: Dataset) -> DatasetStatistics:
        cardinality = 0
        minimums: dict[str, float] = {}
        maximums: dict[str, float] = {}
        for entry in self.manager.entries_for_dataset(dataset.name):
            if entry.kind != "field":
                continue
            array = entry.data
            cardinality = max(cardinality, len(array))
            if array.dtype != object and len(array):
                name = ".".join(entry.key[2])
                minimums[name] = float(np.nanmin(array))
                maximums[name] = float(np.nanmax(array))
        return DatasetStatistics(
            cardinality=cardinality, min_values=minimums, max_values=maximums
        )

    # -- bulk access ------------------------------------------------------------------

    def scan_columns(self, dataset: Dataset, paths: Sequence[FieldPath]) -> ScanBuffers:
        columns: dict[FieldPath, np.ndarray] = {}
        count = 0
        for path in paths:
            entry = self.manager.lookup(field_cache_key(dataset.name, tuple(path)))
            if entry is None:
                source = self.source_plugins.get(dataset.format)
                if source is None:
                    raise PluginError(
                        f"field {'.'.join(path)!r} of {dataset.name!r} is not cached"
                    )
                # Entry vanished after planning (invalidation / eviction race):
                # serve the whole scan from the raw source instead.
                return source.scan_columns(dataset, paths)
            columns[tuple(path)] = entry.data
            count = len(entry.data)
        buffers = ScanBuffers(count=count, oids=np.arange(count, dtype=np.int64))
        buffers.columns.update(columns)
        return buffers

    # -- tuple-at-a-time access ----------------------------------------------------------

    def iterate_rows(
        self, dataset: Dataset, paths: Sequence[FieldPath] | None = None
    ) -> Iterator[dict]:
        if paths is None:
            paths = sorted(self.cached_paths(dataset.name))
        buffers = self.scan_columns(dataset, list(paths))
        names = [".".join(path) for path in paths]
        arrays = [buffers.column(tuple(path)) for path in paths]
        for row in range(buffers.count):
            yield {name: _python_value(array[row]) for name, array in zip(names, arrays)}

    def read_value(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        entry = self.manager.lookup(field_cache_key(dataset.name, tuple(path)))
        if entry is None:
            source = self.source_plugins.get(dataset.format)
            if source is None:
                raise PluginError(
                    f"field {'.'.join(path)!r} of {dataset.name!r} is not cached"
                )
            return source.read_value(dataset, oid, path)
        return _python_value(entry.data[int(oid)])


def _type_of(array: np.ndarray) -> t.DataType:
    if array.dtype == object:
        return t.STRING
    if array.dtype.kind == "b":
        return t.BOOL
    if array.dtype.kind == "i":
        return t.INT
    return t.FLOAT


def _python_value(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
