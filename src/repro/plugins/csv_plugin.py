"""CSV input plug-in.

The CSV plug-in serves raw, comma-separated text files in place, without a
load step.  On first access it memory-maps the file and builds a positional
structural index storing the offsets of every Nth field per row (§5.2); later
accesses slice only the bytes of the fields a query needs and convert them on
the fly.  Converted numeric fields are prime candidates for the adaptive
caches (§6), which is how repeated CSV access amortizes its conversion cost in
the Symantec workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.core import types as t
from repro.core.concurrency import make_lock
from repro.errors import PluginError
from repro.plugins.base import (
    FieldPath,
    InputPlugin,
    ScanBuffers,
    count_missing,
    require_flat_path,
)
from repro.storage.catalog import Dataset, DatasetStatistics
from repro.storage.structural_index import CsvStructuralIndex, build_csv_index


@dataclass
class _CsvState:
    """Per-dataset state kept by the plug-in after the first access."""

    data: bytes
    index: CsvStructuralIndex
    header: list[str]
    build_seconds: float


def _convert_int(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        # Exact decimal parse: a float round-trip would round integers above
        # 2**53 (e.g. "9007199254740993.0").
        from decimal import Decimal, InvalidOperation

        try:
            value = Decimal(text.strip())
        except InvalidOperation:
            return int(float(text))
        # int() truncates toward zero, preserving the old int(float(...))
        # behavior for non-integral text while staying exact above 2**53.
        return int(value)


def _convert_date(text: str) -> int:
    text = text.strip()
    if text.isdigit() or (text.startswith("-") and text[1:].isdigit()):
        return int(text)
    import datetime

    parsed = datetime.date.fromisoformat(text)
    return (parsed - datetime.date(1970, 1, 1)).days


_CONVERTERS = {
    "int": _convert_int,
    "float": float,
    "bool": lambda s: s.strip().lower() in ("1", "true", "t", "yes"),
    "string": str,
    "date": _convert_date,
}

_NUMPY_DTYPES = {
    "int": np.int64,
    "float": np.float64,
    "bool": np.bool_,
    "string": object,
    "date": np.int64,
}


def _typed_array(values: list, type_name: str) -> np.ndarray:
    """Pack converted values into the declared dtype; integers beyond int64
    stay exact in an object buffer rather than wrapping or crashing."""
    try:
        return np.asarray(values, dtype=_NUMPY_DTYPES[type_name])
    except OverflowError:
        array = np.empty(len(values), dtype=object)
        array[:] = values
        return array


class CsvPlugin(InputPlugin):
    """Input plug-in for raw CSV files."""

    format_name = "csv"
    field_access_cost = 1.0
    supports_scan_ranges = True

    def __init__(self, memory):
        super().__init__(memory)
        self._states: dict[str, _CsvState] = {}
        self._state_lock = make_lock("CsvPlugin._state_lock")

    # -- dataset state --------------------------------------------------------

    def _state(self, dataset: Dataset) -> _CsvState:
        # Double-checked locking: concurrent workers hitting a cold dataset
        # must not build (and race to publish) the structural index twice;
        # once published, the state is immutable and read lock-free.
        state = self._states.get(dataset.name)
        if state is not None:
            return state
        with self._state_lock:
            state = self._states.get(dataset.name)
            if state is not None:
                return state
            started = time.perf_counter()
            delimiter = dataset.options.get("delimiter", ",")
            has_header = dataset.options.get("has_header", True)
            stride = dataset.options.get("stride", 5)

            def build() -> tuple:
                # One guarded raw-I/O step: mmap faults retry (RES005 when
                # exhausted), parse failures surface as corrupt data (RES006).
                mapped = self.memory.map_file(dataset.path)
                data = bytes(mapped.data) if mapped.mapped else mapped.data
                index = build_csv_index(
                    data, delimiter=delimiter, has_header=has_header, stride=stride
                )
                return data, index

            data, index = self.io_guard("index-build", dataset.name, build)
            header = self._read_header(
                data, dataset, delimiter, has_header, index.field_count
            )
            state = _CsvState(
                data=data,
                index=index,
                header=header,
                build_seconds=time.perf_counter() - started,
            )
            self._states[dataset.name] = state
            return state

    @staticmethod
    def _read_header(
        data: bytes, dataset: Dataset, delimiter: str, has_header: bool, field_count: int
    ) -> list[str]:
        if has_header and data:
            end = data.find(b"\n")
            if end == -1:
                end = len(data)
            return data[:end].decode("utf-8").rstrip("\r").split(delimiter)
        names = dataset.options.get("column_names")
        if names:
            return list(names)
        return [f"c{i}" for i in range(field_count)]

    def invalidate(self, dataset_name: str) -> None:
        """Drop per-dataset state (used when the underlying file changes)."""
        with self._state_lock:
            self._states.pop(dataset_name, None)

    def index_info(self, dataset: Dataset) -> dict:
        """Structural-index metadata used by the benchmarks (size, build time)."""
        state = self._state(dataset)
        return {
            "size_bytes": state.index.size_bytes,
            "file_bytes": len(state.data),
            "build_seconds": state.build_seconds,
            "rows": state.index.num_rows,
        }

    # -- schema and statistics -------------------------------------------------

    def infer_schema(self, dataset: Dataset) -> t.RecordType:
        state = self._state(dataset)
        sample = min(state.index.num_rows, 100)
        fields: list[t.Field] = []
        for column, name in enumerate(state.header):
            inferred = "int"
            for row in range(sample):
                start, end = state.index.field_span(state.data, row, column)
                text = state.data[start:end].decode("utf-8").strip()
                inferred = _widen(inferred, text)
            fields.append(t.Field(name, t.primitive_type(inferred)))
        return t.RecordType(fields)

    def collect_statistics(self, dataset: Dataset) -> DatasetStatistics:
        state = self._state(dataset)
        statistics = DatasetStatistics(cardinality=state.index.num_rows)
        for field in dataset.schema.fields:
            if isinstance(field.dtype, (t.RecordType, t.CollectionType)):
                continue
            try:
                values = self.scan_columns(dataset, [(field.name,)]).column((field.name,))
            except PluginError:
                continue
            statistics.null_counts[field.name] = count_missing(values)
            if not field.dtype.is_numeric():
                continue
            if len(values):
                statistics.min_values[field.name] = float(np.min(values))
                statistics.max_values[field.name] = float(np.max(values))
        return statistics

    # -- bulk access -----------------------------------------------------------

    def scan_columns(self, dataset: Dataset, paths: Sequence[FieldPath]) -> ScanBuffers:
        state = self._state(dataset)
        self.io_checkpoint("scan-columns", dataset.name)
        num_rows = state.index.num_rows
        buffers = ScanBuffers(count=num_rows, oids=np.arange(num_rows, dtype=np.int64))
        for path in paths:
            buffers.columns[path] = self._convert_rows(dataset, state, path, range(num_rows))
        return buffers

    def scan_batches(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        batch_size: int = 4096,
    ):
        """Native batched scan: slice and convert one row range at a time using
        the positional structural index (no per-tuple dict assembly)."""
        state = self._state(dataset)
        num_rows = state.index.num_rows
        paths = [tuple(path) for path in paths]
        for start in range(0, num_rows, batch_size):
            self.io_checkpoint("scan-batch", dataset.name)
            stop = min(start + batch_size, num_rows)
            buffers = ScanBuffers(
                count=stop - start, oids=np.arange(start, stop, dtype=np.int64)
            )
            for path in paths:
                buffers.columns[path] = self._convert_rows(
                    dataset, state, path, range(start, stop)
                )
            yield buffers

    def scan_row_count(self, dataset: Dataset) -> int:
        return self._state(dataset).index.num_rows

    def scan_batch_ranges(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        start: int,
        stop: int,
        batch_size: int = 4096,
    ):
        """Range-partitioned scan for the morsel-driven parallel tier: the
        positional structural index makes any row range directly addressable,
        so disjoint ranges convert concurrently without shared state."""
        state = self._state(dataset)
        stop = min(stop, state.index.num_rows)
        paths = [tuple(path) for path in paths]
        for begin in range(start, stop, batch_size):
            self.io_checkpoint("scan-range", dataset.name)
            end = min(begin + batch_size, stop)
            buffers = ScanBuffers(
                count=end - begin, oids=np.arange(begin, end, dtype=np.int64)
            )
            for path in paths:
                buffers.columns[path] = self._convert_rows(
                    dataset, state, path, range(begin, end)
                )
            yield buffers

    def _convert_rows(
        self, dataset: Dataset, state: _CsvState, path: FieldPath, rows: range
    ) -> np.ndarray:
        """Slice and convert one field for the given row range."""
        data = state.data
        index = state.index
        name = require_flat_path(path)
        column = self._column_index(state, name)
        type_name = self._field_type_name(dataset, name)
        if type_name in ("int", "float"):
            # Bulk conversion of the sliced field values (the Python
            # analogue of the generated per-field conversion code).
            slices = [
                data[span[0]:span[1]]
                for span in (index.field_span(data, row, column) for row in rows)
            ]
            try:
                floats = (
                    np.asarray(slices).astype(np.float64)
                    if slices else np.zeros(0, dtype=np.float64)
                )
            except ValueError:
                floats = None
            if floats is not None:
                if type_name == "int" and len(floats) and \
                        np.all(floats == np.floor(floats)):
                    if not np.any(np.abs(floats) >= 2.0**53):
                        return floats.astype(np.int64)
                    # Integers beyond 2**53 are not exactly representable in
                    # float64; fall through to the exact per-value converter.
                else:
                    return floats
        converter = _CONVERTERS[type_name]
        values = [
            converter(data[span[0]:span[1]].decode("utf-8"))
            for span in (index.field_span(data, row, column) for row in rows)
        ]
        return _typed_array(values, type_name)

    def scan_columns_at(
        self, dataset: Dataset, paths: Sequence[FieldPath], oids: np.ndarray
    ) -> ScanBuffers:
        """Selective (lazy) extraction: parse and convert only the given rows."""
        state = self._state(dataset)
        self.io_checkpoint("scan-columns", dataset.name)
        data = state.data
        index = state.index
        rows = np.asarray(oids, dtype=np.int64)
        buffers = ScanBuffers(count=len(rows), oids=rows)
        for path in paths:
            name = require_flat_path(path)
            column = self._column_index(state, name)
            type_name = self._field_type_name(dataset, name)
            converter = _CONVERTERS[type_name]
            values = [
                converter(data[span[0]:span[1]].decode("utf-8"))
                for span in (index.field_span(data, int(row), column) for row in rows)
            ]
            buffers.columns[path] = _typed_array(values, type_name)
        return buffers

    # -- tuple-at-a-time access --------------------------------------------------

    def iterate_rows(
        self, dataset: Dataset, paths: Sequence[FieldPath] | None = None
    ) -> Iterator[dict]:
        state = self._state(dataset)
        names = (
            [require_flat_path(path) for path in paths]
            if paths is not None
            else list(state.header)
        )
        columns = [self._column_index(state, name) for name in names]
        converters = [
            _CONVERTERS[self._field_type_name(dataset, name)] for name in names
        ]
        data = state.data
        index = state.index
        for row in range(index.num_rows):
            record: dict[str, Any] = {}
            for name, column, converter in zip(names, columns, converters):
                start, end = index.field_span(data, row, column)
                record[name] = converter(data[start:end].decode("utf-8"))
            yield record

    def read_value(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        state = self._state(dataset)
        name = require_flat_path(path)
        column = self._column_index(state, name)
        start, end = state.index.field_span(state.data, int(oid), column)
        converter = _CONVERTERS[self._field_type_name(dataset, name)]
        return converter(state.data[start:end].decode("utf-8"))

    # -- costing ------------------------------------------------------------------

    def scan_cost(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        statistics: DatasetStatistics | None,
    ) -> float:
        cardinality = statistics.cardinality if statistics is not None else 1_000_000
        # Parsing plus conversion per value; the structural index spares the
        # engine from parsing fields it does not need.
        return cardinality * self.field_access_cost * max(len(paths), 1)

    # -- helpers -------------------------------------------------------------------

    def _column_index(self, state: _CsvState, name: str) -> int:
        try:
            return state.header.index(name)
        except ValueError as exc:
            raise PluginError(
                f"CSV file has no column {name!r}; columns: {state.header}"
            ) from exc

    @staticmethod
    def _field_type_name(dataset: Dataset, name: str) -> str:
        if dataset.schema is not None and dataset.schema.has_field(name):
            return dataset.schema.field_type(name).name
        return "string"


def _widen(current: str, text: str) -> str:
    """Widen an inferred column type to accommodate ``text``."""
    if current == "string":
        return "string"
    if text == "":
        return current
    try:
        int(text)
        return current
    except ValueError:
        pass
    try:
        float(text)
        return "float" if current in ("int", "float") else "string"
    except ValueError:
        return "string"
