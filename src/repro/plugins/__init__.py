"""Input and output plug-ins.

Input plug-ins encapsulate data-format heterogeneity: each one knows how to
access a specific file format (CSV, JSON, binary row/column, or an in-memory
cache) and exposes the uniform API of Table 2 to the rest of the engine.
Output plug-ins handle result flushing and cache materialization.
"""

from repro.plugins.base import InputPlugin, ScanBuffers, UnnestBuffers
from repro.plugins.binary_col_plugin import BinaryColumnPlugin
from repro.plugins.binary_row_plugin import BinaryRowPlugin
from repro.plugins.cache_plugin import CachePlugin
from repro.plugins.csv_plugin import CsvPlugin
from repro.plugins.json_plugin import JsonPlugin

__all__ = [
    "InputPlugin",
    "ScanBuffers",
    "UnnestBuffers",
    "CsvPlugin",
    "JsonPlugin",
    "BinaryRowPlugin",
    "BinaryColumnPlugin",
    "CachePlugin",
]
