"""Output plug-ins (§4 and §6).

Output plug-ins handle the two "write" paths of the engine:

* flushing query results to the user in a chosen shape (rows of tuples,
  column arrays, or nested records), and
* materializing caches: given the expression buffers produced during
  execution, an output plug-in decides the serialization format and the
  *degree of eagerness* — cache the converted binary values, or only the
  positions/OIDs needed to re-fetch them lazily.

Different workloads benefit from different choices; the engine's default is
the eager binary-column output plug-in, matching the paper's observation that
compact binary caches give the largest benefit for verbose sources.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np


@dataclass
class MaterializedCache:
    """The product of an output plug-in's cache materialization."""

    data: Any
    size_bytes: int
    eagerness: str  # "eager" (binary values) or "lazy" (positions only)
    description: str


class OutputPlugin(ABC):
    """Base class of output plug-ins."""

    name: str = "abstract"

    @abstractmethod
    def flush_rows(
        self, column_names: Sequence[str], columns: Mapping[str, np.ndarray]
    ) -> list[tuple]:
        """Assemble result rows from column buffers."""

    @abstractmethod
    def materialize_cache(
        self, values: np.ndarray, oids: np.ndarray, description: str
    ) -> MaterializedCache:
        """Materialize a cache for an evaluated expression."""


class BinaryColumnOutput(OutputPlugin):
    """Eager output plug-in: caches hold converted binary values.

    This resembles the binary columns a columnar engine would store, and is
    the default because verbose sources (JSON/CSV) pay the conversion cost
    exactly once.
    """

    name = "binary_column"

    def flush_rows(
        self, column_names: Sequence[str], columns: Mapping[str, np.ndarray]
    ) -> list[tuple]:
        if not column_names:
            return []
        arrays = [columns[name] for name in column_names]
        count = len(arrays[0]) if arrays else 0
        return [
            tuple(_python_value(array[row]) for array in arrays) for row in range(count)
        ]

    def materialize_cache(
        self, values: np.ndarray, oids: np.ndarray, description: str
    ) -> MaterializedCache:
        packed = np.ascontiguousarray(values)
        size = int(packed.nbytes) if packed.dtype != object else int(
            sum(len(str(v)) + 48 for v in packed)
        )
        return MaterializedCache(
            data=packed, size_bytes=size, eagerness="eager", description=description
        )


class PositionalOutput(OutputPlugin):
    """Lazy output plug-in: caches hold only the OIDs of qualifying entries.

    Re-reading a value requires going back to the source through
    ``read_value``; the cache is tiny but each reuse pays the extraction cost
    again.  Used by the eagerness ablation benchmark.
    """

    name = "positional"

    def flush_rows(
        self, column_names: Sequence[str], columns: Mapping[str, np.ndarray]
    ) -> list[tuple]:
        return BinaryColumnOutput().flush_rows(column_names, columns)

    def materialize_cache(
        self, values: np.ndarray, oids: np.ndarray, description: str
    ) -> MaterializedCache:
        packed = np.ascontiguousarray(oids)
        return MaterializedCache(
            data=packed,
            size_bytes=int(packed.nbytes),
            eagerness="lazy",
            description=description,
        )


def _python_value(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
