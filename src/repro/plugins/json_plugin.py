"""JSON input plug-in.

The JSON plug-in queries raw JSON object streams (one object per line, or
whitespace-separated) in place.  On the first access it validates the file and
builds the two-level structural index of §5.2: Level 1 stores the byte span
and type of every token per object, Level 0 maps field paths to Level-1
entries so that schema flexibility (arbitrary field order, optional fields)
does not force a sequential token scan.  When every object carries the same
fields in the same order, Level 0 is dropped (fixed-schema specialization).

Scans slice only the spans of the fields a query needs — nested paths included
— and convert them to binary values on the fly; nested arrays are handled by
the Unnest operator through :meth:`JsonPlugin.scan_unnest`, which parses only
the array spans.
"""

from __future__ import annotations

import json
import operator
import time
from dataclasses import dataclass
from itertools import chain
from typing import Any, Iterator, Sequence

import numpy as np

from repro.core import types as t
from repro.core.concurrency import make_lock
from repro.errors import PluginError
from repro.plugins.base import (
    FieldPath,
    InputPlugin,
    ScanBuffers,
    UnnestBatch,
    UnnestBuffers,
    count_missing,
    dig_path as _dig,
)
from repro.storage.catalog import Dataset, DatasetStatistics
from repro.storage.structural_index import (
    JsonStructuralIndex,
    TYPE_ARRAY,
    TYPE_BOOL,
    TYPE_NULL,
    TYPE_NUMBER,
    TYPE_OBJECT,
    TYPE_STRING,
    build_json_index,
)


@dataclass
class _JsonState:
    """Per-dataset state kept after the first (validating) access."""

    data: bytes
    index: JsonStructuralIndex
    build_seconds: float


class JsonPlugin(InputPlugin):
    """Input plug-in for raw JSON object streams."""

    format_name = "json"
    field_access_cost = 2.5
    supports_scan_ranges = True

    def __init__(self, memory):
        super().__init__(memory)
        self._states: dict[str, _JsonState] = {}
        self._state_lock = make_lock("JsonPlugin._state_lock")

    # -- dataset state ---------------------------------------------------------

    def _state(self, dataset: Dataset) -> _JsonState:
        # Double-checked locking: the structural index must be built exactly
        # once even when parallel workers hit a cold dataset concurrently;
        # after publication the state is immutable and read lock-free.
        state = self._states.get(dataset.name)
        if state is not None:
            return state
        with self._state_lock:
            state = self._states.get(dataset.name)
            if state is not None:
                return state
            started = time.perf_counter()

            def build() -> tuple:
                # One guarded raw-I/O step: the mmap (where a transient
                # OSError can surface) plus the structural-index parse
                # (where corrupt bytes surface as ValueError -> RES006).
                mapped = self.memory.map_file(dataset.path)
                data = bytes(mapped.data) if mapped.mapped else mapped.data
                index = build_json_index(
                    data, max_depth=dataset.options.get("max_depth", 8)
                )
                return data, index

            data, index = self.io_guard("index-build", dataset.name, build)
            state = _JsonState(
                data=data, index=index, build_seconds=time.perf_counter() - started
            )
            self._states[dataset.name] = state
            return state

    def invalidate(self, dataset_name: str) -> None:
        """Drop per-dataset state (used when the underlying file changes)."""
        with self._state_lock:
            self._states.pop(dataset_name, None)

    def index_info(self, dataset: Dataset) -> dict:
        """Structural-index metadata used by the benchmarks."""
        state = self._state(dataset)
        return {
            "size_bytes": state.index.size_bytes,
            "file_bytes": len(state.data),
            "build_seconds": state.build_seconds,
            "objects": state.index.num_objects,
            "fixed_schema": state.index.fixed_schema,
        }

    # -- schema and statistics ----------------------------------------------------

    def infer_schema(self, dataset: Dataset) -> t.RecordType:
        state = self._state(dataset)
        sample_size = min(dataset.options.get("sample_size", 50), state.index.num_objects)
        merged: t.DataType | None = None
        for position in range(sample_size):
            start, end = state.index.object_span(position)
            record = json.loads(state.data[start:end])
            inferred = t.infer_type(record)
            merged = inferred if merged is None else t.merge_types(merged, inferred)
        if merged is None:
            return t.RecordType([])
        if not isinstance(merged, t.RecordType):
            raise PluginError("JSON dataset does not contain objects")
        return merged

    def collect_statistics(self, dataset: Dataset) -> DatasetStatistics:
        state = self._state(dataset)
        statistics = DatasetStatistics(cardinality=state.index.num_objects)
        for field in dataset.schema.fields:
            if isinstance(field.dtype, (t.RecordType, t.CollectionType)):
                continue
            try:
                values = self.scan_columns(dataset, [(field.name,)]).column((field.name,))
            except PluginError:
                continue
            statistics.null_counts[field.name] = count_missing(values)
            if not field.dtype.is_numeric():
                continue
            if len(values):
                statistics.min_values[field.name] = float(np.nanmin(values))
                statistics.max_values[field.name] = float(np.nanmax(values))
        return statistics

    # -- bulk access ----------------------------------------------------------------

    def scan_columns(self, dataset: Dataset, paths: Sequence[FieldPath]) -> ScanBuffers:
        state = self._state(dataset)
        self.io_checkpoint("scan-columns", dataset.name)
        count = state.index.num_objects
        buffers = ScanBuffers(count=count, oids=np.arange(count, dtype=np.int64))
        for path in paths:
            buffers.columns[path] = self._extract_column(dataset, state, path)
        return buffers

    def scan_batches(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        batch_size: int = 4096,
    ):
        """Native batched scan: extract each column for one object range at a
        time through the structural index (missing numeric fields surface as
        NaN, exactly as in :meth:`scan_columns`)."""
        state = self._state(dataset)
        count = state.index.num_objects
        for start in range(0, count, batch_size):
            self.io_checkpoint("scan-batch", dataset.name)
            stop = min(start + batch_size, count)
            positions = np.arange(start, stop, dtype=np.int64)
            buffers = ScanBuffers(count=stop - start, oids=positions)
            for path in paths:
                buffers.columns[tuple(path)] = self._extract_column(
                    dataset, state, tuple(path), positions=positions
                )
            yield buffers

    def scan_row_count(self, dataset: Dataset) -> int:
        return self._state(dataset).index.num_objects

    def scan_batch_ranges(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        start: int,
        stop: int,
        batch_size: int = 4096,
    ):
        """Range-partitioned scan for the morsel-driven parallel tier: the
        structural index addresses any object range directly, so disjoint
        ranges extract concurrently without shared state."""
        state = self._state(dataset)
        stop = min(stop, state.index.num_objects)
        for begin in range(start, stop, batch_size):
            self.io_checkpoint("scan-range", dataset.name)
            end = min(begin + batch_size, stop)
            positions = np.arange(begin, end, dtype=np.int64)
            buffers = ScanBuffers(count=end - begin, oids=positions)
            for path in paths:
                buffers.columns[tuple(path)] = self._extract_column(
                    dataset, state, tuple(path), positions=positions
                )
            yield buffers

    def scan_columns_at(
        self, dataset: Dataset, paths: Sequence[FieldPath], oids: np.ndarray
    ) -> ScanBuffers:
        """Selective (lazy) extraction: convert fields only for the given objects."""
        state = self._state(dataset)
        self.io_checkpoint("scan-columns", dataset.name)
        rows = np.asarray(oids, dtype=np.int64)
        buffers = ScanBuffers(count=len(rows), oids=rows)
        for path in paths:
            buffers.columns[tuple(path)] = self._extract_column(
                dataset, state, tuple(path), positions=rows
            )
        return buffers

    def _extract_column(
        self,
        dataset: Dataset,
        state: _JsonState,
        path: FieldPath,
        positions: np.ndarray | None = None,
    ) -> np.ndarray:
        key = ".".join(path)
        data = state.data
        index = state.index
        dtype_name = self._field_type_name(dataset, path)
        objects: list[int] = (
            list(range(index.num_objects))
            if positions is None
            else [int(p) for p in positions]
        )
        if dtype_name in ("int", "float", "date"):
            column = self._extract_numeric_column(state, key, dtype_name, objects)
            if column is not None:
                return column
        values: list[Any] = []
        for position in objects:
            span = index.field_span(position, key)
            if span is None:
                values.append(None)
                continue
            start, end, type_code = span
            values.append(_convert_span(data, start, end, type_code))
        return _to_array(values, dtype_name)

    @staticmethod
    def _extract_numeric_column(
        state: _JsonState, key: str, dtype_name: str, objects: list[int]
    ) -> np.ndarray | None:
        """Fast path for numeric fields: slice the value spans and convert them
        in bulk (the Python analogue of the generated conversion code).
        Returns ``None`` when a non-numeric token is encountered."""
        data = state.data
        index = state.index
        slices: list[bytes] = []
        missing = False
        vectorized = index.column_spans(key, objects if objects is not None else None)
        if vectorized is not None:
            starts, ends, types = vectorized
            if not np.all((types == TYPE_NUMBER) | (types == TYPE_NULL) | (starts < 0)):
                return None
            start_list = starts.tolist()
            end_list = ends.tolist()
            type_list = types.tolist()
            for start, end, type_code in zip(start_list, end_list, type_list):
                if start < 0 or type_code == TYPE_NULL:
                    slices.append(b"nan")
                    missing = True
                else:
                    slices.append(data[start:end])
        else:
            for position in objects:
                span = index.field_span(position, key)
                if span is None:
                    slices.append(b"nan")
                    missing = True
                    continue
                start, end, type_code = span
                if type_code == TYPE_NUMBER:
                    slices.append(data[start:end])
                elif type_code == TYPE_NULL:
                    slices.append(b"nan")
                    missing = True
                else:
                    return None
        if not slices:
            return np.zeros(0, dtype=np.float64)
        try:
            floats = np.asarray(slices).astype(np.float64)
        except ValueError:
            return None
        if dtype_name in ("int", "date"):
            finite = floats[np.isfinite(floats)]
            if len(finite) and np.any(np.abs(finite) >= 2.0**53):
                # Integers beyond 2**53 are not exactly representable in
                # float64; fall back to the exact per-span conversion path
                # (whether or not some values are missing).
                return None
            if not missing and np.all(floats == np.floor(floats)):
                return floats.astype(np.int64)
        return floats

    def scan_unnest_batch(
        self,
        dataset: Dataset,
        collection_path: FieldPath,
        element_paths: Sequence[FieldPath],
        parent_oids: np.ndarray,
        outer: bool = False,
    ) -> UnnestBatch:
        """Batch-native unnest: one offset-vector pass over the parent batch.

        The structural index resolves every requested parent's array span in
        one vectorized lookup (``column_spans``) where the schema is fixed;
        only the array spans themselves are parsed.  Flattened element values
        are collected once per element path and converted in one bulk
        ``_to_array`` call — no per-parent buffers, no per-element Python
        round-trips through the Table-2 iterator protocol.
        """
        self.io_checkpoint("scan-unnest", dataset.name)
        state = self._state(dataset)
        data = state.data
        index = state.index
        key = ".".join(collection_path)
        element_paths = [tuple(path) for path in element_paths]
        num_parents = len(parent_oids)
        spans = index.column_spans(key, np.asarray(parent_oids, dtype=np.int64))
        if spans is not None:
            # Fixed-schema fast path: the span triple of every parent comes
            # from three dense array gathers; present/absent/null collections
            # are classified with vectorized masks.
            starts, ends, types = spans
            present = (starts >= 0) & (types != TYPE_NULL)
            if not np.all(types[present] == TYPE_ARRAY):
                raise PluginError(f"field {key!r} is not a nested collection")
            present_slots = np.nonzero(present)[0]
            start_list = starts[present_slots].tolist()
            end_list = ends[present_slots].tolist()
        else:
            present_slots_list: list[int] = []
            start_list = []
            end_list = []
            for slot, position in enumerate(parent_oids):
                span = index.field_span(int(position), key)
                if span is None:
                    continue
                start, end, type_code = span
                if type_code == TYPE_NULL:
                    continue
                if type_code != TYPE_ARRAY:
                    raise PluginError(f"field {key!r} is not a nested collection")
                present_slots_list.append(slot)
                start_list.append(start)
                end_list.append(end)
            present_slots = np.asarray(present_slots_list, dtype=np.int64)
        # Slice every present array span (C-level slice objects) and parse
        # them all with ONE ``json.loads`` of the joined spans: the
        # per-parent decoder round-trip is the dominant cost of the
        # per-parent path.
        chunks = map(data.__getitem__, map(slice, start_list, end_list))
        joined = b"[" + b",".join(chunks) + b"]"
        parsed = json.loads(joined) if len(present_slots) else []
        collections = np.empty(num_parents, dtype=object)
        collections.fill(())
        if len(parsed):
            scattered = np.empty(len(parsed), dtype=object)
            scattered[:] = parsed
            collections[present_slots] = scattered
        collections = collections.tolist()
        if outer:
            # The null child row an outer unnest emits for an empty or
            # missing collection: one None element.
            collections = [
                elements if elements else (None,) for elements in collections
            ]
        # Offset vector + one flattened element list, both built C-side.
        repeats = np.fromiter(
            map(len, collections), dtype=np.int64, count=len(collections)
        )
        flat = list(chain.from_iterable(collections))
        batch = UnnestBatch(count=len(flat), repeats=repeats)
        for path in element_paths:
            values = _extract_element_values(flat, path)
            batch.columns[path] = _to_array(
                values, self._element_type_name(dataset, collection_path, path)
            )
        return batch

    #: Parents flattened per ``scan_unnest_batch`` call when ``scan_unnest``
    #: covers a whole dataset: bounds peak memory (joined spans + parsed
    #: element dicts are alive per chunk only, like the batch tiers' 4096-
    #: parent batches) while keeping the per-call overhead amortized.
    _UNNEST_CHUNK_PARENTS = 65536

    def scan_unnest(
        self,
        dataset: Dataset,
        collection_path: FieldPath,
        element_paths: Sequence[FieldPath],
        parent_oids: np.ndarray | None = None,
    ) -> UnnestBuffers:
        if parent_oids is None:
            count = self._state(dataset).index.num_objects
            parent_oids = np.arange(count, dtype=np.int64)
        element_paths = [tuple(path) for path in element_paths]
        chunks = [
            self.scan_unnest_batch(
                dataset,
                collection_path,
                element_paths,
                parent_oids[start : start + self._UNNEST_CHUNK_PARENTS],
            )
            for start in range(0, len(parent_oids), self._UNNEST_CHUNK_PARENTS)
        ] or [
            self.scan_unnest_batch(
                dataset, collection_path, element_paths, parent_oids
            )
        ]
        positions = [chunk.parent_positions() for chunk in chunks]
        for index, offset in enumerate(
            range(0, len(parent_oids), self._UNNEST_CHUNK_PARENTS)
        ):
            positions[index] += offset
        buffers = UnnestBuffers(
            count=sum(chunk.count for chunk in chunks),
            parent_positions=(
                np.concatenate(positions) if positions else np.zeros(0, np.int64)
            ),
        )
        for path in element_paths:
            buffers.columns[path] = _concat_columns(
                [chunk.column(path) for chunk in chunks]
            )
        return buffers

    # -- tuple-at-a-time access -------------------------------------------------------

    def iterate_rows(
        self, dataset: Dataset, paths: Sequence[FieldPath] | None = None
    ) -> Iterator[dict]:
        state = self._state(dataset)
        data = state.data
        index = state.index
        if paths is None:
            for position in range(index.num_objects):
                start, end = index.object_span(position)
                yield json.loads(data[start:end])
            return
        keys = [".".join(path) for path in paths]
        for position in range(index.num_objects):
            record: dict[str, Any] = {}
            for path, key in zip(paths, keys):
                span = index.field_span(position, key)
                if span is None:
                    value = self._read_via_parse(state, position, path)
                else:
                    start, end, type_code = span
                    value = _convert_span(data, start, end, type_code)
                _assign(record, path, value)
            yield record

    def read_value(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        state = self._state(dataset)
        span = state.index.field_span(int(oid), ".".join(path))
        if span is None:
            return self._read_via_parse(state, int(oid), path)
        start, end, type_code = span
        return _convert_span(state.data, start, end, type_code)

    def read_path(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        return self.read_value(dataset, oid, path)

    # -- costing -------------------------------------------------------------------------

    def scan_cost(
        self,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        statistics: DatasetStatistics | None,
    ) -> float:
        cardinality = statistics.cardinality if statistics is not None else 1_000_000
        return cardinality * self.field_access_cost * max(len(paths), 1)

    # -- helpers -------------------------------------------------------------------------

    def _read_via_parse(self, state: _JsonState, position: int, path: FieldPath) -> Any:
        """Fallback for paths not present in the structural index (e.g. a field
        nested inside an array element)."""
        start, end = state.index.object_span(position)
        record = json.loads(state.data[start:end])
        return _dig(record, path)

    @staticmethod
    def _field_type_name(dataset: Dataset, path: FieldPath) -> str:
        if dataset.schema is None:
            return "float"
        try:
            resolved = dataset.schema.resolve_path(path)
        except Exception:
            return "float"
        return resolved.name if resolved.is_primitive() else "string"

    @staticmethod
    def _element_type_name(
        dataset: Dataset, collection_path: FieldPath, element_path: FieldPath
    ) -> str:
        if dataset.schema is None:
            return "float"
        try:
            collection = dataset.schema.resolve_path(collection_path)
        except Exception:
            return "float"
        if not isinstance(collection, t.CollectionType):
            return "float"
        element = collection.element
        if not element_path:
            return element.name if element.is_primitive() else "string"
        if isinstance(element, t.RecordType):
            try:
                resolved = element.resolve_path(element_path)
            except Exception:
                return "float"
            return resolved.name if resolved.is_primitive() else "string"
        return "float"


# ---------------------------------------------------------------------------
# Span conversion helpers
# ---------------------------------------------------------------------------


def _concat_columns(parts: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-chunk column buffers.  A chunk-local missing value may
    have demoted one chunk to an object (or NaN-float) buffer; concatenation
    must then widen the whole column exactly as a single-shot conversion
    would, so an explicit object merge avoids NumPy promoting to strings."""
    if len(parts) == 1:
        return parts[0]
    if any(part.dtype == object for part in parts):
        merged = np.empty(sum(len(part) for part in parts), dtype=object)
        position = 0
        for part in parts:
            merged[position : position + len(part)] = part
            position += len(part)
        return merged
    return np.concatenate(parts)


def _extract_element_values(flat: list, path: FieldPath) -> list:
    """One element field, gathered across a flattened element list.

    The hot path is an ``operator.itemgetter`` map (C-level) that succeeds
    whenever every element is a dict carrying the field; schema-flexible
    inputs (missing fields, scalar or null elements) fall back to the shared
    ``dig_path`` rule.
    """
    if not path:
        return list(flat)
    if len(path) == 1:
        try:
            return list(map(operator.itemgetter(path[0]), flat))
        except (KeyError, TypeError, IndexError):
            pass
    return [_dig(element, path) for element in flat]


def _convert_span(data: bytes, start: int, end: int, type_code: int) -> Any:
    text = data[start:end]
    if type_code == TYPE_NUMBER:
        decoded = text.decode("utf-8")
        if "." in decoded or "e" in decoded or "E" in decoded:
            return float(decoded)
        return int(decoded)
    if type_code == TYPE_STRING:
        return json.loads(text)
    if type_code == TYPE_BOOL:
        return text == b"true"
    if type_code == TYPE_NULL:
        return None
    # objects and arrays: parse the span only
    return json.loads(text)


def _assign(record: dict, path: FieldPath, value: Any) -> None:
    current = record
    for step in path[:-1]:
        current = current.setdefault(step, {})
    current[path[-1] if path else "value"] = value


def _to_array(values: list, dtype_name: str) -> np.ndarray:
    """Convert extracted values to a NumPy buffer, mapping missing numeric
    values to NaN so vectorized predicates remain well-defined.  Values that do
    not convert to the declared type fall back to an object buffer (schema
    flexibility must never fail a scan)."""
    try:
        if dtype_name in ("int", "date"):
            try:
                # Clean integer columns convert C-side in one shot; None or
                # out-of-range values raise and take the per-value path.
                return np.asarray(values, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                pass
            if any(v is None for v in values):
                if any(
                    v is not None and abs(int(v)) >= 2**53 for v in values
                ):
                    # NaN-encoding would round these; keep exact ints (and
                    # None) in an object buffer.
                    array = np.empty(len(values), dtype=object)
                    array[:] = values
                    return array
                return np.asarray(
                    [np.nan if v is None else float(v) for v in values], dtype=np.float64
                )
            return np.asarray([int(v) for v in values], dtype=np.int64)
        if dtype_name == "float":
            try:
                # NumPy converts None to NaN for float dtypes, which is
                # exactly this engine's missing-value encoding.
                return np.asarray(values, dtype=np.float64)
            except (TypeError, ValueError, OverflowError):
                pass
            return np.asarray(
                [np.nan if v is None else float(v) for v in values], dtype=np.float64
            )
        if dtype_name == "bool":
            if any(v is None for v in values):
                # A missing boolean must stay missing: ``bool(None)`` would
                # materialize as False and make predicates / NULLS LAST sorts
                # / aggregates diverge from the tuple-at-a-time tier.  Object
                # buffers carry None through ``types.is_missing``.
                array = np.empty(len(values), dtype=object)
                array[:] = [None if v is None else bool(v) for v in values]
                return array
            return np.asarray([bool(v) for v in values], dtype=np.bool_)
    except (TypeError, ValueError, OverflowError):
        pass
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array
