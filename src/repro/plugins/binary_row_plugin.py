"""Binary row input plug-in.

Serves row tables (packed structured arrays).  Row-major binary storage reads
whole tuples, so per-field access gathers from the memory-mapped structured
array; it remains far cheaper than text parsing but costs slightly more than
the column format when only a few fields are needed, which the cost model
reflects.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.core import types as t
from repro.core.concurrency import make_lock
from repro.plugins.base import (
    FieldPath,
    InputPlugin,
    ScanBuffers,
    count_missing,
    require_flat_path,
)
from repro.storage.binary_format import RowTable, read_row_table
from repro.storage.catalog import Dataset, DatasetStatistics


class BinaryRowPlugin(InputPlugin):
    """Input plug-in for row tables produced by
    :func:`repro.storage.binary_format.write_row_table`."""

    format_name = "binary_row"
    field_access_cost = 0.1

    def __init__(self, memory):
        super().__init__(memory)
        self._tables: dict[str, RowTable] = {}
        self._table_lock = make_lock("BinaryRowPlugin._table_lock")

    def _table(self, dataset: Dataset) -> RowTable:
        # Double-checked locking: load the table exactly once even under
        # concurrent first access.  The per-tuple batch shim stays the scan
        # path (supports_scan_ranges is False), so the parallel tier
        # transparently leaves this format to the serial executors.
        table = self._tables.get(dataset.name)
        if table is not None:
            return table
        with self._table_lock:
            table = self._tables.get(dataset.name)
            if table is None:
                # One guarded raw-I/O step: the header read + record mmap can
                # fault transiently (retried); a bad header surfaces as
                # corrupt data.  Batch scans go through the base-class shim,
                # which has its own per-batch injection checkpoint.
                table = self.io_guard(
                    "table-load", dataset.name, read_row_table, dataset.path
                )
                self._tables[dataset.name] = table
            return table

    def invalidate(self, dataset_name: str) -> None:
        with self._table_lock:
            self._tables.pop(dataset_name, None)

    # -- schema and statistics -----------------------------------------------

    def infer_schema(self, dataset: Dataset) -> t.RecordType:
        return self._table(dataset).schema

    def collect_statistics(self, dataset: Dataset) -> DatasetStatistics:
        table = self._table(dataset)
        statistics = DatasetStatistics(cardinality=table.row_count)
        for field in table.schema.fields:
            column = table.column(field.name)
            statistics.null_counts[field.name] = count_missing(column)
            if not field.dtype.is_numeric():
                continue
            if len(column):
                statistics.min_values[field.name] = float(np.min(column))
                statistics.max_values[field.name] = float(np.max(column))
        return statistics

    # -- bulk access ------------------------------------------------------------

    def scan_columns(self, dataset: Dataset, paths: Sequence[FieldPath]) -> ScanBuffers:
        table = self._table(dataset)
        self.io_checkpoint("scan-columns", dataset.name)
        buffers = ScanBuffers(
            count=table.row_count, oids=np.arange(table.row_count, dtype=np.int64)
        )
        for path in paths:
            name = require_flat_path(path)
            column = np.asarray(table.column(name))
            if column.dtype.kind == "U":
                column = column.astype(object)
            buffers.columns[path] = column
        return buffers

    # -- tuple-at-a-time access ----------------------------------------------------

    def iterate_rows(
        self, dataset: Dataset, paths: Sequence[FieldPath] | None = None
    ) -> Iterator[dict]:
        table = self._table(dataset)
        names = (
            [require_flat_path(path) for path in paths]
            if paths is not None
            else table.schema.field_names()
        )
        data = table.data
        for row in range(table.row_count):
            record = data[row]
            yield {name: _python_value(record[name]) for name in names}

    def read_value(self, dataset: Dataset, oid: int, path: FieldPath) -> Any:
        table = self._table(dataset)
        name = require_flat_path(path)
        return _python_value(table.data[int(oid)][name])


def _python_value(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
