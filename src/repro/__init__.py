"""repro — a reproduction of Proteus (VLDB 2016).

"Fast Queries Over Heterogeneous Data Through Engine Customization"
(Karpathiotakis, Alagiannis, Ailamaki).  The package provides:

* :class:`repro.ProteusEngine` — the query engine: register raw CSV, JSON and
  relational binary datasets and query them (SQL or comprehension syntax)
  through a per-query specialized execution engine with adaptive caching,
* ``repro.baselines`` — simulated comparator systems (row stores, column
  stores, a document store and a federated combination) used by the
  reproduced experiments,
* ``repro.workloads`` — deterministic TPC-H-derived and Symantec-like
  workload generators,
* ``repro.bench`` — the harness that regenerates every figure and table of the
  paper's evaluation.
"""

from repro.core.engine import PreparedQuery, ProteusEngine, QueryResult, ResultSet
from repro.errors import ProteusError
from repro.serve import ProteusServer

__version__ = "1.0.0"

__all__ = [
    "PreparedQuery",
    "ProteusEngine",
    "ProteusServer",
    "QueryResult",
    "ResultSet",
    "ProteusError",
    "__version__",
]
