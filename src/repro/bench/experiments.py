"""Experiment drivers.

One function per table/figure of the paper's evaluation (§7).  Each driver
materializes the workload, attaches it to Proteus and to the simulated
comparators, runs the figure's query grid, cross-validates every system's
results against Proteus, and returns an
:class:`~repro.bench.reporting.ExperimentReport` whose shape mirrors the
paper's plot (systems × query instances).  The benchmark files under
``benchmarks/`` call these drivers and print the reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.baselines import (
    DbmsCLikeEngine,
    DbmsXLikeEngine,
    FederatedEngine,
    MongoLikeEngine,
    MonetLikeEngine,
    PostgresLikeEngine,
)
from repro.bench import data as bench_data
from repro.bench.reporting import ExperimentReport
from repro.bench.systems import (
    BaselineAdapter,
    ProteusAdapter,
    QueryMeasurement,
    SystemAdapter,
    results_match,
)
from repro.workloads import symantec, templates, tpch
from repro.workloads.query_spec import QuerySpec

PROTEUS = "proteus"
POSTGRES = "postgres_like"
DBMS_X = "dbms_x_like"
MONET = "monet_like"
DBMS_C = "dbms_c_like"
MONGO = "mongo_like"
FEDERATED = "federated_dbmsc_mongo"

JSON_SYSTEMS = (POSTGRES, DBMS_X, MONET, DBMS_C, MONGO, PROTEUS)
JSON_SYSTEMS_CORE = (POSTGRES, DBMS_X, MONGO, PROTEUS)
BINARY_SYSTEMS = (POSTGRES, DBMS_X, MONET, DBMS_C, PROTEUS)


# ---------------------------------------------------------------------------
# Generic runner
# ---------------------------------------------------------------------------


def run_queries(
    title: str,
    specs: Sequence[QuerySpec],
    adapters: Sequence[SystemAdapter],
    reference: str = PROTEUS,
    verify: bool = True,
    only: dict[str, Callable[[QuerySpec], bool]] | None = None,
) -> ExperimentReport:
    """Run every query on every adapter (skipping unsupported combinations),
    cross-validating results against the reference system."""
    measurements: list[QueryMeasurement] = []
    notes: list[str] = []
    reference_results: dict[str, list[tuple]] = {}
    reference_adapter = next((a for a in adapters if a.name == reference), None)
    if reference_adapter is not None:
        for spec in specs:
            measurement = reference_adapter.run(spec)
            measurements.append(measurement)
            reference_results[spec.name] = measurement.result
    for adapter in adapters:
        if adapter.name == reference:
            continue
        for spec in specs:
            if not adapter.supports(spec):
                continue
            if only is not None and adapter.name in only and not only[adapter.name](spec):
                continue
            measurement = adapter.run(spec)
            measurements.append(measurement)
            if verify and spec.name in reference_results:
                if not results_match(reference_results[spec.name], measurement.result):
                    notes.append(
                        f"result mismatch on {spec.name}: {adapter.name} vs {reference}"
                    )
    return ExperimentReport(title=title, measurements=measurements, notes=notes)


# ---------------------------------------------------------------------------
# Adapter construction
# ---------------------------------------------------------------------------


def _baseline(name: str) -> BaselineAdapter:
    engines = {
        POSTGRES: PostgresLikeEngine,
        DBMS_X: DbmsXLikeEngine,
        MONET: MonetLikeEngine,
        DBMS_C: DbmsCLikeEngine,
        MONGO: MongoLikeEngine,
        FEDERATED: FederatedEngine,
    }
    return BaselineAdapter(engines[name]())


def json_micro_adapters(
    files: tpch.TpchFiles,
    systems: Iterable[str] = JSON_SYSTEMS,
    with_orders: bool = False,
    with_denormalized: bool = False,
    enable_caching: bool = False,
) -> list[SystemAdapter]:
    """Adapters for the JSON micro-benchmarks (TPC-H lineitem/orders as JSON)."""
    adapters: list[SystemAdapter] = []
    for name in systems:
        if name == PROTEUS:
            adapter: SystemAdapter = ProteusAdapter(enable_caching=enable_caching)
            adapter.attach_json("lineitem", files.lineitem_json, schema=tpch.LINEITEM_SCHEMA)
            if with_orders:
                adapter.attach_json("orders", files.orders_json, schema=tpch.ORDERS_SCHEMA)
            if with_denormalized:
                adapter.attach_json(
                    "orders_denorm",
                    files.orders_denormalized_json,
                    schema=tpch.DENORMALIZED_ORDERS_SCHEMA,
                )
            adapter.warm_up("lineitem")
            if with_orders:
                adapter.warm_up("orders")
            if with_denormalized:
                adapter.warm_up("orders_denorm")
        else:
            adapter = _baseline(name)
            adapter.attach_json("lineitem", files.lineitem_json)
            if with_orders:
                adapter.attach_json("orders", files.orders_json)
            if with_denormalized:
                adapter.attach_json("orders_denorm", files.orders_denormalized_json)
        adapters.append(adapter)
    return adapters


def binary_micro_adapters(
    files: tpch.TpchFiles,
    systems: Iterable[str] = BINARY_SYSTEMS,
    with_orders: bool = False,
) -> list[SystemAdapter]:
    """Adapters for the binary micro-benchmarks (TPC-H as binary columns)."""
    adapters: list[SystemAdapter] = []
    for name in systems:
        if name == PROTEUS:
            adapter: SystemAdapter = ProteusAdapter()
            adapter.attach_binary_columns("lineitem", files.lineitem_columns)
            if with_orders:
                adapter.attach_binary_columns("orders", files.orders_columns)
        else:
            adapter = _baseline(name)
            adapter.attach_binary_columns("lineitem", files.lineitem_columns)
            if with_orders:
                adapter.attach_binary_columns("orders", files.orders_columns)
        adapters.append(adapter)
    return adapters


# ---------------------------------------------------------------------------
# Figures 5-12: TPC-H micro-benchmarks
# ---------------------------------------------------------------------------


def _thresholds(files: tpch.TpchFiles) -> dict[float, int]:
    return {s: files.tables.orderkey_threshold(s) for s in templates.SELECTIVITIES}


def figure5(scale: float = 0.3, systems: Sequence[str] = JSON_SYSTEMS,
            verify: bool = True) -> ExperimentReport:
    """Figure 5: projection-intensive queries over JSON data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = json_micro_adapters(files, systems)
    specs = [
        templates.projection_query("lineitem", threshold, variant, selectivity)
        for variant in templates.PROJECTION_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 5: JSON projections", specs, adapters, verify=verify)


def figure6(scale: float = 0.5, systems: Sequence[str] = BINARY_SYSTEMS,
            verify: bool = True) -> ExperimentReport:
    """Figure 6: projection-intensive queries over binary relational data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = binary_micro_adapters(files, systems)
    specs = [
        templates.projection_query("lineitem", threshold, variant, selectivity)
        for variant in templates.PROJECTION_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 6: binary projections", specs, adapters, verify=verify)


def figure7(scale: float = 0.3, systems: Sequence[str] = JSON_SYSTEMS_CORE,
            verify: bool = True) -> ExperimentReport:
    """Figure 7: selection queries over JSON data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = json_micro_adapters(files, systems)
    specs = [
        templates.selection_query("lineitem", threshold, predicates, selectivity)
        for predicates in templates.SELECTION_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 7: JSON selections", specs, adapters, verify=verify)


def figure8(scale: float = 0.5, systems: Sequence[str] = BINARY_SYSTEMS,
            verify: bool = True) -> ExperimentReport:
    """Figure 8: selection queries over binary relational data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = binary_micro_adapters(files, systems)
    specs = [
        templates.selection_query("lineitem", threshold, predicates, selectivity)
        for predicates in templates.SELECTION_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 8: binary selections", specs, adapters, verify=verify)


def figure9(scale: float = 0.2, systems: Sequence[str] = JSON_SYSTEMS_CORE,
            verify: bool = True) -> ExperimentReport:
    """Figure 9: join and unnest queries over JSON data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = json_micro_adapters(
        files, systems, with_orders=True, with_denormalized=True
    )
    thresholds = _thresholds(files)
    specs = [
        templates.join_query("orders", "lineitem", threshold, variant, selectivity)
        for variant in templates.JOIN_VARIANTS
        for selectivity, threshold in thresholds.items()
    ]
    specs += [
        templates.unnest_query("orders_denorm", threshold, selectivity)
        for selectivity, threshold in thresholds.items()
    ]
    # MongoDB has no join support: the paper reports it only for the first
    # join variant (as an indication) and for the unnest case.
    only = {
        MONGO: lambda spec: spec.name.startswith(("join_count", "unnest")),
    }
    return run_queries("Figure 9: JSON joins & unnest", specs, adapters,
                       verify=verify, only=only)


def figure10(scale: float = 0.5, systems: Sequence[str] = BINARY_SYSTEMS,
             verify: bool = True) -> ExperimentReport:
    """Figure 10: join queries over binary relational data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = binary_micro_adapters(files, systems, with_orders=True)
    specs = [
        templates.join_query("orders", "lineitem", threshold, variant, selectivity)
        for variant in templates.JOIN_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 10: binary joins", specs, adapters, verify=verify)


def figure11(scale: float = 0.3, systems: Sequence[str] = JSON_SYSTEMS_CORE,
             verify: bool = True) -> ExperimentReport:
    """Figure 11: aggregate (group-by) queries over JSON data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = json_micro_adapters(files, systems)
    specs = [
        templates.groupby_query("lineitem", threshold, aggregates, selectivity)
        for aggregates in templates.GROUPBY_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 11: JSON group-bys", specs, adapters, verify=verify)


def figure12(scale: float = 0.5, systems: Sequence[str] = BINARY_SYSTEMS,
             verify: bool = True) -> ExperimentReport:
    """Figure 12: aggregate (group-by) queries over binary relational data."""
    files = bench_data.tpch_files(scale=scale)
    adapters = binary_micro_adapters(files, systems)
    specs = [
        templates.groupby_query("lineitem", threshold, aggregates, selectivity)
        for aggregates in templates.GROUPBY_VARIANTS
        for selectivity, threshold in _thresholds(files).items()
    ]
    return run_queries("Figure 12: binary group-bys", specs, adapters, verify=verify)


# ---------------------------------------------------------------------------
# Figure 13: effect of caching
# ---------------------------------------------------------------------------


@dataclass
class CachingSpeedup:
    """One bar of Figure 13: the speedup of the cached-predicate configuration."""

    template: str
    selectivity: float
    baseline_seconds: float
    cached_seconds: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.cached_seconds if self.cached_seconds else 0.0


def figure13(scale: float = 0.3) -> list[CachingSpeedup]:
    """Figure 13: speedup from serving predicate columns out of the adaptive
    caches for a projection-heavy and a selection-heavy JSON query."""
    files = bench_data.tpch_files(scale=scale)
    thresholds = _thresholds(files)

    def build(enable_caching: bool) -> ProteusAdapter:
        adapter = ProteusAdapter(
            name="proteus_cached" if enable_caching else "proteus_baseline",
            enable_caching=enable_caching,
        )
        adapter.attach_json("lineitem", files.lineitem_json, schema=tpch.LINEITEM_SCHEMA)
        adapter.warm_up("lineitem")
        return adapter

    results: list[CachingSpeedup] = []
    for template_name in ("projection", "selection"):
        for selectivity, threshold in thresholds.items():
            if template_name == "projection":
                spec = templates.projection_query("lineitem", threshold, "4agg", selectivity)
                priming = templates.selection_query("lineitem", threshold, 1, selectivity)
            else:
                spec = templates.selection_query("lineitem", threshold, 4, selectivity)
                priming = templates.selection_query("lineitem", threshold, 4, selectivity)
            baseline = build(enable_caching=False)
            baseline_measurement = baseline.run(spec)
            cached = build(enable_caching=True)
            cached.run(priming)  # populates the caches with the predicate columns
            cached_measurement = cached.run(spec)
            results.append(
                CachingSpeedup(
                    template=template_name,
                    selectivity=selectivity,
                    baseline_seconds=baseline_measurement.seconds,
                    cached_seconds=cached_measurement.seconds,
                )
            )
    return results


# ---------------------------------------------------------------------------
# Figure 14 and Table 3: the Symantec workload
# ---------------------------------------------------------------------------


@dataclass
class SymantecResults:
    """Everything Figure 14 and Table 3 need."""

    report: ExperimentReport
    phases: dict[int, str]
    load_seconds: dict[tuple[str, str], float]
    middleware_seconds: dict[str, float]

    def phase_breakdown(self) -> dict[tuple[str, str], float]:
        """Accumulated per-system seconds per Table 3 column."""
        breakdown: dict[tuple[str, str], float] = {}
        for system, kind in self.load_seconds:
            column = "Load CSV" if kind == "csv" else "Load JSON"
            breakdown[(system, column)] = breakdown.get((system, column), 0.0) + \
                self.load_seconds[(system, kind)]
        for system, seconds in self.middleware_seconds.items():
            breakdown[(system, "Middleware")] = seconds
        for measurement in self.report.measurements:
            index = int(measurement.query[1:]) if measurement.query.startswith("Q") else 0
            column = "Q39" if index == 39 else "Queries (Rest)"
            key = (measurement.system, column)
            breakdown[key] = breakdown.get(key, 0.0) + measurement.seconds
        return breakdown

    def totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for (system, _), seconds in self.phase_breakdown().items():
            totals[system] = totals.get(system, 0.0) + seconds
        return totals


def figure14(
    num_json: int = 1_200,
    num_csv: int = 5_000,
    num_binary: int = 6_000,
    verify: bool = True,
    cache_budget_bytes: int = 256 * 1024 * 1024,
) -> SymantecResults:
    """Figure 14 / Table 3: the 50-query Symantec spam-analysis workload,
    comparing (i) an RDBMS extended with JSON support, (ii) a federation of a
    column store and a document store, and (iii) Proteus with caching on."""
    files = bench_data.symantec_files(
        num_json=num_json, num_csv=num_csv, num_binary=num_binary
    )
    workload = symantec.symantec_workload(files)

    postgres = _baseline(POSTGRES)
    federated = _baseline(FEDERATED)
    proteus = ProteusAdapter(enable_caching=True, cache_budget_bytes=cache_budget_bytes)

    load_seconds: dict[tuple[str, str], float] = {}

    # Binary data is pre-existing in every approach (warm OS caches).
    for adapter in (postgres, federated, proteus):
        adapter.attach_binary_columns("mail_log", files.binary_dir)

    # CSV / JSON: the comparators must load them up front; Proteus registers
    # the raw files (with known schemas) and touches them during the queries.
    for adapter in (postgres, federated):
        before = adapter.load_seconds
        adapter.attach_csv("classification", files.csv_path)
        load_seconds[(adapter.name, "csv")] = adapter.load_seconds - before
        before = adapter.load_seconds
        adapter.attach_json("spam_mails", files.json_path)
        load_seconds[(adapter.name, "json")] = adapter.load_seconds - before
    proteus.attach_csv("classification", files.csv_path,
                       schema=symantec.CLASSIFICATION_CSV_SCHEMA)
    proteus.attach_json("spam_mails", files.json_path,
                        schema=symantec.SPAM_JSON_SCHEMA)
    load_seconds[(proteus.name, "csv")] = 0.0
    load_seconds[(proteus.name, "json")] = 0.0

    adapters: list[SystemAdapter] = [proteus, postgres, federated]
    specs = [query.spec for query in workload]
    report = run_queries("Figure 14: Symantec spam workload", specs, adapters,
                         verify=verify)
    phases = {query.index: query.phase for query in workload}
    middleware = {
        postgres.name: 0.0,
        proteus.name: 0.0,
        federated.name: federated.engine.middleware_seconds,  # type: ignore[attr-defined]
    }
    return SymantecResults(
        report=report,
        phases=phases,
        load_seconds=load_seconds,
        middleware_seconds=middleware,
    )


# ---------------------------------------------------------------------------
# In-text measurements and ablations
# ---------------------------------------------------------------------------


@dataclass
class IndexConstructionResult:
    """Structural-index size and build time versus document-store load time."""

    dataset: str
    file_bytes: int
    index_bytes: int
    index_ratio: float
    build_seconds: float
    mongo_load_seconds: float
    postgres_load_seconds: float


def index_construction(scale: float = 0.3) -> IndexConstructionResult:
    """§7.1 in-text claim: the JSON structural index is a fraction of the file
    size and is built faster than loading the data into the other systems."""
    files = bench_data.tpch_files(scale=scale)
    proteus = ProteusAdapter()
    proteus.attach_json("lineitem", files.lineitem_json, schema=tpch.LINEITEM_SCHEMA)
    started = time.perf_counter()
    info = proteus.engine.structural_index_info("lineitem")
    build_seconds = max(time.perf_counter() - started, info["build_seconds"])
    mongo = _baseline(MONGO)
    mongo.attach_json("lineitem", files.lineitem_json)
    postgres = _baseline(POSTGRES)
    postgres.attach_json("lineitem", files.lineitem_json)
    return IndexConstructionResult(
        dataset="lineitem.json",
        file_bytes=info["file_bytes"],
        index_bytes=info["size_bytes"],
        index_ratio=info["size_bytes"] / max(info["file_bytes"], 1),
        build_seconds=build_seconds,
        mongo_load_seconds=mongo.load_seconds,
        postgres_load_seconds=postgres.load_seconds,
    )


@dataclass
class AblationResult:
    """One ablation comparison: the same query under two configurations."""

    name: str
    baseline_label: str
    baseline_seconds: float
    variant_label: str
    variant_seconds: float

    @property
    def speedup(self) -> float:
        return (
            self.baseline_seconds / self.variant_seconds if self.variant_seconds else 0.0
        )


def ablation_codegen(scale: float = 0.2) -> AblationResult:
    """Engine-per-query ablation: generated code versus the Volcano interpreter
    on the same physical plan (JSON selection query)."""
    files = bench_data.tpch_files(scale=scale)
    threshold = files.tables.orderkey_threshold(0.5)
    spec = templates.selection_query("lineitem", threshold, 3, 0.5)

    def run(enable_codegen: bool) -> float:
        adapter = ProteusAdapter(
            name="proteus_codegen" if enable_codegen else "proteus_volcano",
            enable_caching=False,
        )
        adapter.engine.enable_codegen = enable_codegen
        # Keep the baseline a true Volcano measurement: without this, disabling
        # codegen would fall through to the vectorized batch tier instead.
        adapter.engine.enable_vectorized = enable_codegen
        adapter.attach_json("lineitem", files.lineitem_json, schema=tpch.LINEITEM_SCHEMA)
        adapter.warm_up("lineitem")
        return adapter.run(spec).seconds

    return AblationResult(
        name="codegen_vs_interpretation",
        baseline_label="Volcano interpreter",
        baseline_seconds=run(False),
        variant_label="generated engine-per-query",
        variant_seconds=run(True),
    )


def ablation_caching(scale: float = 0.2) -> AblationResult:
    """Adaptive-caching ablation: repeated JSON query with and without caches."""
    files = bench_data.tpch_files(scale=scale)
    threshold = files.tables.orderkey_threshold(0.2)
    spec = templates.projection_query("lineitem", threshold, "4agg", 0.2)

    def run(enable_caching: bool) -> float:
        adapter = ProteusAdapter(
            name="proteus_cached" if enable_caching else "proteus_no_cache",
            enable_caching=enable_caching,
        )
        adapter.attach_json("lineitem", files.lineitem_json, schema=tpch.LINEITEM_SCHEMA)
        adapter.warm_up("lineitem")
        adapter.run(spec)  # first execution (populates caches when enabled)
        return adapter.run(spec).seconds  # repeated execution

    return AblationResult(
        name="caching_repeated_query",
        baseline_label="caching disabled",
        baseline_seconds=run(False),
        variant_label="caching enabled (second execution)",
        variant_seconds=run(True),
    )


def ablation_csv_stride(scale: float = 0.3, strides: Sequence[int] = (1, 5, 20)) -> dict[int, float]:
    """CSV structural-index stride sweep: index size trade-off (§5.2)."""
    files = bench_data.tpch_files(scale=scale)
    sizes: dict[int, float] = {}
    for stride in strides:
        adapter = ProteusAdapter(name=f"proteus_stride{stride}")
        adapter.engine.register_csv(
            "lineitem", files.lineitem_csv, schema=tpch.LINEITEM_SCHEMA, stride=stride
        )
        info = adapter.engine.structural_index_info("lineitem")
        sizes[stride] = info["size_bytes"] / max(info["file_bytes"], 1)
    return sizes


def ablation_json_fixed_schema(scale: float = 0.2) -> AblationResult:
    """Fixed-schema specialization: scanning a JSON file whose objects share
    field order (Level 0 dropped) versus an arbitrary-field-order file."""
    import os

    files = bench_data.tpch_files(scale=scale)
    shuffled_path = files.lineitem_json + ".shuffled"
    if not os.path.exists(shuffled_path):
        tpch.write_json(shuffled_path, files.tables.lineitem, shuffle_field_order=True)
    threshold = files.tables.orderkey_threshold(0.5)
    spec = templates.selection_query("lineitem", threshold, 1, 0.5)

    def run(path: str, label: str) -> float:
        adapter = ProteusAdapter(name=label, enable_caching=False)
        adapter.attach_json("lineitem", path, schema=tpch.LINEITEM_SCHEMA)
        adapter.warm_up("lineitem")
        return adapter.run(spec).seconds

    return AblationResult(
        name="json_fixed_schema_specialization",
        baseline_label="arbitrary field order (Level 0 lookups)",
        baseline_seconds=run(shuffled_path, "proteus_arbitrary_order"),
        variant_label="fixed schema (Level 0 dropped)",
        variant_seconds=run(files.lineitem_json, "proteus_fixed_schema"),
    )
