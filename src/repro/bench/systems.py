"""System adapters used by the benchmark harness.

An adapter gives every system under test — Proteus and the simulated
comparators — the same three-step interface:

* ``attach_*`` methods make a dataset queryable (for Proteus this is a cheap
  registration over the raw file; for the baselines it is a *load*, whose cost
  is recorded because the Symantec workload accounts for it),
* ``execute(spec)`` runs one benchmark query and returns ``(rows, seconds)``,
* ``load_seconds`` reports the accumulated load time.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import BaselineEngine
from repro.core.engine import ProteusEngine
from repro.errors import ProteusError, UnsupportedFeatureError
from repro.storage.binary_format import read_column_table
from repro.workloads.query_spec import QuerySpec


@dataclass
class QueryMeasurement:
    """One timed query execution."""

    system: str
    query: str
    seconds: float
    rows: int
    result: list[tuple] = field(default_factory=list)


class SystemAdapter(ABC):
    """Common driver interface over Proteus and the baselines."""

    def __init__(self, name: str):
        self.name = name
        self.load_seconds = 0.0

    @abstractmethod
    def attach_csv(self, dataset: str, path: str, schema=None) -> None: ...

    @abstractmethod
    def attach_json(self, dataset: str, path: str, schema=None) -> None: ...

    @abstractmethod
    def attach_binary_columns(self, dataset: str, directory: str) -> None: ...

    @abstractmethod
    def execute(self, spec: QuerySpec) -> list[tuple]: ...

    def run(self, spec: QuerySpec) -> QueryMeasurement:
        """Execute a query and time it."""
        started = time.perf_counter()
        rows = self.execute(spec)
        elapsed = time.perf_counter() - started
        return QueryMeasurement(
            system=self.name, query=spec.name, seconds=elapsed,
            rows=len(rows), result=rows,
        )

    def supports(self, spec: QuerySpec) -> bool:
        """Whether the system can run the query at all (MongoDB-style engines
        only hold JSON collections, for instance)."""
        return True


class ProteusAdapter(SystemAdapter):
    """Adapter over the reproduction's own engine."""

    def __init__(
        self,
        name: str = "proteus",
        enable_caching: bool = False,
        enable_codegen: bool = True,
        enable_vectorized: bool = True,
        cache_budget_bytes: int = 256 * 1024 * 1024,
    ):
        super().__init__(name)
        self.engine = ProteusEngine(
            enable_caching=enable_caching,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
            cache_budget_bytes=cache_budget_bytes,
        )

    def attach_csv(self, dataset: str, path: str, schema=None) -> None:
        started = time.perf_counter()
        self.engine.register_csv(dataset, path, schema=schema)
        # With an explicit schema, registration is free (no load step); without
        # one, schema inference builds the structural index and the cost is
        # reported as the "first access" cost rather than a load.
        if schema is None:
            self.load_seconds += time.perf_counter() - started

    def attach_json(self, dataset: str, path: str, schema=None) -> None:
        started = time.perf_counter()
        self.engine.register_json(dataset, path, schema=schema)
        if schema is None:
            self.load_seconds += time.perf_counter() - started

    def attach_binary_columns(self, dataset: str, directory: str) -> None:
        self.engine.register_binary_columns(dataset, directory)

    def execute(self, spec: QuerySpec) -> list[tuple]:
        return self.engine.query(spec.to_text()).rows

    def warm_up(self, dataset: str) -> None:
        """Force the structural index build of a raw dataset (cold access)."""
        self.engine.structural_index_info(dataset)


class BaselineAdapter(SystemAdapter):
    """Adapter over one of the simulated comparator engines."""

    def __init__(self, engine: BaselineEngine, name: str | None = None):
        super().__init__(name or engine.name)
        self.engine = engine
        self._attached_formats: dict[str, str] = {}

    def attach_csv(self, dataset: str, path: str, schema=None) -> None:
        try:
            report = self.engine.load_csv(dataset, path)
        except UnsupportedFeatureError:
            return
        self._attached_formats[dataset] = "csv"
        self.load_seconds += report.seconds

    def attach_json(self, dataset: str, path: str, schema=None) -> None:
        try:
            report = self.engine.load_json(dataset, path)
        except UnsupportedFeatureError:
            return
        self._attached_formats[dataset] = "json"
        self.load_seconds += report.seconds

    def attach_binary_columns(self, dataset: str, directory: str) -> None:
        table = read_column_table(directory)
        columns = {name: np.asarray(table.column(name)) for name in table.schema.field_names()}
        try:
            report = self.engine.load_columns(dataset, columns)
        except UnsupportedFeatureError:
            return
        self._attached_formats[dataset] = "binary"
        self.load_seconds += report.seconds

    def supports(self, spec: QuerySpec) -> bool:
        return all(dataset in self._attached_formats for dataset in spec.datasets())

    def execute(self, spec: QuerySpec) -> list[tuple]:
        return self.engine.execute(spec)


def results_match(left: list[tuple], right: list[tuple], tolerance: float = 1e-6) -> bool:
    """Order-insensitive comparison of two result sets (used by the harness to
    cross-validate every system against Proteus)."""
    if len(left) != len(right):
        return False

    def normalize(rows: list[tuple]) -> list[tuple]:
        normalized = []
        for row in rows:
            normalized.append(tuple(_normalize_value(value) for value in row))
        return sorted(normalized, key=repr)

    for left_row, right_row in zip(normalize(left), normalize(right)):
        if len(left_row) != len(right_row):
            return False
        for a, b in zip(left_row, right_row):
            if isinstance(a, float) and isinstance(b, float):
                if not np.isclose(a, b, rtol=1e-4, atol=tolerance, equal_nan=True):
                    return False
            elif a != b:
                return False
    return True


def _normalize_value(value):
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, np.integer)):
        return float(value)
    if isinstance(value, float):
        return float(value)
    return value
