"""Benchmark harness: system adapters, data materialization, experiment drivers and reporting."""
