"""Benchmark data materialization with on-disk caching.

Generating and writing the TPC-H and Symantec instances dominates benchmark
start-up, so materialized instances are cached in a temporary directory keyed
by their generation parameters and reused across benchmark processes.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.workloads import symantec, tpch

_CACHE_MARKER = "_repro_bench_ready.json"


def _cache_root() -> str:
    root = os.environ.get("REPRO_BENCH_DATA_DIR")
    if root:
        return root
    return os.path.join(tempfile.gettempdir(), "proteus_repro_bench_data")


def _is_ready(directory: str, params: dict) -> bool:
    marker = os.path.join(directory, _CACHE_MARKER)
    if not os.path.exists(marker):
        return False
    try:
        with open(marker, "r", encoding="utf-8") as handle:
            return json.load(handle) == params
    except (OSError, json.JSONDecodeError):
        return False


def _mark_ready(directory: str, params: dict) -> None:
    with open(os.path.join(directory, _CACHE_MARKER), "w", encoding="utf-8") as handle:
        json.dump(params, handle)


def tpch_files(scale: float = 0.5, seed: int = 42) -> tpch.TpchFiles:
    """Materialize (or reuse) a TPC-H instance at the given scale."""
    directory = os.path.join(_cache_root(), f"tpch_scale{scale}_seed{seed}")
    params = {"scale": scale, "seed": seed}
    os.makedirs(directory, exist_ok=True)
    if not _is_ready(directory, params):
        files = tpch.materialize(directory, scale=scale, seed=seed)
        _mark_ready(directory, params)
        return files
    # Re-derive the in-memory tables (cheap) and reuse the files on disk.
    tables = tpch.generate(scale=scale, seed=seed)
    return tpch.TpchFiles(
        lineitem_csv=os.path.join(directory, "lineitem.csv"),
        orders_csv=os.path.join(directory, "orders.csv"),
        lineitem_json=os.path.join(directory, "lineitem.json"),
        orders_json=os.path.join(directory, "orders.json"),
        orders_denormalized_json=os.path.join(directory, "orders_denorm.json"),
        lineitem_columns=os.path.join(directory, "lineitem_columns"),
        orders_columns=os.path.join(directory, "orders_columns"),
        tables=tables,
    )


def symantec_files(
    num_json: int = 1_500,
    num_csv: int = 6_000,
    num_binary: int = 8_000,
    seed: int = 1234,
) -> symantec.SymantecFiles:
    """Materialize (or reuse) a Symantec-like instance."""
    directory = os.path.join(
        _cache_root(), f"symantec_j{num_json}_c{num_csv}_b{num_binary}_s{seed}"
    )
    params = {"json": num_json, "csv": num_csv, "bin": num_binary, "seed": seed}
    os.makedirs(directory, exist_ok=True)
    if not _is_ready(directory, params):
        files = symantec.materialize(
            directory, num_json=num_json, num_csv=num_csv, num_binary=num_binary, seed=seed
        )
        _mark_ready(directory, params)
        return files
    return symantec.SymantecFiles(
        json_path=os.path.join(directory, "spam_mails.json"),
        csv_path=os.path.join(directory, "classification.csv"),
        binary_dir=os.path.join(directory, "mail_log_columns"),
        num_json=num_json,
        num_csv=num_csv,
        num_binary=num_binary,
    )
