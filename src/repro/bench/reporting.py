"""Reporting helpers: paper-style tables printed by the benchmark harness."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.bench.systems import QueryMeasurement


@dataclass
class ExperimentReport:
    """The measurements of one experiment (one figure/table of the paper)."""

    title: str
    measurements: list[QueryMeasurement]
    notes: list[str]

    def by_system(self) -> dict[str, list[QueryMeasurement]]:
        grouped: dict[str, list[QueryMeasurement]] = defaultdict(list)
        for measurement in self.measurements:
            grouped[measurement.system].append(measurement)
        return dict(grouped)

    def seconds(self, system: str, query: str) -> float | None:
        for measurement in self.measurements:
            if measurement.system == system and measurement.query == query:
                return measurement.seconds
        return None

    def total_seconds(self, system: str) -> float:
        return sum(m.seconds for m in self.measurements if m.system == system)

    def speedup(self, slower_system: str, faster_system: str) -> float:
        """Aggregate speedup of ``faster_system`` over ``slower_system``."""
        fast = self.total_seconds(faster_system)
        slow = self.total_seconds(slower_system)
        return slow / fast if fast > 0 else float("inf")


def format_matrix(
    report: ExperimentReport,
    queries: Sequence[str],
    systems: Sequence[str],
    cell_format: str = "{:>10.4f}",
) -> str:
    """Render a figure-style matrix: one row per system, one column per query."""
    header_cells = [f"{'system':<22}"] + [f"{name:>14}" for name in queries]
    lines = [report.title, "".join(header_cells)]
    for system in systems:
        cells = [f"{system:<22}"]
        for query in queries:
            seconds = report.seconds(system, query)
            cells.append(
                f"{cell_format.format(seconds):>14}" if seconds is not None else f"{'-':>14}"
            )
        lines.append("".join(cells))
    for note in report.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def format_totals(report: ExperimentReport, systems: Sequence[str]) -> str:
    """Render aggregate per-system totals (used for Table 3-style summaries)."""
    lines = [report.title]
    for system in systems:
        lines.append(f"  {system:<26} {report.total_seconds(system):10.4f} s")
    return "\n".join(lines)


def format_speedups(
    title: str, speedups: Mapping[str, float], baseline_label: str = "baseline"
) -> str:
    """Render a speedup table (Figure 13 style)."""
    lines = [title, f"  (speedup over {baseline_label})"]
    for label, value in speedups.items():
        lines.append(f"  {label:<34} {value:8.2f}x")
    return "\n".join(lines)


def format_phase_table(
    title: str,
    systems: Sequence[str],
    phases: Sequence[str],
    values: Mapping[tuple[str, str], float],
    totals: Mapping[str, float],
) -> str:
    """Render Table 3: accumulated seconds per system and workload phase."""
    header = [f"{'system':<26}"] + [f"{phase:>12}" for phase in phases] + [f"{'Total':>12}"]
    lines = [title, "".join(header)]
    for system in systems:
        cells = [f"{system:<26}"]
        for phase in phases:
            cells.append(f"{values.get((system, phase), 0.0):>12.3f}")
        cells.append(f"{totals.get(system, 0.0):>12.3f}")
        lines.append("".join(cells))
    return "\n".join(lines)
