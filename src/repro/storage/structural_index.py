"""Structural indexes over raw CSV and JSON files (§5.2 of the paper).

Structural indexes store *positional* information about fields in verbose
text formats instead of data values, so that the engine can navigate straight
to the bytes it needs rather than re-parsing whole records:

* :class:`CsvStructuralIndex` stores the byte offset of every row and of every
  Nth field within each row (the paper stores the positions of the 1st, 11th,
  21st ... fields when N=10).  Locating a field starts from the closest
  anchored position and seeks forward.
* :class:`JsonStructuralIndex` is built during the first (validating) access
  to a JSON dataset.  "Level 1" keeps, per object, the byte span and type of
  every token (top-level fields, nested record fields flattened into dotted
  paths, and arrays as opaque spans).  "Level 0" is an associative array from
  field path to the Level-1 entry, which removes the sequential scan over the
  object's tokens that schema flexibility would otherwise force.  When every
  object carries the same fields in the same order the index detects the
  *fixed schema* case and drops Level 0, keeping a single shared field list.

Array contents are deliberately *not* registered in Level 0: nested
collections are handled by the explicit Unnest operator, whose code path
applies the same action to every element and is therefore insensitive to
schema flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import StorageError

# Token type codes stored in Level 1.
TYPE_NUMBER = 0
TYPE_STRING = 1
TYPE_BOOL = 2
TYPE_NULL = 3
TYPE_OBJECT = 4
TYPE_ARRAY = 5

TYPE_NAMES = {
    TYPE_NUMBER: "number",
    TYPE_STRING: "string",
    TYPE_BOOL: "bool",
    TYPE_NULL: "null",
    TYPE_OBJECT: "object",
    TYPE_ARRAY: "array",
}


# ---------------------------------------------------------------------------
# CSV structural index
# ---------------------------------------------------------------------------


class CsvStructuralIndex:
    """Positional index over a CSV byte buffer.

    The index stores, for every data row, the byte offset where the row starts
    and the offsets of every ``stride``-th field.  ``field_span`` seeks from
    the nearest anchored field, so a larger stride trades index size for seek
    work — exactly the knob described in the paper.
    """

    def __init__(
        self,
        row_starts: np.ndarray,
        row_ends: np.ndarray,
        anchors: np.ndarray,
        stride: int,
        field_count: int,
        delimiter: bytes,
    ):
        self.row_starts = row_starts
        self.row_ends = row_ends
        self.anchors = anchors
        self.stride = stride
        self.field_count = field_count
        self.delimiter = delimiter

    @property
    def num_rows(self) -> int:
        return len(self.row_starts)

    @property
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the index."""
        return int(self.row_starts.nbytes + self.row_ends.nbytes + self.anchors.nbytes)

    def row_span(self, row: int) -> tuple[int, int]:
        return int(self.row_starts[row]), int(self.row_ends[row])

    def field_span(self, data: bytes, row: int, field_index: int) -> tuple[int, int]:
        """Return the byte span ``[start, end)`` of one field of one row."""
        if field_index < 0 or field_index >= self.field_count:
            raise StorageError(
                f"field index {field_index} out of range (0..{self.field_count - 1})"
            )
        anchor_slot = field_index // self.stride
        start = int(self.anchors[row, anchor_slot])
        current = anchor_slot * self.stride
        delim = self.delimiter
        row_end = int(self.row_ends[row])
        while current < field_index:
            next_delim = data.find(delim, start, row_end)
            if next_delim == -1:
                raise StorageError(
                    f"row {row} has fewer than {field_index + 1} fields"
                )
            start = next_delim + 1
            current += 1
        end = data.find(delim, start, row_end)
        if end == -1:
            end = row_end
        return start, end


def build_csv_index(
    data: bytes,
    delimiter: str = ",",
    has_header: bool = True,
    stride: int = 5,
) -> CsvStructuralIndex:
    """Build a :class:`CsvStructuralIndex` over a CSV byte buffer."""
    if stride < 1:
        raise StorageError("stride must be at least 1")
    delim = delimiter.encode()
    length = len(data)
    position = 0
    if has_header and length:
        header_end = data.find(b"\n", 0)
        if header_end == -1:
            header_end = length
        header = data[:header_end]
        field_count = header.count(delim) + 1
        position = header_end + 1
    else:
        first_end = data.find(b"\n", 0)
        if first_end == -1:
            first_end = length
        field_count = data[:first_end].count(delim) + 1 if length else 0

    row_starts: list[int] = []
    row_ends: list[int] = []
    anchor_rows: list[list[int]] = []
    anchor_count = (field_count + stride - 1) // stride if field_count else 0

    while position < length:
        end = data.find(b"\n", position)
        if end == -1:
            end = length
        if end > position:  # skip blank lines
            row_starts.append(position)
            row_ends.append(end)
            anchors = [position]
            cursor = position
            for slot in range(1, anchor_count):
                target = slot * stride
                current = (slot - 1) * stride
                while current < target:
                    next_delim = data.find(delim, cursor, end)
                    if next_delim == -1:
                        cursor = end
                        break
                    cursor = next_delim + 1
                    current += 1
                anchors.append(cursor)
            anchor_rows.append(anchors)
        position = end + 1

    return CsvStructuralIndex(
        row_starts=np.asarray(row_starts, dtype=np.int64),
        row_ends=np.asarray(row_ends, dtype=np.int64),
        anchors=np.asarray(anchor_rows, dtype=np.int64).reshape(len(row_starts), -1)
        if row_starts
        else np.zeros((0, max(anchor_count, 1)), dtype=np.int64),
        stride=stride,
        field_count=field_count,
        delimiter=delim,
    )


# ---------------------------------------------------------------------------
# JSON tokenizer with span recording
# ---------------------------------------------------------------------------


@dataclass
class TokenEntry:
    """One Level-1 entry: a field path, its value span and its type."""

    path: str
    start: int
    end: int
    type_code: int


def _skip_whitespace(data: bytes, position: int) -> int:
    while position < len(data) and data[position] in b" \t\r\n":
        position += 1
    return position


def _skip_string(data: bytes, position: int) -> int:
    """``position`` points at the opening quote; returns index after closing quote."""
    position += 1
    while position < len(data):
        byte = data[position]
        if byte == 0x5C:  # backslash
            position += 2
            continue
        if byte == 0x22:  # double quote
            return position + 1
        position += 1
    raise StorageError("unterminated string in JSON input")


def _skip_value(data: bytes, position: int) -> tuple[int, int]:
    """Skip one JSON value starting at ``position``; return (end, type_code)."""
    position = _skip_whitespace(data, position)
    if position >= len(data):
        raise StorageError("unexpected end of JSON input")
    byte = data[position]
    if byte == 0x22:  # string
        return _skip_string(data, position), TYPE_STRING
    if byte == 0x7B:  # object
        return _skip_container(data, position, 0x7B, 0x7D), TYPE_OBJECT
    if byte == 0x5B:  # array
        return _skip_container(data, position, 0x5B, 0x5D), TYPE_ARRAY
    if data.startswith(b"true", position):
        return position + 4, TYPE_BOOL
    if data.startswith(b"false", position):
        return position + 5, TYPE_BOOL
    if data.startswith(b"null", position):
        return position + 4, TYPE_NULL
    # number
    end = position
    while end < len(data) and data[end] in b"-+.eE0123456789":
        end += 1
    if end == position:
        raise StorageError(f"invalid JSON value at byte {position}")
    return end, TYPE_NUMBER


def _skip_container(data: bytes, position: int, open_byte: int, close_byte: int) -> int:
    depth = 0
    i = position
    while i < len(data):
        byte = data[i]
        if byte == 0x22:
            i = _skip_string(data, i)
            continue
        if byte == open_byte:
            depth += 1
        elif byte == close_byte:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise StorageError("unterminated container in JSON input")


def tokenize_object(
    data: bytes, start: int, prefix: str = "", max_depth: int = 8
) -> tuple[list[TokenEntry], int]:
    """Tokenize one JSON object starting at ``start``.

    Returns the Level-1 entries (top-level fields plus nested record fields
    flattened into dotted paths; arrays as opaque spans) and the byte offset
    just past the object's closing brace.
    """
    entries: list[TokenEntry] = []
    position = _skip_whitespace(data, start)
    if position >= len(data) or data[position] != 0x7B:
        raise StorageError(f"expected JSON object at byte {position}")
    object_start = position
    position += 1
    while True:
        position = _skip_whitespace(data, position)
        if position >= len(data):
            raise StorageError("unterminated JSON object")
        if data[position] == 0x7D:
            position += 1
            break
        if data[position] == 0x2C:  # comma
            position += 1
            continue
        if data[position] != 0x22:
            raise StorageError(f"expected field name at byte {position}")
        name_end = _skip_string(data, position)
        name = data[position + 1:name_end - 1].decode("utf-8")
        position = _skip_whitespace(data, name_end)
        if position >= len(data) or data[position] != 0x3A:  # colon
            raise StorageError(f"expected ':' at byte {position}")
        position = _skip_whitespace(data, position + 1)
        value_start = position
        value_end, type_code = _skip_value(data, position)
        path = f"{prefix}{name}"
        entries.append(TokenEntry(path, value_start, value_end, type_code))
        if type_code == TYPE_OBJECT and max_depth > 1:
            nested, _ = tokenize_object(data, value_start, f"{path}.", max_depth - 1)
            entries.extend(nested)
        position = value_end
    # Record the overall object span as the first entry, mirroring Figure 4.
    entries.insert(0, TokenEntry(prefix.rstrip("."), object_start, position, TYPE_OBJECT))
    return entries, position


# ---------------------------------------------------------------------------
# JSON structural index
# ---------------------------------------------------------------------------


class JsonStructuralIndex:
    """Two-level structural index over a JSON dataset (one object per line or
    a whitespace-separated stream of objects)."""

    def __init__(
        self,
        object_spans: np.ndarray,
        fixed_schema: bool,
        shared_paths: tuple[str, ...] | None,
        spans: np.ndarray | None,
        types: np.ndarray | None,
        level0: list[dict[str, int]] | None,
        per_object_entries: list[list[TokenEntry]] | None,
    ):
        self.object_spans = object_spans
        self.fixed_schema = fixed_schema
        self.shared_paths = shared_paths
        self._shared_slots = (
            {path: slot for slot, path in enumerate(shared_paths)} if shared_paths else {}
        )
        self.spans = spans
        self.types = types
        self.level0 = level0
        self.per_object_entries = per_object_entries

    @property
    def num_objects(self) -> int:
        return len(self.object_spans)

    @property
    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the index."""
        total = int(self.object_spans.nbytes)
        if self.fixed_schema:
            assert self.spans is not None and self.types is not None
            total += int(self.spans.nbytes + self.types.nbytes)
            if self.shared_paths:
                total += sum(len(p) for p in self.shared_paths)
        else:
            assert self.per_object_entries is not None and self.level0 is not None
            for entries, mapping in zip(self.per_object_entries, self.level0):
                total += len(entries) * 24  # start, end, type per entry
                total += sum(len(path) + 8 for path in mapping)
        return total

    def object_span(self, index: int) -> tuple[int, int]:
        return int(self.object_spans[index, 0]), int(self.object_spans[index, 1])

    def paths(self) -> set[str]:
        """All field paths known to the index (excluding the root entries)."""
        if self.fixed_schema:
            return set(self.shared_paths or ())
        result: set[str] = set()
        assert self.level0 is not None
        for mapping in self.level0:
            result.update(mapping)
        result.discard("")
        return result

    def column_spans(
        self, path: str, positions: "np.ndarray | list[int] | None" = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Vectorized span lookup for one field across many objects.

        Only available for fixed-schema indexes (where Level 0 has been
        dropped and the per-object spans live in dense arrays); returns
        ``(starts, ends, type_codes)`` with ``start == -1`` marking missing
        fields, or ``None`` when the index is not fixed-schema or the path is
        unknown.
        """
        if not self.fixed_schema:
            return None
        slot = self._shared_slots.get(path)
        if slot is None:
            return None
        assert self.spans is not None and self.types is not None
        if positions is None:
            starts = self.spans[:, slot, 0]
            ends = self.spans[:, slot, 1]
            types = self.types[:, slot]
        else:
            positions = np.asarray(positions, dtype=np.int64)
            starts = self.spans[positions, slot, 0]
            ends = self.spans[positions, slot, 1]
            types = self.types[positions, slot]
        return starts, ends, types

    def field_span(self, index: int, path: str) -> tuple[int, int, int] | None:
        """Return ``(start, end, type_code)`` of field ``path`` in object
        ``index``, or ``None`` when the object lacks the field."""
        if self.fixed_schema:
            slot = self._shared_slots.get(path)
            if slot is None:
                return None
            assert self.spans is not None and self.types is not None
            start = int(self.spans[index, slot, 0])
            end = int(self.spans[index, slot, 1])
            if start < 0:
                return None
            return start, end, int(self.types[index, slot])
        assert self.level0 is not None and self.per_object_entries is not None
        slot = self.level0[index].get(path)
        if slot is None:
            return None
        entry = self.per_object_entries[index][slot]
        return entry.start, entry.end, entry.type_code


def iter_object_starts(data: bytes) -> Iterator[int]:
    """Yield the byte offset of every top-level object in the buffer."""
    position = 0
    length = len(data)
    while True:
        position = _skip_whitespace(data, position)
        if position >= length:
            return
        if data[position] != 0x7B:
            raise StorageError(
                f"expected '{{' at byte {position}; the JSON input must be a "
                "stream of objects (one per line or whitespace separated)"
            )
        yield position
        position = _skip_container(data, position, 0x7B, 0x7D)


def build_json_index(data: bytes, max_depth: int = 8) -> JsonStructuralIndex:
    """Validate a JSON object stream and build its structural index.

    Mirrors the paper's first-access behaviour: the input is validated, a
    Level-1 index is populated per object, and if every object carries the
    same fields in the same order Level 0 is dropped in favour of a shared,
    deterministic field list.
    """
    object_spans: list[tuple[int, int]] = []
    all_entries: list[list[TokenEntry]] = []
    for start in iter_object_starts(data):
        entries, end = tokenize_object(data, start, max_depth=max_depth)
        object_spans.append((start, end))
        all_entries.append(entries)

    spans_array = np.asarray(object_spans, dtype=np.int64).reshape(len(object_spans), 2) \
        if object_spans else np.zeros((0, 2), dtype=np.int64)

    # Fixed-schema detection: identical ordered field paths in every object.
    field_sequences = {
        tuple(entry.path for entry in entries[1:] if entry.type_code != TYPE_OBJECT
              or "." not in entry.path)
        for entries in all_entries
    }
    ordered_paths = [
        tuple(entry.path for entry in entries[1:]) for entries in all_entries
    ]
    fixed = len(set(ordered_paths)) <= 1 and bool(all_entries)
    del field_sequences

    if fixed:
        shared_paths = ordered_paths[0] if ordered_paths else ()
        spans = np.full((len(all_entries), len(shared_paths), 2), -1, dtype=np.int64)
        types = np.zeros((len(all_entries), len(shared_paths)), dtype=np.int8)
        for obj_index, entries in enumerate(all_entries):
            for slot, entry in enumerate(entries[1:]):
                spans[obj_index, slot, 0] = entry.start
                spans[obj_index, slot, 1] = entry.end
                types[obj_index, slot] = entry.type_code
        return JsonStructuralIndex(
            object_spans=spans_array,
            fixed_schema=True,
            shared_paths=shared_paths,
            spans=spans,
            types=types,
            level0=None,
            per_object_entries=None,
        )

    level0: list[dict[str, int]] = []
    for entries in all_entries:
        mapping: dict[str, int] = {}
        for slot, entry in enumerate(entries):
            if slot == 0:
                continue
            mapping.setdefault(entry.path, slot)
        level0.append(mapping)
    return JsonStructuralIndex(
        object_spans=spans_array,
        fixed_schema=False,
        shared_paths=None,
        spans=None,
        types=None,
        level0=level0,
        per_object_entries=all_entries,
    )
