"""Relational binary file formats.

Proteus treats relational binary data as one of its native inputs, both
row-oriented and column-oriented ("binary column files similar to the ones of
MonetDB", §7.1).  This module defines the two on-disk formats used by the
reproduction and their readers/writers:

* **Column tables** — a directory containing ``_schema.json`` plus one file per
  column.  Numeric columns are raw fixed-width arrays preceded by a small
  header and are memory-mapped on read; string columns are stored as an
  offsets array plus a UTF-8 blob.
* **Row tables** — a single file holding a NumPy structured array (strings as
  fixed-width unicode fields), memory-mapped on read.

Writers are deterministic: writing the same arrays twice produces identical
bytes, which the tests rely on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core import types as t
from repro.errors import StorageError

_MAGIC = b"PRCL"
_VERSION = 1

_DTYPE_CODES = {
    "int": ("i", np.dtype(np.int64)),
    "float": ("f", np.dtype(np.float64)),
    "bool": ("b", np.dtype(np.bool_)),
    "date": ("d", np.dtype(np.int64)),
    "string": ("s", None),
}
_CODE_TO_NAME = {code: name for name, (code, _) in _DTYPE_CODES.items()}

SCHEMA_FILE = "_schema.json"


# ---------------------------------------------------------------------------
# Schema (de)serialization
# ---------------------------------------------------------------------------


def schema_to_dict(schema: t.RecordType) -> dict:
    """Serialize a flat record schema to a JSON-compatible dict."""
    fields = []
    for field in schema.fields:
        if not field.dtype.is_primitive():
            raise StorageError(
                f"binary formats only store flat records; field {field.name!r} is "
                f"{field.dtype.name}"
            )
        fields.append({"name": field.name, "type": field.dtype.name})
    return {"version": _VERSION, "fields": fields}


def schema_from_dict(data: Mapping) -> t.RecordType:
    """Deserialize a schema previously produced by :func:`schema_to_dict`."""
    fields = [
        t.Field(entry["name"], t.primitive_type(entry["type"]))
        for entry in data["fields"]
    ]
    return t.RecordType(fields)


# ---------------------------------------------------------------------------
# Column files
# ---------------------------------------------------------------------------


def write_column_file(path: str, values: np.ndarray | Sequence, type_name: str) -> int:
    """Write a single column to ``path``; returns the number of bytes written."""
    if type_name not in _DTYPE_CODES:
        raise StorageError(f"unsupported column type {type_name!r}")
    code, dtype = _DTYPE_CODES[type_name]
    if type_name == "string":
        return _write_string_column(path, values, code)
    array = np.asarray(values, dtype=dtype)
    header = _MAGIC + code.encode() + b"\0\0\0" + np.int64(len(array)).tobytes()
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(array.tobytes())
    return len(header) + array.nbytes


def _write_string_column(path: str, values: Sequence, code: str) -> int:
    encoded = [("" if v is None else str(v)).encode("utf-8") for v in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    for index, blob in enumerate(encoded):
        offsets[index + 1] = offsets[index] + len(blob)
    payload = b"".join(encoded)
    header = _MAGIC + code.encode() + b"\0\0\0" + np.int64(len(encoded)).tobytes()
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(offsets.tobytes())
        handle.write(payload)
    return len(header) + offsets.nbytes + len(payload)


def read_column_file(path: str, use_mmap: bool = True) -> np.ndarray:
    """Read a column file; fixed-width columns are memory-mapped when possible."""
    header_size = len(_MAGIC) + 4 + 8
    with open(path, "rb") as handle:
        header = handle.read(header_size)
    if len(header) < header_size or header[: len(_MAGIC)] != _MAGIC:
        raise StorageError(f"{path} is not a Proteus column file")
    code = chr(header[len(_MAGIC)])
    count = int(np.frombuffer(header, dtype=np.int64, count=1, offset=len(_MAGIC) + 4)[0])
    type_name = _CODE_TO_NAME.get(code)
    if type_name is None:
        raise StorageError(f"unknown column type code {code!r} in {path}")
    if type_name == "string":
        return _read_string_column(path, header_size, count)
    dtype = _DTYPE_CODES[type_name][1]
    if use_mmap:
        return np.memmap(path, dtype=dtype, mode="r", offset=header_size, shape=(count,))
    with open(path, "rb") as handle:
        handle.seek(header_size)
        return np.frombuffer(handle.read(), dtype=dtype, count=count).copy()


def _read_string_column(path: str, header_size: int, count: int) -> np.ndarray:
    with open(path, "rb") as handle:
        handle.seek(header_size)
        offsets = np.frombuffer(handle.read((count + 1) * 8), dtype=np.int64)
        payload = handle.read()
    values = np.empty(count, dtype=object)
    for index in range(count):
        start, end = offsets[index], offsets[index + 1]
        values[index] = payload[start:end].decode("utf-8")
    return values


# ---------------------------------------------------------------------------
# Column tables
# ---------------------------------------------------------------------------


@dataclass
class ColumnTable:
    """A lazily-loaded column table (directory of column files)."""

    directory: str
    schema: t.RecordType
    row_count: int

    def __post_init__(self) -> None:
        self._columns: dict[str, np.ndarray] = {}

    def column(self, name: str, use_mmap: bool = True) -> np.ndarray:
        """Load (and cache) one column."""
        if name not in self._columns:
            if not self.schema.has_field(name):
                raise StorageError(f"column table has no column {name!r}")
            path = os.path.join(self.directory, f"{name}.col")
            self._columns[name] = read_column_file(path, use_mmap=use_mmap)
        return self._columns[name]

    def columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in names}


def write_column_table(
    directory: str,
    columns: Mapping[str, np.ndarray | Sequence],
    schema: t.RecordType,
) -> ColumnTable:
    """Write a column table to ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    lengths = {name: len(values) for name, values in columns.items()}
    if len(set(lengths.values())) > 1:
        raise StorageError(f"column length mismatch: {lengths}")
    row_count = next(iter(lengths.values())) if lengths else 0
    for field in schema.fields:
        if field.name not in columns:
            raise StorageError(f"missing column {field.name!r}")
        path = os.path.join(directory, f"{field.name}.col")
        write_column_file(path, columns[field.name], field.dtype.name)
    meta = schema_to_dict(schema)
    meta["row_count"] = row_count
    with open(os.path.join(directory, SCHEMA_FILE), "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
    return ColumnTable(directory, schema, row_count)


def read_column_table(directory: str) -> ColumnTable:
    """Open a column table previously written by :func:`write_column_table`."""
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise StorageError(f"{directory} is not a column table (missing {SCHEMA_FILE})")
    with open(schema_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    return ColumnTable(directory, schema_from_dict(meta), int(meta["row_count"]))


# ---------------------------------------------------------------------------
# Row tables
# ---------------------------------------------------------------------------


def _row_dtype(schema: t.RecordType, columns: Mapping[str, Sequence]) -> np.dtype:
    parts = []
    for field in schema.fields:
        if isinstance(field.dtype, t.StringType):
            values = columns[field.name]
            width = max((len(str(v)) for v in values), default=1)
            parts.append((field.name, f"U{max(width, 1)}"))
        else:
            parts.append((field.name, field.dtype.numpy_dtype()))
    return np.dtype(parts)


def write_row_table(
    path: str, columns: Mapping[str, np.ndarray | Sequence], schema: t.RecordType
) -> None:
    """Write a row table: a schema sidecar plus a packed structured array."""
    lengths = {name: len(values) for name, values in columns.items()}
    if len(set(lengths.values())) > 1:
        raise StorageError(f"column length mismatch: {lengths}")
    row_count = next(iter(lengths.values())) if lengths else 0
    dtype = _row_dtype(schema, columns)
    table = np.zeros(row_count, dtype=dtype)
    for field in schema.fields:
        table[field.name] = np.asarray(columns[field.name])
    meta = schema_to_dict(schema)
    meta["row_count"] = row_count
    meta["dtype"] = [[name, table.dtype[name].str] for name in table.dtype.names]
    with open(path + ".schema.json", "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
    with open(path, "wb") as handle:
        handle.write(table.tobytes())


@dataclass
class RowTable:
    """A memory-mapped row table."""

    path: str
    schema: t.RecordType
    row_count: int
    data: np.ndarray

    def column(self, name: str) -> np.ndarray:
        if not self.schema.has_field(name):
            raise StorageError(f"row table has no column {name!r}")
        return self.data[name]


def read_row_table(path: str, use_mmap: bool = True) -> RowTable:
    """Open a row table previously written by :func:`write_row_table`."""
    schema_path = path + ".schema.json"
    if not os.path.exists(schema_path):
        raise StorageError(f"{path} is not a row table (missing schema sidecar)")
    with open(schema_path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    schema = schema_from_dict(meta)
    dtype = np.dtype([(name, spec) for name, spec in meta["dtype"]])
    row_count = int(meta["row_count"])
    if use_mmap:
        data = np.memmap(path, dtype=dtype, mode="r", shape=(row_count,))
    else:
        with open(path, "rb") as handle:
            data = np.frombuffer(handle.read(), dtype=dtype, count=row_count).copy()
    return RowTable(path, schema, row_count, data)
