"""Memory manager (§4, "Memory Manager").

The memory manager distinguishes between the two kinds of memory the engine
uses:

* **Input files** are memory-mapped, so all input data is treated as if it
  were memory-resident and paging is delegated to the OS virtual memory
  manager.  :meth:`MemoryManager.map_file` returns (and caches) a read-only
  buffer over a file.
* **Caching structures** are pinned in a bounded *arena*.  The arena tracks
  the bytes used by every registered block and refuses allocations beyond its
  budget; the caching manager reacts to a refusal by evicting entries (its
  format-biased LRU lives in :mod:`repro.caching.manager`).
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass, field

from repro.core.concurrency import make_lock
from repro.errors import StorageError


@dataclass
class MappedFile:
    """A read-only memory-mapped file."""

    path: str
    data: bytes
    size: int
    mapped: bool


class MemoryManager:
    """Hands out memory-mapped input files and manages the cache arena."""

    def __init__(self, cache_budget_bytes: int = 256 * 1024 * 1024):
        self._mapped: dict[str, MappedFile] = {}
        self._map_lock = make_lock("MemoryManager._map_lock")
        self.arena = CacheArena(cache_budget_bytes)

    def map_file(self, path: str) -> MappedFile:
        """Memory-map ``path`` read-only (empty files fall back to ``b""``).

        Thread-safe: concurrent parallel-tier workers faulting in the same
        cold file map it exactly once.
        """
        real = os.path.abspath(path)
        existing = self._mapped.get(real)
        if existing is not None:
            return existing
        with self._map_lock:
            existing = self._mapped.get(real)
            if existing is not None:
                return existing
            if not os.path.exists(real):
                raise StorageError(f"cannot map missing file {path!r}")
            size = os.path.getsize(real)
            if size == 0:
                mapped = MappedFile(real, b"", 0, mapped=False)
            else:
                with open(real, "rb") as handle:
                    buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                mapped = MappedFile(real, buffer, size, mapped=True)
            self._mapped[real] = mapped
            return mapped

    def release(self, path: str) -> None:
        """Unmap a file if it is currently mapped."""
        real = os.path.abspath(path)
        with self._map_lock:
            mapped = self._mapped.pop(real, None)
        if mapped is not None and mapped.mapped:
            mapped.data.close()  # type: ignore[union-attr]

    def release_all(self) -> None:
        for path in list(self._mapped):
            self.release(path)

    @property
    def mapped_files(self) -> list[str]:
        return sorted(self._mapped)


@dataclass
class ArenaBlock:
    """A block of cache memory registered with the arena."""

    name: str
    size_bytes: int


class CacheArena:
    """A bounded accounting arena for caching structures.

    The arena does not own the cached arrays (NumPy does); it enforces the
    memory budget and exposes occupancy so that the caching manager can decide
    what to evict.
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes <= 0:
            raise StorageError("cache arena budget must be positive")
        self.budget_bytes = budget_bytes
        self._blocks: dict[str, ArenaBlock] = {}

    @property
    def used_bytes(self) -> int:
        return sum(block.size_bytes for block in self._blocks.values())

    @property
    def free_bytes(self) -> int:
        return self.budget_bytes - self.used_bytes

    def can_fit(self, size_bytes: int) -> bool:
        return size_bytes <= self.free_bytes

    def register(self, name: str, size_bytes: int) -> ArenaBlock:
        """Register a cache block; raises :class:`StorageError` when it does
        not fit (the caller is expected to evict and retry)."""
        if name in self._blocks:
            raise StorageError(f"arena block {name!r} already registered")
        if size_bytes > self.budget_bytes:
            raise StorageError(
                f"block {name!r} ({size_bytes} bytes) exceeds the arena budget "
                f"({self.budget_bytes} bytes)"
            )
        if not self.can_fit(size_bytes):
            raise StorageError(
                f"cache arena full: cannot fit {size_bytes} bytes "
                f"(free: {self.free_bytes})"
            )
        block = ArenaBlock(name, size_bytes)
        self._blocks[name] = block
        return block

    def unregister(self, name: str) -> None:
        self._blocks.pop(name, None)

    def blocks(self) -> list[ArenaBlock]:
        return list(self._blocks.values())
