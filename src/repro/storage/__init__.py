"""Storage substrates: binary file formats, structural indexes, memory manager, catalog."""
