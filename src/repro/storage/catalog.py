"""Dataset catalog and metadata store.

The catalog records every dataset the engine can query: its name, format,
location, element schema and per-format options.  It also acts as the
metadata store of §5.2 ("Enabling Cost-based Optimizations"): per-dataset
statistics gathered by the input plug-ins are attached to the catalog entry
and consulted by the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.core import types as t
from repro.errors import CatalogError


class DataFormat:
    """Names of the data formats supported natively by the engine."""

    CSV = "csv"
    JSON = "json"
    BINARY_ROW = "binary_row"
    BINARY_COLUMN = "binary_column"
    CACHE = "cache"

    ALL = (CSV, JSON, BINARY_ROW, BINARY_COLUMN, CACHE)


@dataclass
class Dataset:
    """A registered dataset."""

    name: str
    format: str
    path: str
    schema: t.RecordType
    options: dict[str, Any] = field(default_factory=dict)
    statistics: "DatasetStatistics | None" = None

    def element_type(self) -> t.RecordType:
        return self.schema


@dataclass
class DatasetStatistics:
    """Statistics maintained per data source by the metadata store."""

    cardinality: int
    min_values: dict[str, float] = field(default_factory=dict)
    max_values: dict[str, float] = field(default_factory=dict)
    distinct_estimates: dict[str, int] = field(default_factory=dict)
    #: Observed missing-value count per top-level field.  A field mapped to 0
    #: is *proven* free of nulls in the scanned data; absent fields are
    #: unknown.  Declared schemas are not verified against the data, so this
    #: is the only sound basis for the static analyzer's nullability hints.
    null_counts: dict[str, int] = field(default_factory=dict)

    def value_range(self, field_name: str) -> tuple[float, float] | None:
        if field_name in self.min_values and field_name in self.max_values:
            return self.min_values[field_name], self.max_values[field_name]
        return None

    def proven_non_null(self, field_name: str) -> bool:
        """Whether the collected data had zero missing values in the field."""
        return self.null_counts.get(field_name, -1) == 0


class Catalog:
    """Registry of datasets available to the engine."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}

    def register(self, dataset: Dataset, replace: bool = False) -> Dataset:
        if dataset.format not in DataFormat.ALL:
            raise CatalogError(f"unknown data format {dataset.format!r}")
        if dataset.name in self._datasets and not replace:
            raise CatalogError(f"dataset {dataset.name!r} is already registered")
        self._datasets[dataset.name] = dataset
        return dataset

    def unregister(self, name: str) -> None:
        self._datasets.pop(name, None)

    def get(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown dataset {name!r}; registered datasets: {sorted(self._datasets)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets.values())

    def names(self) -> list[str]:
        return sorted(self._datasets)

    def element_types(self) -> dict[str, t.RecordType]:
        """Map of dataset name to element record type (used by the binder)."""
        return {name: dataset.schema for name, dataset in self._datasets.items()}

    def set_statistics(self, name: str, statistics: DatasetStatistics) -> None:
        self.get(name).statistics = statistics

    def statistics(self, name: str) -> DatasetStatistics | None:
        return self.get(name).statistics
