"""Commercial column store "DBMS C" (comparator of §7).

DBMS C shares MonetDB's operator-at-a-time columnar architecture and adds the
optimizations the paper calls out:

* tables are **sorted at load time** on their first numeric column; selective
  predicates on that key skip data via binary search instead of scanning,
  which is why DBMS C wins the most selective COUNT queries of Figures 6/10
  and the sort-key-filtered Symantec queries (Q8, Q29),
* string columns are **dictionary-encoded** at load time, making string
  predicates cheap (Q12/Q13 in §7.2),
* the engine performs **sideways information passing**, re-applying filters on
  a join key to both join inputs,
* JSON support is as immature as MonetDB's (documents stored as strings,
  re-parsed per access), so it underperforms on JSON and is paired with a
  document store in the federated configuration.
"""

from __future__ import annotations

from repro.baselines.columnstore import MonetLikeEngine


class DbmsCLikeEngine(MonetLikeEngine):
    """Sorted, dictionary-encoded, skipping column store."""

    name = "dbms_c_like"
    sort_on_load = True
    sideways_information_passing = True
    dictionary_encode_strings = True
    count_only_groupby_fastpath = False
