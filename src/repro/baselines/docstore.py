"""MongoDB-like document store (comparator "MongoDB" of §7).

Architectural properties reproduced:

* data is loaded into a binary per-document serialization (the BSON analogue:
  documents are decoded once and stored whole),
* the engine is specialized for scanning documents and unnesting embedded
  arrays, so single-collection filters, counts and unnests are competitive,
* the aggregation machinery is interpreted per document and per expression,
  so queries computing several aggregates fall behind the relational engines
  (Figure 5),
* there is **no first-class join support**: cross-collection joins are
  emulated map-reduce style as nested loops over materialized documents, which
  is why MongoDB is only reported for the first join query in the paper,
* only JSON collections can be loaded; relational inputs are out of scope for
  the document store (the federated engine pairs it with a column store).
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.baselines.common import LoadReport, RowEngineBase
from repro.errors import ExecutionError, UnsupportedFeatureError


class MongoLikeEngine(RowEngineBase):
    """Document store: great at per-document scans, no native joins."""

    name = "mongo_like"
    # Joins over documents are never hash joins: the engine has no join
    # operator, so the emulation is a nested loop.
    hash_join_on_document_fields = False
    sideways_information_passing = False
    #: Per-document interpretation of the aggregation pipeline is heavier than
    #: a relational row pipeline.
    per_tuple_overhead = 4

    def __init__(self) -> None:
        super().__init__()
        self._collections: dict[str, list[dict]] = {}

    # -- loading --------------------------------------------------------------------

    def load_json(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        documents = self.read_json_objects(path)
        self._collections[name] = documents
        self._document_tables.add(name)
        report = LoadReport(name, time.perf_counter() - started, len(documents))
        self.load_reports.append(report)
        return report

    def load_csv(self, name: str, path: str) -> LoadReport:
        raise UnsupportedFeatureError(
            "the document store only ingests JSON collections; pair it with a "
            "relational engine (see repro.baselines.federated) for CSV data"
        )

    def load_columns(self, name: str, columns: dict[str, Iterable]) -> LoadReport:
        raise UnsupportedFeatureError(
            "the document store only ingests JSON collections"
        )

    # -- row access hooks ----------------------------------------------------------------

    def table_rows(self, dataset: str) -> Iterable[Any]:
        try:
            return self._collections[dataset]
        except KeyError as exc:
            raise ExecutionError(f"collection {dataset!r} has not been loaded") from exc

    def row_value(self, dataset: str, row: Any, path: tuple[str, ...]) -> Any:
        value: Any = row
        for step in path:
            if value is None:
                return None
            if isinstance(value, dict):
                value = value.get(step)
            else:
                return None
        return value
