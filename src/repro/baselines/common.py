"""Shared infrastructure for the simulated comparator systems.

:class:`BaselineEngine` defines the interface the benchmark harness drives:
explicit load steps (these systems ingest data before querying it, unlike
Proteus) and :meth:`BaselineEngine.execute` over a
:class:`~repro.workloads.query_spec.QuerySpec`.

:class:`RowEngineBase` provides a generic tuple-at-a-time interpreter shared
by the row-oriented engines: rows stream through Python-level filter, join,
unnest and aggregation loops — the per-tuple interpretation overhead the paper
identifies in static engines.  Sub-classes supply the storage representation
and the field accessors (in particular, how JSON documents are stored and how
expensive it is to reach into them).
"""

from __future__ import annotations

import csv
import json
import time
from abc import ABC, abstractmethod
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import ExecutionError, UnsupportedFeatureError
from repro.workloads.query_spec import (
    FilterSpec,
    GroupBySpec,
    ProjectionSpec,
    QuerySpec,
)

_COMPARATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass
class LoadReport:
    """Timing and size information of one load step."""

    dataset: str
    seconds: float
    rows: int
    bytes_stored: int = 0


@dataclass
class Aggregator:
    """Running aggregates for one output group."""

    count: int = 0
    sums: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    mins: dict[int, Any] = field(default_factory=dict)
    maxs: dict[int, Any] = field(default_factory=dict)
    non_null: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def update(self, values: list[tuple[int, str, Any]]) -> None:
        self.count += 1
        for index, func, value in values:
            if value is None:
                continue
            self.non_null[index] += 1
            if func in ("sum", "avg"):
                self.sums[index] += value
            elif func == "max":
                current = self.maxs.get(index)
                self.maxs[index] = value if current is None else max(current, value)
            elif func == "min":
                current = self.mins.get(index)
                self.mins[index] = value if current is None else min(current, value)

    def result(self, index: int, func: str) -> Any:
        if func == "count":
            return self.count
        if func == "sum":
            return self.sums.get(index, 0.0)
        if func == "avg":
            denominator = self.non_null.get(index, 0)
            return self.sums.get(index, 0.0) / denominator if denominator else None
        if func == "max":
            return self.maxs.get(index)
        if func == "min":
            return self.mins.get(index)
        raise ExecutionError(f"unknown aggregate {func!r}")


class BaselineEngine(ABC):
    """Interface of every simulated comparator system."""

    name: str = "baseline"

    def __init__(self) -> None:
        self.load_reports: list[LoadReport] = []

    # -- loading ----------------------------------------------------------------

    @abstractmethod
    def load_csv(self, name: str, path: str) -> LoadReport:
        """Ingest a CSV file (these systems load before querying)."""

    @abstractmethod
    def load_json(self, name: str, path: str) -> LoadReport:
        """Ingest a JSON object stream."""

    @abstractmethod
    def load_columns(self, name: str, columns: dict[str, Iterable]) -> LoadReport:
        """Ingest an already-binary relational table."""

    @property
    def total_load_seconds(self) -> float:
        return sum(report.seconds for report in self.load_reports)

    # -- querying ------------------------------------------------------------------

    @abstractmethod
    def execute(self, spec: QuerySpec) -> list[tuple]:
        """Execute a query spec and return the result rows."""

    # -- shared helpers ---------------------------------------------------------------

    @staticmethod
    def read_csv_rows(path: str) -> tuple[list[str], list[list[str]]]:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            rows = [row for row in reader if row]
        return header, rows

    @staticmethod
    def read_json_objects(path: str) -> list[dict]:
        objects: list[dict] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    objects.append(json.loads(line))
        return objects

    @staticmethod
    def coerce(text: str) -> Any:
        """Best-effort typed conversion of a CSV field."""
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            return text


class RowEngineBase(BaselineEngine):
    """Generic tuple-at-a-time interpreter for row-oriented engines."""

    #: Whether the optimizer can use a hash join when the join key lives
    #: inside a document-typed column (False models the "JSON is a BLOB opaque
    #: to the optimizer" behaviour that forces nested loops, cf. Q39 in §7.2).
    hash_join_on_document_fields: bool = True
    #: Apply filter predicates to both join inputs when the filtered field is
    #: the join key (sideways information passing).
    sideways_information_passing: bool = False
    #: Multiplier applied as pure per-tuple work to model engines with heavier
    #: or lighter per-tuple machinery (1 = no extra work).
    per_tuple_overhead: int = 1

    def __init__(self) -> None:
        super().__init__()
        self._document_tables: set[str] = set()

    # -- hooks supplied by concrete engines ------------------------------------------

    @abstractmethod
    def table_rows(self, dataset: str) -> Iterable[Any]:
        """Iterate the stored rows of a table."""

    @abstractmethod
    def row_value(self, dataset: str, row: Any, path: tuple[str, ...]) -> Any:
        """Extract a (possibly nested) field from a stored row."""

    def is_document_table(self, dataset: str) -> bool:
        return dataset in self._document_tables

    # -- generic execution ---------------------------------------------------------------

    def execute(self, spec: QuerySpec) -> list[tuple]:
        alias_to_dataset = {table.alias: table.dataset for table in spec.tables}
        if spec.unnest is not None:
            alias_to_dataset[spec.unnest.alias] = alias_to_dataset[spec.unnest.parent_alias]
        filters_by_alias: dict[str, list[FilterSpec]] = defaultdict(list)
        for filter_spec in spec.filters:
            filters_by_alias[filter_spec.alias].append(filter_spec)

        envs = self._base_stream(spec, spec.tables[0].alias, alias_to_dataset, filters_by_alias)
        joined = {spec.tables[0].alias}
        if spec.unnest is not None and spec.unnest.parent_alias == spec.tables[0].alias:
            envs = self._apply_unnest(spec, envs, alias_to_dataset, filters_by_alias)
            joined.add(spec.unnest.alias)

        for table in spec.tables[1:]:
            envs = self._join_next(
                spec, envs, table.alias, joined, alias_to_dataset, filters_by_alias
            )
            joined.add(table.alias)
            if spec.unnest is not None and spec.unnest.parent_alias == table.alias:
                envs = self._apply_unnest(spec, envs, alias_to_dataset, filters_by_alias)
                joined.add(spec.unnest.alias)

        return self._finalize(spec, envs, alias_to_dataset)

    # -- stages ------------------------------------------------------------------------------

    def _base_stream(
        self,
        spec: QuerySpec,
        alias: str,
        alias_to_dataset: dict[str, str],
        filters_by_alias: dict[str, list[FilterSpec]],
    ) -> Iterator[dict[str, Any]]:
        dataset = alias_to_dataset[alias]
        filters = filters_by_alias.get(alias, [])
        for row in self.table_rows(dataset):
            self._burn_per_tuple_overhead()
            if self._passes(dataset, row, filters):
                yield {alias: row}

    def _apply_unnest(
        self,
        spec: QuerySpec,
        envs: Iterable[dict[str, Any]],
        alias_to_dataset: dict[str, str],
        filters_by_alias: dict[str, list[FilterSpec]],
    ) -> Iterator[dict[str, Any]]:
        unnest = spec.unnest
        assert unnest is not None
        parent_dataset = alias_to_dataset[unnest.parent_alias]
        filters = filters_by_alias.get(unnest.alias, [])
        for env in envs:
            elements = self.row_value(parent_dataset, env[unnest.parent_alias], unnest.path)
            if not elements:
                continue
            for element in elements:
                self._burn_per_tuple_overhead()
                if all(
                    self._compare(_dig(element, f.path), f.op, f.value) for f in filters
                ):
                    yield {**env, unnest.alias: element}

    def _join_next(
        self,
        spec: QuerySpec,
        envs: Iterable[dict[str, Any]],
        alias: str,
        joined: set[str],
        alias_to_dataset: dict[str, str],
        filters_by_alias: dict[str, list[FilterSpec]],
    ) -> Iterator[dict[str, Any]]:
        dataset = alias_to_dataset[alias]
        filters = filters_by_alias.get(alias, [])
        join = None
        for candidate in spec.joins:
            if candidate.right_alias == alias and candidate.left_alias in joined:
                join = candidate
                break
            if candidate.left_alias == alias and candidate.right_alias in joined:
                join = type(candidate)(
                    candidate.right_alias, candidate.right_path,
                    candidate.left_alias, candidate.left_path,
                )
                break

        use_hash = join is not None and (
            self.hash_join_on_document_fields
            or not (
                self.is_document_table(dataset)
                or self.is_document_table(alias_to_dataset[join.left_alias])
            )
        )

        extra_filters = list(filters)
        if join is not None and self.sideways_information_passing:
            # Re-apply predicates on the join key of the other side.
            for filter_spec in spec.filters:
                if (
                    filter_spec.alias == join.left_alias
                    and filter_spec.path == join.left_path
                ):
                    extra_filters.append(
                        FilterSpec(alias, join.right_path, filter_spec.op, filter_spec.value)
                    )

        if join is not None and use_hash:
            build: dict[Any, list[dict[str, Any]]] = defaultdict(list)
            for env in envs:
                key = self.row_value(
                    alias_to_dataset[join.left_alias], env[join.left_alias], join.left_path
                )
                build[key].append(env)
            for row in self.table_rows(dataset):
                self._burn_per_tuple_overhead()
                if not self._passes(dataset, row, extra_filters):
                    continue
                key = self.row_value(dataset, row, join.right_path)
                for env in build.get(key, ()):
                    yield {**env, alias: row}
            return

        # Nested-loop fallback (no join predicate usable, or the optimizer is
        # blind to document internals).
        materialized = list(envs)
        for row in self.table_rows(dataset):
            if not self._passes(dataset, row, extra_filters):
                continue
            for env in materialized:
                self._burn_per_tuple_overhead()
                if join is not None:
                    left = self.row_value(
                        alias_to_dataset[join.left_alias], env[join.left_alias], join.left_path
                    )
                    right = self.row_value(dataset, row, join.right_path)
                    if left != right:
                        continue
                yield {**env, alias: row}

    def _finalize(
        self,
        spec: QuerySpec,
        envs: Iterable[dict[str, Any]],
        alias_to_dataset: dict[str, str],
    ) -> list[tuple]:
        def value_of(env: dict[str, Any], alias: str | None, path: tuple[str, ...]) -> Any:
            if alias is None:
                return None
            if spec.unnest is not None and alias == spec.unnest.alias:
                return _dig(env[alias], path)
            return self.row_value(alias_to_dataset[alias], env[alias], path)

        if not spec.is_aggregate():
            rows = []
            for env in envs:
                rows.append(tuple(value_of(env, p.alias, p.path) for p in spec.projections))
            return rows

        aggregate_specs = [
            (index, projection)
            for index, projection in enumerate(spec.projections)
            if projection.aggregate is not None
        ]
        if not spec.group_by:
            aggregator = Aggregator()
            for env in envs:
                aggregator.update(
                    [
                        (index, p.aggregate, value_of(env, p.alias, p.path)
                         if p.alias is not None else None)
                        for index, p in aggregate_specs
                    ]
                )
            row = tuple(
                aggregator.result(index, p.aggregate) if p.aggregate is not None else None
                for index, p in enumerate(spec.projections)
            )
            return [row]

        groups: dict[tuple, Aggregator] = {}
        group_keys: dict[tuple, tuple] = {}
        for env in envs:
            key = tuple(value_of(env, g.alias, g.path) for g in spec.group_by)
            if key not in groups:
                groups[key] = Aggregator()
                group_keys[key] = key
            groups[key].update(
                [
                    (index, p.aggregate, value_of(env, p.alias, p.path)
                     if p.alias is not None else None)
                    for index, p in aggregate_specs
                ]
            )
        results = []
        for key, aggregator in groups.items():
            row = []
            key_iter = iter(key)
            for index, projection in enumerate(spec.projections):
                if projection.aggregate is None:
                    row.append(next(key_iter))
                else:
                    row.append(aggregator.result(index, projection.aggregate))
            results.append(tuple(row))
        return results

    # -- small helpers ----------------------------------------------------------------------------

    def _passes(self, dataset: str, row: Any, filters: list[FilterSpec]) -> bool:
        for filter_spec in filters:
            value = self.row_value(dataset, row, filter_spec.path)
            if not self._compare(value, filter_spec.op, filter_spec.value):
                return False
        return True

    @staticmethod
    def _compare(value: Any, op: str, literal: Any) -> bool:
        if value is None:
            return False
        try:
            return _COMPARATORS[op](value, literal)
        except TypeError:
            return False

    def _burn_per_tuple_overhead(self) -> None:
        # Model heavier per-tuple machinery (virtual calls, datatype checks).
        for _ in range(self.per_tuple_overhead - 1):
            pass


def _dig(value: Any, path: tuple[str, ...]) -> Any:
    for step in path:
        if value is None:
            return None
        if isinstance(value, dict):
            value = value.get(step)
        else:
            return None
    return value
