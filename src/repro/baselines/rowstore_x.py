"""Commercial row store "DBMS X" (comparator of §7).

Architectural properties reproduced:

* relational data is kept in a compact main-memory layout ("main memory
  accelerator"): rows are tuples addressed through a column-position map,
  making per-field access cheaper than a dict lookup,
* JSON is stored with a **character-based encoding**: every access to a JSON
  field re-parses the document text, which is what makes DBMS X the slowest
  system on the JSON micro-benchmarks,
* the engine performs **sideways information passing**: filters on a join key
  are re-applied to the other join input, which closes part of the gap on the
  selective binary join queries (Figure 10).
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterable

from repro.baselines.common import LoadReport, RowEngineBase
from repro.errors import ExecutionError


class DbmsXLikeEngine(RowEngineBase):
    """Row store with character-encoded JSON and sideways information passing."""

    name = "dbms_x_like"
    hash_join_on_document_fields = True
    sideways_information_passing = True
    per_tuple_overhead = 1

    def __init__(self) -> None:
        super().__init__()
        self._relational: dict[str, tuple[dict[str, int], list[tuple]]] = {}
        self._documents: dict[str, list[str]] = {}

    # -- loading --------------------------------------------------------------------

    def load_csv(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        header, raw_rows = self.read_csv_rows(path)
        positions = {column: index for index, column in enumerate(header)}
        rows = [tuple(self.coerce(value) for value in raw) for raw in raw_rows]
        self._relational[name] = (positions, rows)
        report = LoadReport(name, time.perf_counter() - started, len(rows))
        self.load_reports.append(report)
        return report

    def load_json(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        # Character-based encoding: the document text is kept verbatim.
        with open(path, "r", encoding="utf-8") as handle:
            documents = [line.strip() for line in handle if line.strip()]
        self._documents[name] = documents
        self._document_tables.add(name)
        report = LoadReport(name, time.perf_counter() - started, len(documents))
        self.load_reports.append(report)
        return report

    def load_columns(self, name: str, columns: dict[str, Iterable]) -> LoadReport:
        started = time.perf_counter()
        names = list(columns)
        arrays = [list(columns[column]) for column in names]
        positions = {column: index for index, column in enumerate(names)}
        count = len(arrays[0]) if arrays else 0
        rows = [tuple(arrays[i][row] for i in range(len(names))) for row in range(count)]
        self._relational[name] = (positions, rows)
        report = LoadReport(name, time.perf_counter() - started, count)
        self.load_reports.append(report)
        return report

    # -- row access hooks ---------------------------------------------------------------

    def table_rows(self, dataset: str) -> Iterable[Any]:
        if dataset in self._relational:
            return self._relational[dataset][1]
        if dataset in self._documents:
            return self._documents[dataset]
        raise ExecutionError(f"table {dataset!r} has not been loaded")

    def row_value(self, dataset: str, row: Any, path: tuple[str, ...]) -> Any:
        if dataset in self._documents:
            # Character-based JSON: re-parse the document for every access.
            value: Any = json.loads(row)
            for step in path:
                if value is None:
                    return None
                if isinstance(value, dict):
                    value = value.get(step)
                else:
                    return None
            return value
        positions, _ = self._relational[dataset]
        index = positions.get(path[0]) if path else None
        if index is None:
            return None
        value = row[index]
        for step in path[1:]:
            if isinstance(value, dict):
                value = value.get(step)
            else:
                return None
        return value
