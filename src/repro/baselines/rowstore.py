"""PostgreSQL-like row store (comparator "PostgreSQL" of §7).

Architectural properties reproduced:

* data must be **loaded** before it can be queried (CSV parsed into typed row
  tuples, JSON parsed into a binary document representation — the ``jsonb``
  analogue),
* execution is a tuple-at-a-time interpreted pipeline (Volcano-style Python
  loops) — the per-tuple interpretation overhead of a general-purpose engine,
* JSON documents are stored pre-parsed (binary), so individual field accesses
  are cheap *navigations*, but the whole document is a single column whose
  internals are **opaque to the optimizer**: joins whose keys live inside a
  document fall back to a nested-loop plan, which is exactly what makes the
  paper's Q39 an outlier for PostgreSQL.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.baselines.common import LoadReport, RowEngineBase
from repro.errors import ExecutionError


class PostgresLikeEngine(RowEngineBase):
    """Row store with binary JSON documents and an optimizer blind to them."""

    name = "postgres_like"
    hash_join_on_document_fields = False
    sideways_information_passing = False
    per_tuple_overhead = 2

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[str, list[Any]] = {}

    # -- loading -----------------------------------------------------------------

    def load_csv(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        header, raw_rows = self.read_csv_rows(path)
        rows = [
            {column: self.coerce(value) for column, value in zip(header, raw)}
            for raw in raw_rows
        ]
        self._tables[name] = rows
        report = LoadReport(name, time.perf_counter() - started, len(rows))
        self.load_reports.append(report)
        return report

    def load_json(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        # jsonb analogue: documents are parsed once at load time and stored in
        # a binary (already-decoded) representation.
        documents = self.read_json_objects(path)
        self._tables[name] = documents
        self._document_tables.add(name)
        report = LoadReport(name, time.perf_counter() - started, len(documents))
        self.load_reports.append(report)
        return report

    def load_columns(self, name: str, columns: dict[str, Iterable]) -> LoadReport:
        started = time.perf_counter()
        names = list(columns)
        arrays = [list(columns[column]) for column in names]
        rows = [
            {column: arrays[i][row] for i, column in enumerate(names)}
            for row in range(len(arrays[0]) if arrays else 0)
        ]
        self._tables[name] = rows
        report = LoadReport(name, time.perf_counter() - started, len(rows))
        self.load_reports.append(report)
        return report

    # -- row access hooks -----------------------------------------------------------

    def table_rows(self, dataset: str) -> Iterable[Any]:
        try:
            return self._tables[dataset]
        except KeyError as exc:
            raise ExecutionError(f"table {dataset!r} has not been loaded") from exc

    def row_value(self, dataset: str, row: Any, path: tuple[str, ...]) -> Any:
        value: Any = row
        for step in path:
            if value is None:
                return None
            if isinstance(value, dict):
                value = value.get(step)
            else:
                return None
        return value
