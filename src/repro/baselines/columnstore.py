"""MonetDB-like column store (comparator "MonetDB" of §7).

Architectural properties reproduced:

* CSV and relational data are **loaded** into typed binary columns before
  querying (the load cost is part of the Symantec workload accounting),
* execution is **operator-at-a-time with full materialization**: every
  operator (selection, join, projection) materializes its complete output —
  position lists and gathered columns — before the next operator runs, so the
  materialization cost grows as queries become less selective (Figures 6/8/10),
* analytical queries over binary data are fast (vectorized kernels over
  columns), and a single-COUNT group-by has a fast path that reads the group
  sizes straight from the grouping structure (Figure 12),
* JSON support is immature: documents are stored as strings and every field
  access re-parses the document, so JSON queries are far slower than the
  native engines (the paper excludes MonetDB from most JSON experiments for
  this reason).
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from typing import Any, Iterable

import numpy as np

from repro.baselines.common import BaselineEngine, LoadReport
from repro.errors import ExecutionError
from repro.workloads.query_spec import FilterSpec, QuerySpec

_COMPARATORS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
}


class MonetLikeEngine(BaselineEngine):
    """Operator-at-a-time column store with immature JSON support."""

    name = "monet_like"
    #: Sort relational tables on their first numeric column at load time and
    #: use it to skip data (DBMS C behaviour; off for MonetDB).
    sort_on_load = False
    #: Re-apply filters on join keys to the other join side.
    sideways_information_passing = False
    #: Dictionary-encode string columns at load time (DBMS C behaviour).
    dictionary_encode_strings = False
    #: Serve single-COUNT group-bys from the grouping structure directly.
    count_only_groupby_fastpath = True

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[str, dict[str, np.ndarray]] = {}
        self._sort_keys: dict[str, str] = {}
        self._dictionaries: dict[str, dict[str, np.ndarray]] = {}
        self._documents: dict[str, list[str]] = {}

    # ------------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------------

    def load_csv(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        header, raw_rows = self.read_csv_rows(path)
        columns: dict[str, np.ndarray] = {}
        for index, column in enumerate(header):
            values = [self.coerce(row[index]) for row in raw_rows]
            columns[column] = _typed_array(values)
        self._store_relational(name, columns)
        report = LoadReport(name, time.perf_counter() - started, len(raw_rows))
        self.load_reports.append(report)
        return report

    def load_columns(self, name: str, columns: dict[str, Iterable]) -> LoadReport:
        started = time.perf_counter()
        typed = {column: _typed_array(list(values)) for column, values in columns.items()}
        self._store_relational(name, typed)
        count = len(next(iter(typed.values()))) if typed else 0
        report = LoadReport(name, time.perf_counter() - started, count)
        self.load_reports.append(report)
        return report

    def load_json(self, name: str, path: str) -> LoadReport:
        started = time.perf_counter()
        with open(path, "r", encoding="utf-8") as handle:
            documents = [line.strip() for line in handle if line.strip()]
        self._documents[name] = documents
        report = LoadReport(name, time.perf_counter() - started, len(documents))
        self.load_reports.append(report)
        return report

    def _store_relational(self, name: str, columns: dict[str, np.ndarray]) -> None:
        if self.sort_on_load:
            sort_key = next(
                (column for column, values in columns.items()
                 if values.dtype.kind in "if"),
                None,
            )
            if sort_key is not None:
                order = np.argsort(columns[sort_key], kind="stable")
                columns = {column: values[order] for column, values in columns.items()}
                self._sort_keys[name] = sort_key
        if self.dictionary_encode_strings:
            dictionaries: dict[str, np.ndarray] = {}
            encoded: dict[str, np.ndarray] = {}
            for column, values in columns.items():
                if values.dtype == object:
                    uniques, codes = np.unique(values, return_inverse=True)
                    dictionaries[column] = uniques
                    encoded[column] = codes.astype(np.int64)
                else:
                    encoded[column] = values
            self._dictionaries[name] = dictionaries
            columns = encoded
        self._tables[name] = columns

    # ------------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------------

    def row_count(self, dataset: str) -> int:
        if dataset in self._tables:
            columns = self._tables[dataset]
            return len(next(iter(columns.values()))) if columns else 0
        if dataset in self._documents:
            return len(self._documents[dataset])
        raise ExecutionError(f"table {dataset!r} has not been loaded")

    def column(self, dataset: str, path: tuple[str, ...]) -> np.ndarray:
        """Materialize one column (decoding dictionaries, parsing JSON)."""
        if dataset in self._tables:
            name = path[0]
            columns = self._tables[dataset]
            if name not in columns:
                raise ExecutionError(f"table {dataset!r} has no column {name!r}")
            values = columns[name]
            dictionary = self._dictionaries.get(dataset, {}).get(name)
            if dictionary is not None:
                return dictionary[values]
            return values
        if dataset in self._documents:
            # Immature JSON support: every access re-parses the documents.
            extracted = []
            for text in self._documents[dataset]:
                value: Any = json.loads(text)
                for step in path:
                    value = value.get(step) if isinstance(value, dict) else None
                extracted.append(value)
            return _typed_array(extracted)
        raise ExecutionError(f"table {dataset!r} has not been loaded")

    def encoded_filter_mask(
        self, dataset: str, filter_spec: FilterSpec, positions: np.ndarray
    ) -> np.ndarray:
        """Evaluate one filter over the rows at ``positions``."""
        values = self.column(dataset, filter_spec.path)[positions]
        comparator = _COMPARATORS[filter_spec.op]
        try:
            return np.asarray(comparator(values, filter_spec.value), dtype=bool)
        except TypeError:
            return np.zeros(len(values), dtype=bool)

    def filtered_positions(self, dataset: str, filters: list[FilterSpec]) -> np.ndarray:
        """Operator-at-a-time selection: each filter materializes a new
        position list (data skipping on the sort key when available)."""
        positions = np.arange(self.row_count(dataset), dtype=np.int64)
        remaining = list(filters)
        sort_key = self._sort_keys.get(dataset)
        if sort_key is not None:
            for filter_spec in list(remaining):
                if filter_spec.path == (sort_key,) and filter_spec.op in ("<", "<=", ">", ">="):
                    column = self._tables[dataset][sort_key]
                    if filter_spec.op in ("<", "<="):
                        side = "left" if filter_spec.op == "<" else "right"
                        end = int(np.searchsorted(column, filter_spec.value, side=side))
                        positions = positions[:end]
                    else:
                        side = "right" if filter_spec.op == ">" else "left"
                        start = int(np.searchsorted(column, filter_spec.value, side=side))
                        positions = positions[start:]
                    remaining.remove(filter_spec)
        for filter_spec in remaining:
            mask = self.encoded_filter_mask(dataset, filter_spec, positions)
            positions = positions[mask]  # full materialization of the new selection
        return positions

    # ------------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------------

    def execute(self, spec: QuerySpec) -> list[tuple]:
        if spec.unnest is not None:
            return self._execute_unnest(spec)
        alias_to_dataset = {table.alias: table.dataset for table in spec.tables}
        filters_by_alias: dict[str, list[FilterSpec]] = defaultdict(list)
        for filter_spec in spec.filters:
            filters_by_alias[filter_spec.alias].append(filter_spec)

        if self.sideways_information_passing:
            filters_by_alias = self._apply_sideways(spec, filters_by_alias)

        # Selection on each input, fully materialized as position lists.
        positions = {
            table.alias: self.filtered_positions(
                alias_to_dataset[table.alias], filters_by_alias.get(table.alias, [])
            )
            for table in spec.tables
        }

        # Left-deep joins, each materializing its full output.
        env_positions = {spec.tables[0].alias: positions[spec.tables[0].alias]}
        for table in spec.tables[1:]:
            env_positions = self._join(
                spec, env_positions, table.alias, positions[table.alias], alias_to_dataset
            )

        return self._project(spec, env_positions, alias_to_dataset)

    def _apply_sideways(
        self, spec: QuerySpec, filters_by_alias: dict[str, list[FilterSpec]]
    ) -> dict[str, list[FilterSpec]]:
        updated = defaultdict(list, {k: list(v) for k, v in filters_by_alias.items()})
        for join in spec.joins:
            for filter_spec in spec.filters:
                if filter_spec.alias == join.left_alias and filter_spec.path == join.left_path:
                    updated[join.right_alias].append(
                        FilterSpec(join.right_alias, join.right_path,
                                   filter_spec.op, filter_spec.value)
                    )
                if filter_spec.alias == join.right_alias and filter_spec.path == join.right_path:
                    updated[join.left_alias].append(
                        FilterSpec(join.left_alias, join.left_path,
                                   filter_spec.op, filter_spec.value)
                    )
        return updated

    def _join(
        self,
        spec: QuerySpec,
        env_positions: dict[str, np.ndarray],
        alias: str,
        new_positions: np.ndarray,
        alias_to_dataset: dict[str, str],
    ) -> dict[str, np.ndarray]:
        join = None
        for candidate in spec.joins:
            if candidate.right_alias == alias and candidate.left_alias in env_positions:
                join = candidate
                break
            if candidate.left_alias == alias and candidate.right_alias in env_positions:
                join = type(candidate)(
                    candidate.right_alias, candidate.right_path,
                    candidate.left_alias, candidate.left_path,
                )
                break
        if join is None:
            raise ExecutionError("the column store requires an equi-join predicate")
        left_alias = join.left_alias
        left_keys = self.column(alias_to_dataset[left_alias], join.left_path)[
            env_positions[left_alias]
        ]
        right_keys = self.column(alias_to_dataset[alias], join.right_path)[new_positions]
        order = np.argsort(right_keys, kind="stable")
        sorted_keys = right_keys[order]
        lo = np.searchsorted(sorted_keys, left_keys, side="left")
        hi = np.searchsorted(sorted_keys, left_keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        left_idx = np.repeat(np.arange(len(left_keys)), counts)
        cumulative = np.cumsum(counts)
        within = np.arange(total) - np.repeat(cumulative - counts, counts)
        right_sorted_idx = np.repeat(lo, counts) + within
        right_idx = order[right_sorted_idx]
        # Full materialization of the join output: every participating side's
        # position list is re-materialized at the new cardinality.
        result = {
            existing: positions[left_idx]
            for existing, positions in env_positions.items()
        }
        result[alias] = new_positions[right_idx]
        return result

    def _project(
        self,
        spec: QuerySpec,
        env_positions: dict[str, np.ndarray],
        alias_to_dataset: dict[str, str],
    ) -> list[tuple]:
        def gather(alias: str, path: tuple[str, ...]) -> np.ndarray:
            return self.column(alias_to_dataset[alias], path)[env_positions[alias]]

        count = len(next(iter(env_positions.values()))) if env_positions else 0

        if not spec.is_aggregate():
            arrays = [gather(p.alias, p.path) for p in spec.projections]
            return [tuple(_item(a[i]) for a in arrays) for i in range(count)]

        if spec.group_by:
            return self._project_grouped(spec, gather, count)

        row = []
        for projection in spec.projections:
            if projection.aggregate == "count" and projection.alias is None:
                row.append(count)
                continue
            values = gather(projection.alias, projection.path)
            row.append(_scalar_aggregate(projection.aggregate, values))
        return [tuple(row)]

    def _project_grouped(self, spec: QuerySpec, gather, count: int) -> list[tuple]:
        key_arrays = [gather(g.alias, g.path) for g in spec.group_by]
        combined = np.zeros(count, dtype=np.int64)
        factorized = []
        for keys in key_arrays:
            uniques, inverse = np.unique(keys, return_inverse=True)
            factorized.append(uniques)
            combined = combined * max(len(uniques), 1) + inverse
        unique_codes, first_index, group_ids = np.unique(
            combined, return_index=True, return_inverse=True
        )
        num_groups = len(unique_codes)
        aggregates = [p for p in spec.projections if p.aggregate is not None]
        only_count = (
            len(aggregates) == 1
            and aggregates[0].aggregate == "count"
            and self.count_only_groupby_fastpath
        )
        rows: list[list] = [[] for _ in range(num_groups)]
        key_reps = [keys[first_index] for keys in key_arrays]
        counts = np.bincount(group_ids, minlength=num_groups)
        for projection in spec.projections:
            if projection.aggregate is None:
                index = [i for i, g in enumerate(spec.group_by)
                         if (g.alias, g.path) == (projection.alias, projection.path)]
                source = key_reps[index[0]] if index else key_reps[0]
                for group in range(num_groups):
                    rows[group].append(_item(source[group]))
            elif projection.aggregate == "count":
                for group in range(num_groups):
                    rows[group].append(int(counts[group]))
            else:
                if only_count:  # pragma: no cover - defensive; not reachable
                    continue
                values = gather(projection.alias, projection.path).astype(np.float64)
                if projection.aggregate == "sum":
                    result = np.bincount(group_ids, weights=values, minlength=num_groups)
                elif projection.aggregate == "avg":
                    sums = np.bincount(group_ids, weights=values, minlength=num_groups)
                    result = sums / np.maximum(counts, 1)
                elif projection.aggregate == "max":
                    result = np.full(num_groups, -np.inf)
                    np.maximum.at(result, group_ids, values)
                else:
                    result = np.full(num_groups, np.inf)
                    np.minimum.at(result, group_ids, values)
                for group in range(num_groups):
                    rows[group].append(_item(result[group]))
        return [tuple(row) for row in rows]

    # -- JSON unnest fallback -------------------------------------------------------------

    def _execute_unnest(self, spec: QuerySpec) -> list[tuple]:
        """Costly workaround for nested collections (per-document parsing)."""
        unnest = spec.unnest
        assert unnest is not None
        alias_to_dataset = {table.alias: table.dataset for table in spec.tables}
        dataset = alias_to_dataset[unnest.parent_alias]
        if dataset not in self._documents:
            raise ExecutionError("unnest is only supported over JSON documents")
        parent_filters = [f for f in spec.filters if f.alias == unnest.parent_alias]
        element_filters = [f for f in spec.filters if f.alias == unnest.alias]
        count = 0
        values: dict[int, list] = defaultdict(list)
        for text in self._documents[dataset]:
            document = json.loads(text)
            if not all(
                _compare(_dig(document, f.path), f.op, f.value) for f in parent_filters
            ):
                continue
            elements = _dig(document, unnest.path) or []
            for element in elements:
                if not all(
                    _compare(_dig(element, f.path), f.op, f.value) for f in element_filters
                ):
                    continue
                count += 1
                for index, projection in enumerate(spec.projections):
                    if projection.aggregate in (None, "count"):
                        continue
                    source = element if projection.alias == unnest.alias else document
                    values[index].append(_dig(source, projection.path))
        row = []
        for index, projection in enumerate(spec.projections):
            if projection.aggregate == "count":
                row.append(count)
            elif projection.aggregate is not None:
                row.append(_scalar_aggregate(projection.aggregate,
                                             _typed_array(values[index])))
            else:
                row.append(None)
        return [tuple(row)]


def _typed_array(values: list) -> np.ndarray:
    if not values:
        return np.zeros(0, dtype=np.float64)
    if all(isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=bool)
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return np.asarray(values, dtype=np.int64)
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
        return np.asarray(
            [float(v) if v is not None else np.nan for v in values], dtype=np.float64
        )
    if all(isinstance(v, (int, float, type(None))) and not isinstance(v, bool)
           for v in values):
        return np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    return np.asarray(values, dtype=object)


def _scalar_aggregate(func: str, values: np.ndarray):
    if len(values) == 0:
        return 0 if func == "count" else None
    if func == "count":
        return int(len(values))
    if func == "sum":
        return _item(np.nansum(values.astype(np.float64)))
    if func == "avg":
        return _item(np.nanmean(values.astype(np.float64)))
    if func == "max":
        return _item(np.nanmax(values))
    if func == "min":
        return _item(np.nanmin(values))
    raise ExecutionError(f"unknown aggregate {func!r}")


def _item(value):
    if isinstance(value, np.generic):
        return value.item()
    return value


def _compare(value, op: str, literal) -> bool:
    if value is None:
        return False
    try:
        return bool(_COMPARATORS[op](value, literal))
    except TypeError:
        return False


def _dig(value, path: tuple[str, ...]):
    for step in path:
        if value is None:
            return None
        value = value.get(step) if isinstance(value, dict) else None
    return value
