"""Simulated comparator systems.

The paper evaluates Proteus against PostgreSQL, a commercial row store
("DBMS X"), MonetDB, a commercial column store ("DBMS C"), MongoDB, and a
federation of DBMS C + MongoDB behind a middleware layer.  Those systems
cannot be shipped here; instead, each module in this package implements an
engine with the *architectural properties the paper attributes the performance
differences to* — per-tuple interpretation, JSON-as-BLOB storage, load-before-
query, operator-at-a-time materialization, sort-based data skipping, lack of
native joins — so that the reproduced experiments exhibit the same comparative
shape.
"""

from repro.baselines.common import BaselineEngine, LoadReport
from repro.baselines.rowstore import PostgresLikeEngine
from repro.baselines.rowstore_x import DbmsXLikeEngine
from repro.baselines.columnstore import MonetLikeEngine
from repro.baselines.columnstore_c import DbmsCLikeEngine
from repro.baselines.docstore import MongoLikeEngine
from repro.baselines.federated import FederatedEngine

__all__ = [
    "BaselineEngine",
    "LoadReport",
    "PostgresLikeEngine",
    "DbmsXLikeEngine",
    "MonetLikeEngine",
    "DbmsCLikeEngine",
    "MongoLikeEngine",
    "FederatedEngine",
]
