"""Federated configuration: DBMS C + MongoDB behind a middleware layer (§7.2).

The second approach the paper evaluates on the Symantec workload packages two
specialized engines — a column store for flat (CSV/binary) data and a document
store for JSON — and integrates them with middleware.  The middleware

* routes single-format queries to the engine owning the data,
* for cross-format queries, pushes per-engine filters down, **extracts** the
  qualifying rows from each engine, converts them to an exchange format
  (Python dicts — the data-exchange cost of federation), joins them itself,
  and computes the final aggregates,
* keeps its own accounting (``middleware_seconds``) so that Table 3's
  "Middleware" column can be reproduced.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Iterable

from repro.baselines.columnstore_c import DbmsCLikeEngine
from repro.baselines.common import Aggregator, BaselineEngine, LoadReport
from repro.baselines.docstore import MongoLikeEngine
from repro.errors import ExecutionError
from repro.workloads.query_spec import (
    FilterSpec,
    ProjectionSpec,
    QuerySpec,
    TableRef,
)


class FederatedEngine(BaselineEngine):
    """DBMS C for flat data + MongoDB for JSON + a mediating layer."""

    name = "federated_dbmsc_mongo"

    def __init__(self) -> None:
        super().__init__()
        self.relational = DbmsCLikeEngine()
        self.documents = MongoLikeEngine()
        self._owner: dict[str, BaselineEngine] = {}
        #: Time spent purely in the middleware (data exchange + mediation).
        self.middleware_seconds = 0.0

    # -- loading ------------------------------------------------------------------

    def load_csv(self, name: str, path: str) -> LoadReport:
        report = self.relational.load_csv(name, path)
        self._owner[name] = self.relational
        self.load_reports.append(report)
        return report

    def load_columns(self, name: str, columns: dict[str, Iterable]) -> LoadReport:
        report = self.relational.load_columns(name, columns)
        self._owner[name] = self.relational
        self.load_reports.append(report)
        return report

    def load_json(self, name: str, path: str) -> LoadReport:
        report = self.documents.load_json(name, path)
        self._owner[name] = self.documents
        self.load_reports.append(report)
        return report

    # -- querying ------------------------------------------------------------------

    def execute(self, spec: QuerySpec) -> list[tuple]:
        owners = {self._owner[table.dataset] for table in spec.tables}
        if len(owners) == 1:
            return owners.pop().execute(spec)
        return self._execute_cross_system(spec)

    # -- middleware ---------------------------------------------------------------------

    def _execute_cross_system(self, spec: QuerySpec) -> list[tuple]:
        """Split the query per engine, exchange data, join and aggregate here."""
        started = time.perf_counter()
        fetched: dict[str, list[dict]] = {}
        for table in spec.tables:
            needed = self._needed_fields(spec, table.alias)
            sub_spec = self._extraction_spec(spec, table, needed)
            engine = self._owner[table.dataset]
            rows = engine.execute(sub_spec)
            # Data exchange: convert every row into the mediation format.
            fetched[table.alias] = [
                {".".join(projection.path): value
                 for projection, value in zip(sub_spec.projections, row)}
                for row in rows
            ]
        result = self._mediate(spec, fetched)
        self.middleware_seconds += time.perf_counter() - started
        return result

    def _needed_fields(self, spec: QuerySpec, alias: str) -> list[tuple[str, ...]]:
        needed: list[tuple[str, ...]] = []
        aliases = {alias}
        if spec.unnest is not None and spec.unnest.parent_alias == alias:
            aliases.add(spec.unnest.alias)
        for projection in spec.projections:
            if projection.alias in aliases and projection.path:
                needed.append(self._qualify(spec, projection.alias, projection.path))
        for join in spec.joins:
            if join.left_alias in aliases:
                needed.append(self._qualify(spec, join.left_alias, join.left_path))
            if join.right_alias in aliases:
                needed.append(self._qualify(spec, join.right_alias, join.right_path))
        for group in spec.group_by:
            if group.alias in aliases:
                needed.append(self._qualify(spec, group.alias, group.path))
        unique: list[tuple[str, ...]] = []
        for path in needed:
            if path not in unique:
                unique.append(path)
        return unique

    @staticmethod
    def _qualify(spec: QuerySpec, alias: str, path: tuple[str, ...]) -> tuple[str, ...]:
        """Qualify unnested element fields with the collection path so the
        per-engine extraction query can compute them."""
        if spec.unnest is not None and alias == spec.unnest.alias:
            return tuple(spec.unnest.path) + tuple(path)
        return tuple(path)

    def _extraction_spec(
        self, spec: QuerySpec, table: TableRef, needed: list[tuple[str, ...]]
    ) -> QuerySpec:
        alias = table.alias
        aliases = {alias}
        unnest = None
        if spec.unnest is not None and spec.unnest.parent_alias == alias:
            aliases.add(spec.unnest.alias)
            unnest = spec.unnest
        projections = []
        for path in needed:
            projection_alias = alias
            projection_path = path
            if unnest is not None and path[: len(unnest.path)] == tuple(unnest.path):
                projection_alias = unnest.alias
                projection_path = path[len(unnest.path):]
            projections.append(
                ProjectionSpec(
                    output=".".join(path), alias=projection_alias,
                    path=tuple(projection_path), aggregate=None,
                )
            )
        filters = [f for f in spec.filters if f.alias in aliases]
        return QuerySpec(
            name=f"{spec.name}:{alias}",
            tables=[table],
            projections=projections,
            filters=filters,
            joins=[],
            unnest=unnest,
            group_by=[],
        )

    def _mediate(self, spec: QuerySpec, fetched: dict[str, list[dict]]) -> list[tuple]:
        """Join the exchanged row sets and compute the final result."""
        aliases = [table.alias for table in spec.tables]
        current = [{aliases[0]: row} for row in fetched[aliases[0]]]
        joined = {aliases[0]}
        for alias in aliases[1:]:
            join = None
            for candidate in spec.joins:
                if candidate.right_alias == alias and candidate.left_alias in joined:
                    join = candidate
                    break
                if candidate.left_alias == alias and candidate.right_alias in joined:
                    join = type(candidate)(
                        candidate.right_alias, candidate.right_path,
                        candidate.left_alias, candidate.left_path,
                    )
                    break
            rows = fetched[alias]
            if join is None:
                current = [{**env, alias: row} for env in current for row in rows]
            else:
                build: dict = defaultdict(list)
                left_key = ".".join(self._qualify(spec, join.left_alias, join.left_path))
                right_key = ".".join(self._qualify(spec, join.right_alias, join.right_path))
                for env in current:
                    build[env[join.left_alias].get(left_key)].append(env)
                merged = []
                for row in rows:
                    for env in build.get(row.get(right_key), ()):
                        merged.append({**env, alias: row})
                current = merged
            joined.add(alias)
        return self._aggregate(spec, current)

    def _aggregate(self, spec: QuerySpec, envs: list[dict]) -> list[tuple]:
        def value_of(env: dict, projection_alias: str | None, path: tuple[str, ...]):
            if projection_alias is None:
                return None
            owner_alias = projection_alias
            if spec.unnest is not None and projection_alias == spec.unnest.alias:
                owner_alias = spec.unnest.parent_alias
            key = ".".join(self._qualify(spec, projection_alias, path))
            return env[owner_alias].get(key)

        if not spec.is_aggregate():
            return [
                tuple(value_of(env, p.alias, p.path) for p in spec.projections)
                for env in envs
            ]
        aggregate_specs = [
            (index, p) for index, p in enumerate(spec.projections) if p.aggregate is not None
        ]
        if not spec.group_by:
            aggregator = Aggregator()
            for env in envs:
                aggregator.update(
                    [(index, p.aggregate, value_of(env, p.alias, p.path)
                      if p.alias is not None else None)
                     for index, p in aggregate_specs]
                )
            return [tuple(
                aggregator.result(index, p.aggregate) if p.aggregate is not None else None
                for index, p in enumerate(spec.projections)
            )]
        groups: dict[tuple, Aggregator] = {}
        for env in envs:
            key = tuple(value_of(env, g.alias, g.path) for g in spec.group_by)
            aggregator = groups.setdefault(key, Aggregator())
            aggregator.update(
                [(index, p.aggregate, value_of(env, p.alias, p.path)
                  if p.alias is not None else None)
                 for index, p in aggregate_specs]
            )
        rows = []
        for key, aggregator in groups.items():
            row = []
            key_iter = iter(key)
            for index, projection in enumerate(spec.projections):
                if projection.aggregate is None:
                    row.append(next(key_iter))
                else:
                    row.append(aggregator.result(index, projection.aggregate))
            rows.append(tuple(row))
        return rows
