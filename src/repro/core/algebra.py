"""The nested relational algebra (Table 1 of the paper).

The logical operators are:

* :class:`Scan` — iterate a catalog dataset, binding each element,
* :class:`Select` — σp(X), filtering,
* :class:`Join` / outer join — X ⋈p Y,
* :class:`Unnest` / outer unnest — µ path p(X), unrolling a nested collection
  field bound by the child,
* :class:`Reduce` — ∆⊕/e p, the overloaded projection/aggregation operator
  that assembles the query output (a bag of records or global aggregates),
* :class:`Nest` — Γ⊕/e/f p/g, the grouping operator.

The algebra resembles the relational one, so relational optimizations apply,
while unnesting of queries over nested data is expressed with first-class
operators instead of opaque BLOB functions.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.expressions import Expression, OutputColumn, to_string


class LogicalPlan:
    """Base class for logical operators."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def bindings(self) -> set[str]:
        """Names of the variables visible to operators above this one."""
        result: set[str] = set()
        for child in self.children():
            result |= child.bindings()
        return result

    def datasets(self) -> set[str]:
        """Names of catalog datasets reachable below this operator."""
        result: set[str] = set()
        for child in self.children():
            result |= child.datasets()
        return result

    def fingerprint(self) -> tuple:
        raise NotImplementedError

    def walk(self) -> Iterator["LogicalPlan"]:
        """Post-order traversal (children before parents)."""
        for child in self.children():
            yield from child.walk()
        yield self

    def pretty(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.pretty()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicalPlan) and self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())


class Scan(LogicalPlan):
    """Iterate a catalog dataset, binding each element to ``binding``."""

    def __init__(self, dataset: str, binding: str):
        self.dataset = dataset
        self.binding = binding

    def bindings(self) -> set[str]:
        return {self.binding}

    def datasets(self) -> set[str]:
        return {self.dataset}

    def fingerprint(self) -> tuple:
        return ("scan", self.dataset, self.binding)

    def describe(self) -> str:
        return f"Scan({self.dataset} as {self.binding})"


class Select(LogicalPlan):
    """σp(X): keep elements of the child for which the predicate holds."""

    def __init__(self, predicate: Expression, child: LogicalPlan):
        self.predicate = predicate
        self.child = child

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        return ("select", self.predicate.fingerprint(), self.child.fingerprint())

    def describe(self) -> str:
        return f"Select({to_string(self.predicate)})"


class Join(LogicalPlan):
    """X ⋈p Y (inner) or left outer join when ``outer`` is True."""

    def __init__(
        self,
        predicate: Expression | None,
        left: LogicalPlan,
        right: LogicalPlan,
        outer: bool = False,
    ):
        self.predicate = predicate
        self.left = left
        self.right = right
        self.outer = outer

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def fingerprint(self) -> tuple:
        predicate = self.predicate.fingerprint() if self.predicate is not None else None
        return (
            "outerjoin" if self.outer else "join",
            predicate,
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def describe(self) -> str:
        name = "OuterJoin" if self.outer else "Join"
        predicate = to_string(self.predicate) if self.predicate is not None else "true"
        return f"{name}({predicate})"


class Unnest(LogicalPlan):
    """µ path p(X): unroll the nested collection ``binding.path`` of the child,
    binding each element to ``var``; ``outer`` keeps parents with empty
    collections (binding ``var`` to null)."""

    def __init__(
        self,
        binding: str,
        path: Sequence[str],
        var: str,
        child: LogicalPlan,
        predicate: Expression | None = None,
        outer: bool = False,
    ):
        self.binding = binding
        self.path = tuple(path)
        self.var = var
        self.child = child
        self.predicate = predicate
        self.outer = outer

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def bindings(self) -> set[str]:
        return self.child.bindings() | {self.var}

    def fingerprint(self) -> tuple:
        predicate = self.predicate.fingerprint() if self.predicate is not None else None
        return (
            "outerunnest" if self.outer else "unnest",
            self.binding,
            self.path,
            self.var,
            predicate,
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        name = "OuterUnnest" if self.outer else "Unnest"
        path = self.binding + "." + ".".join(self.path)
        suffix = f", {to_string(self.predicate)}" if self.predicate is not None else ""
        return f"{name}({self.var} <- {path}{suffix})"


class Reduce(LogicalPlan):
    """∆⊕/e p: assemble the final output of the (sub-)query.

    When ``monoid`` is ``"bag"`` the columns are plain expressions and the
    output is one record per qualifying child element; when the columns
    contain aggregate calls the output is a single record of aggregates.
    """

    def __init__(
        self,
        monoid: str,
        columns: Sequence[OutputColumn],
        child: LogicalPlan,
        predicate: Expression | None = None,
    ):
        self.monoid = monoid
        self.columns = list(columns)
        self.child = child
        self.predicate = predicate

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        predicate = self.predicate.fingerprint() if self.predicate is not None else None
        return (
            "reduce",
            self.monoid,
            tuple(c.fingerprint() for c in self.columns),
            predicate,
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        columns = ", ".join(f"{c.name}={to_string(c.expression)}" for c in self.columns)
        return f"Reduce[{self.monoid}]({columns})"


class Nest(LogicalPlan):
    """Γ⊕/e/f p/g: group the child by ``group_by`` and aggregate per group."""

    def __init__(
        self,
        columns: Sequence[OutputColumn],
        group_by: Sequence[Expression],
        child: LogicalPlan,
        predicate: Expression | None = None,
    ):
        self.columns = list(columns)
        self.group_by = list(group_by)
        self.child = child
        self.predicate = predicate

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        predicate = self.predicate.fingerprint() if self.predicate is not None else None
        return (
            "nest",
            tuple(c.fingerprint() for c in self.columns),
            tuple(e.fingerprint() for e in self.group_by),
            predicate,
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        columns = ", ".join(f"{c.name}={to_string(c.expression)}" for c in self.columns)
        keys = ", ".join(to_string(e) for e in self.group_by)
        return f"Nest(group by {keys}; {columns})"


def replace_child(plan: LogicalPlan, old: LogicalPlan, new: LogicalPlan) -> LogicalPlan:
    """Return a copy of ``plan`` with the direct child ``old`` replaced by ``new``."""
    if isinstance(plan, Select):
        return Select(plan.predicate, new if plan.child is old else plan.child)
    if isinstance(plan, Join):
        left = new if plan.left is old else plan.left
        right = new if plan.right is old else plan.right
        return Join(plan.predicate, left, right, plan.outer)
    if isinstance(plan, Unnest):
        return Unnest(plan.binding, plan.path, plan.var,
                      new if plan.child is old else plan.child,
                      plan.predicate, plan.outer)
    if isinstance(plan, Reduce):
        return Reduce(plan.monoid, plan.columns,
                      new if plan.child is old else plan.child, plan.predicate)
    if isinstance(plan, Nest):
        return Nest(plan.columns, plan.group_by,
                    new if plan.child is old else plan.child, plan.predicate)
    return plan
