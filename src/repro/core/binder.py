"""Name resolution for SQL queries.

The SQL parser leaves every column reference unresolved (binding ``"?"``)
because it does not know the catalog.  The binder rewrites each reference to a
concrete generator binding using the schemas of the referenced datasets:

* ``alias.column.path`` — the first path element names a generator alias,
* ``column.path`` — the column is looked up in the schema of every generator;
  exactly one generator must define it,
* ``SELECT *`` — expanded to every top-level field of every generator,
  in generator order.

The comprehension frontend produces fully-bound references, so it bypasses the
binder entirely.
"""

from __future__ import annotations

from typing import Mapping

from repro.core import types as t
from repro.core.calculus import Comprehension, DatasetSource, Filter, Generator, PathSource
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    IfThenElse,
    Literal,
    OutputColumn,
    Parameter,
    RecordConstruct,
    UnaryOp,
)
from repro.core.sql_parser import UNRESOLVED
from repro.errors import SchemaError


def bind_comprehension(
    comprehension: Comprehension, catalog_types: Mapping[str, t.RecordType]
) -> Comprehension:
    """Resolve unqualified references and ``SELECT *`` against the catalog.

    ``catalog_types`` maps dataset names to their element record types.
    Returns a new, validated comprehension; the input is not modified.
    """
    scope = _generator_scope(comprehension, catalog_types)
    binder = _Binder(scope)

    qualifiers = []
    for qualifier in comprehension.qualifiers:
        if isinstance(qualifier, Filter):
            qualifiers.append(Filter(binder.bind(qualifier.predicate)))
        else:
            qualifiers.append(qualifier)

    head: list[OutputColumn] = []
    for column in comprehension.head:
        if column.name == "*" and isinstance(column.expression, FieldRef) \
                and column.expression.binding == UNRESOLVED \
                and column.expression.path == ("*",):
            head.extend(_expand_star(comprehension, scope))
        else:
            head.append(OutputColumn(column.name, binder.bind(column.expression)))

    group_by = [binder.bind(expression) for expression in comprehension.group_by]

    bound = Comprehension(
        monoid=comprehension.monoid,
        head=head,
        qualifiers=qualifiers,
        group_by=group_by,
        order_by=list(comprehension.order_by),
        limit=comprehension.limit,
    )
    bound.validate()
    return bound


def _generator_scope(
    comprehension: Comprehension, catalog_types: Mapping[str, t.RecordType]
) -> dict[str, t.RecordType]:
    scope: dict[str, t.RecordType] = {}
    for generator in comprehension.generators():
        source = generator.source
        if isinstance(source, DatasetSource):
            try:
                scope[generator.var] = catalog_types[source.dataset]
            except KeyError as exc:
                raise SchemaError(f"unknown dataset {source.dataset!r}") from exc
        elif isinstance(source, PathSource):
            base = scope.get(source.binding)
            if base is None:
                raise SchemaError(
                    f"path generator {generator!r} over unbound variable"
                )
            element = base.resolve_path(source.path)
            if isinstance(element, t.CollectionType):
                element = element.element
            if isinstance(element, t.RecordType):
                scope[generator.var] = element
            else:
                scope[generator.var] = t.RecordType([t.Field("value", element)])
    return scope


def _expand_star(
    comprehension: Comprehension, scope: Mapping[str, t.RecordType]
) -> list[OutputColumn]:
    columns: list[OutputColumn] = []
    used_names: set[str] = set()
    for generator in comprehension.generators():
        record = scope.get(generator.var)
        if record is None:
            continue
        for field in record.fields:
            if field.dtype.is_primitive():
                name = field.name
                if name in used_names:
                    name = f"{generator.var}_{field.name}"
                used_names.add(name)
                columns.append(OutputColumn(name, FieldRef(generator.var, (field.name,))))
    return columns


class _Binder:
    def __init__(self, scope: Mapping[str, t.RecordType]):
        self.scope = scope

    def bind(self, expression: Expression) -> Expression:
        if isinstance(expression, FieldRef):
            return self._bind_field(expression)
        if isinstance(expression, (Literal, Parameter)):
            # Parameters resolve to values at execution time, not to columns;
            # they pass through binding (and normalization) untouched.
            return expression
        if isinstance(expression, BinaryOp):
            return BinaryOp(expression.op, self.bind(expression.left), self.bind(expression.right))
        if isinstance(expression, UnaryOp):
            return UnaryOp(expression.op, self.bind(expression.operand))
        if isinstance(expression, AggregateCall):
            argument = self.bind(expression.argument) if expression.argument is not None else None
            return AggregateCall(expression.func, argument)
        if isinstance(expression, RecordConstruct):
            return RecordConstruct(
                [(name, self.bind(expr)) for name, expr in expression.fields]
            )
        if isinstance(expression, IfThenElse):
            return IfThenElse(
                self.bind(expression.condition),
                self.bind(expression.then),
                self.bind(expression.otherwise),
            )
        return expression

    def _bind_field(self, reference: FieldRef) -> FieldRef:
        if reference.binding != UNRESOLVED:
            return reference
        path = reference.path
        if not path:
            raise SchemaError("empty column reference")
        first = path[0]
        # Case 1: the first element is a generator alias.
        if first in self.scope:
            return FieldRef(first, path[1:])
        # Case 2: unqualified column — search generator schemas.
        owners = [
            var for var, record in self.scope.items() if record.has_field(first)
        ]
        if not owners:
            raise SchemaError(
                f"column {'.'.join(path)!r} not found in any dataset in scope "
                f"({sorted(self.scope)})"
            )
        if len(owners) > 1:
            raise SchemaError(
                f"column {first!r} is ambiguous; qualify it with one of {owners}"
            )
        return FieldRef(owners[0], path)
