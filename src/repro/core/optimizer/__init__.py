"""Query optimizer: rewrite rules, statistics, cost model, join ordering and physical planning."""

from repro.core.optimizer.planner import Planner

__all__ = ["Planner"]
