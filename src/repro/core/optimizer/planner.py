"""Physical planner.

The planner turns an optimized logical plan into a physical plan:

1. rule-based rewrites (selection pushdown, selection merging),
2. cost-based join reordering over inner-join regions (greedy bottom-up,
   driven by plug-in statistics),
3. physical operator selection — radix hash join for equi-joins (build side =
   smaller input), nested-loop join otherwise, radix grouping for Nest,
4. projection pushdown into the scans (every scan lists exactly the field
   paths the query needs) and access-path selection — a scan whose required
   fields are all served by the caching manager is routed to the cache
   plug-in instead of the raw file.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.algebra import (
    Join,
    LogicalPlan,
    Nest,
    Reduce,
    Scan,
    Select,
    Unnest,
)
from repro.core.optimizer import rules
from repro.core.optimizer.join_order import (
    choose_build_side,
    collect_join_region,
    extract_equi_key,
    order_joins,
)
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.expressions import Expression
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysSort,
    PhysUnnest,
    PhysicalPlan,
)
from repro.core.sort import validate_limit, validate_order_columns
from repro.errors import PlanningError
from repro.plugins.base import FieldPath
from repro.plugins.cache_plugin import CachePlugin
from repro.storage.catalog import Catalog


class Planner:
    """Lowers logical plans to physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: StatisticsManager,
        cache_plugin: CachePlugin | None = None,
        enable_join_reordering: bool = True,
    ):
        self.catalog = catalog
        self.statistics = statistics
        self.cache_plugin = cache_plugin
        self.enable_join_reordering = enable_join_reordering
        #: Per-plan() state: unnest variable -> nested collection paths its
        #: unnest must materialize as element columns (nested-in-nested).
        self._nested_collection_paths: dict[str, set[FieldPath]] = {}
        self._unnested_bindings: set[str] = set()

    # -- entry point -------------------------------------------------------------

    def plan(
        self,
        logical: LogicalPlan,
        parameters: Mapping[int | str, object] | None = None,
        order_by: "list[tuple[str, bool]] | None" = None,
        limit: "int | Expression | None" = None,
    ) -> PhysicalPlan:
        """Lower ``logical`` to a physical plan.

        ``parameters`` optionally supplies bound query-parameter values: the
        selectivity formulas then estimate parameterized predicates with the
        concrete constants (join ordering, build-side choice), while the
        produced plan still carries the abstract ``Parameter`` nodes — its
        fingerprint, and therefore the compiled-program cache key, is
        independent of the values.

        ``order_by`` / ``limit`` place a :class:`PhysSort` above the plan
        root, making the query's ordering part of the plan (fingerprinted,
        explained, executed by the tier-specialized sort kernels).
        """
        self.statistics.parameter_values = parameters
        try:
            logical = rules.pushdown_selections(logical)
            binding_datasets = self.binding_datasets(logical)
            if self.enable_join_reordering:
                logical = self._reorder_joins(logical, binding_datasets)
            required = rules.required_paths(logical)
            self._unnested_bindings = {
                node.binding for node in logical.walk() if isinstance(node, Unnest)
            }
            # Nested-in-nested: when the parent of an unnest is itself an
            # unnest variable, the inner collection cannot be reached through
            # plug-in OIDs — the parent unnest must materialize it as an
            # element column so the batch tiers can flatten it in memory.
            unnest_vars = {
                node.var for node in logical.walk() if isinstance(node, Unnest)
            }
            self._nested_collection_paths: dict[str, set[FieldPath]] = {}
            for node in logical.walk():
                if isinstance(node, Unnest) and node.binding in unnest_vars:
                    self._nested_collection_paths.setdefault(
                        node.binding, set()
                    ).add(tuple(node.path))
            physical = self._convert(logical, required, binding_datasets)
        finally:
            self.statistics.parameter_values = None
        if order_by or limit is not None:
            physical = self._attach_sort(physical, order_by or [], limit)
        return physical

    def _attach_sort(
        self,
        physical: PhysicalPlan,
        order_by: "list[tuple[str, bool]]",
        limit: "int | Expression | None",
    ) -> PhysSort:
        """Place the ORDER BY / LIMIT root, validating it at plan time: sort
        keys must name output columns, and a literal LIMIT must be
        non-negative (a parameterized one is validated identically when its
        value binds)."""
        if not isinstance(physical, (PhysReduce, PhysNest)):  # pragma: no cover
            raise PlanningError(
                f"cannot sort the output of plan root {physical.describe()}"
            )
        names = [column.name for column in physical.columns]
        validate_order_columns(names, names, order_by)
        if limit is not None and not isinstance(limit, Expression):
            limit = validate_limit(int(limit))
        return PhysSort(order_by, limit, physical)

    # -- helpers -------------------------------------------------------------------

    def binding_datasets(self, logical: LogicalPlan) -> dict[str, str]:
        """Map every binding to the dataset it (transitively) originates from."""
        mapping: dict[str, str] = {}
        for node in logical.walk():
            if isinstance(node, Scan):
                mapping[node.binding] = node.dataset
        changed = True
        while changed:
            changed = False
            for node in logical.walk():
                if isinstance(node, Unnest) and node.var not in mapping:
                    parent = mapping.get(node.binding)
                    if parent is not None:
                        mapping[node.var] = parent
                        changed = True
        return mapping

    def _reorder_joins(
        self, logical: LogicalPlan, binding_datasets: Mapping[str, str]
    ) -> LogicalPlan:
        if isinstance(logical, Join) and not logical.outer:
            region = collect_join_region(logical)
            if region is not None:
                inputs, predicates = region
                inputs = [self._reorder_joins(i, binding_datasets) for i in inputs]
                return order_joins(inputs, predicates, self.statistics, binding_datasets)
        if isinstance(logical, Select):
            return Select(
                logical.predicate, self._reorder_joins(logical.child, binding_datasets)
            )
        if isinstance(logical, Unnest):
            return Unnest(
                logical.binding,
                logical.path,
                logical.var,
                self._reorder_joins(logical.child, binding_datasets),
                logical.predicate,
                logical.outer,
            )
        if isinstance(logical, Reduce):
            return Reduce(
                logical.monoid,
                logical.columns,
                self._reorder_joins(logical.child, binding_datasets),
                logical.predicate,
            )
        if isinstance(logical, Nest):
            return Nest(
                logical.columns,
                logical.group_by,
                self._reorder_joins(logical.child, binding_datasets),
                logical.predicate,
            )
        if isinstance(logical, Join):
            return Join(
                logical.predicate,
                self._reorder_joins(logical.left, binding_datasets),
                self._reorder_joins(logical.right, binding_datasets),
                logical.outer,
            )
        return logical

    # -- conversion ------------------------------------------------------------------

    def _convert(
        self,
        node: LogicalPlan,
        required: Mapping[str, set[FieldPath]],
        binding_datasets: Mapping[str, str],
    ) -> PhysicalPlan:
        if isinstance(node, Scan):
            return self._convert_scan(node, required)
        if isinstance(node, Select):
            return PhysSelect(
                node.predicate, self._convert(node.child, required, binding_datasets)
            )
        if isinstance(node, Join):
            return self._convert_join(node, required, binding_datasets)
        if isinstance(node, Unnest):
            element_paths = sorted(
                required.get(node.var, set())
                | self._nested_collection_paths.get(node.var, set())
            )
            return PhysUnnest(
                node.binding,
                node.path,
                node.var,
                element_paths,
                self._convert(node.child, required, binding_datasets),
                node.predicate,
                node.outer,
            )
        if isinstance(node, Reduce):
            child = self._convert(node.child, required, binding_datasets)
            if node.predicate is not None:
                child = PhysSelect(node.predicate, child)
            return PhysReduce(node.monoid, node.columns, child)
        if isinstance(node, Nest):
            child = self._convert(node.child, required, binding_datasets)
            if node.predicate is not None:
                child = PhysSelect(node.predicate, child)
            return PhysNest(node.columns, node.group_by, child)
        raise PlanningError(f"cannot lower logical operator {node.describe()}")

    def _convert_scan(
        self, node: Scan, required: Mapping[str, set[FieldPath]]
    ) -> PhysScan:
        paths = sorted(required.get(node.binding, set()))
        access_path = "raw"
        if (
            self.cache_plugin is not None
            and paths
            and node.binding not in self._unnested_bindings
            and self.cache_plugin.can_serve(node.dataset, paths)
        ):
            access_path = "cache"
        return PhysScan(node.dataset, node.binding, paths, access_path=access_path)

    def _convert_join(
        self,
        node: Join,
        required: Mapping[str, set[FieldPath]],
        binding_datasets: Mapping[str, str],
    ) -> PhysicalPlan:
        left_logical, right_logical = node.left, node.right
        left_key, right_key, residual = extract_equi_key(
            node.predicate, left_logical.bindings(), right_logical.bindings()
        )
        left = self._convert(left_logical, required, binding_datasets)
        right = self._convert(right_logical, required, binding_datasets)
        if left_key is None or right_key is None:
            return PhysNestedLoopJoin(node.predicate, left, right, node.outer)
        left_rows = self.statistics.estimate_rows(left_logical, binding_datasets)
        right_rows = self.statistics.estimate_rows(right_logical, binding_datasets)
        if choose_build_side(left_rows, right_rows) and not node.outer:
            left, right = right, left
            left_key, right_key = right_key, left_key
        return PhysHashJoin(left_key, right_key, left, right, residual, node.outer)
