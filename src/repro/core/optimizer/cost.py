"""Cost model.

Costing of data accesses is delegated to the input plug-ins (§5.2): each
plug-in exposes a per-value extraction cost and a ``scan_cost`` formula, which
the optimizer instantiates with the statistics held in the catalog.  On top of
the plug-in costs, the model adds textbook formulas for the engine's physical
operators (radix join materializes both sides, grouping materializes its
input, selections and reductions stream).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.optimizer.statistics import StatisticsManager
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysUnnest,
    PhysicalPlan,
)
from repro.plugins.base import InputPlugin
from repro.storage.catalog import Catalog

#: Per-row processing cost of pipelined operators (relative units).
PIPELINE_ROW_COST = 0.01
#: Per-row cost of materializing into a hash table / partition.
MATERIALIZE_ROW_COST = 0.05
#: Cost of reading a cached binary column per row.
CACHE_ROW_COST = 0.002


class CostModel:
    """Estimates the execution cost of physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: StatisticsManager,
        plugins: Mapping[str, InputPlugin],
    ):
        self.catalog = catalog
        self.statistics = statistics
        self.plugins = plugins

    # -- leaf costs --------------------------------------------------------------

    def scan_cost(self, scan: PhysScan) -> float:
        dataset = self.catalog.get(scan.dataset)
        cardinality = self.statistics.dataset_cardinality(scan.dataset)
        if scan.access_path == "cache":
            return cardinality * CACHE_ROW_COST * max(len(scan.paths), 1)
        plugin = self.plugins.get(dataset.format)
        if plugin is None:
            return cardinality * max(len(scan.paths), 1)
        return plugin.scan_cost(dataset, scan.paths, dataset.statistics)

    # -- plan costs ----------------------------------------------------------------

    def plan_cost(self, plan: PhysicalPlan, binding_datasets: Mapping[str, str]) -> float:
        """Total estimated cost of a physical plan."""
        rows, cost = self._cost(plan, binding_datasets)
        return cost

    def _cost(
        self, plan: PhysicalPlan, binding_datasets: Mapping[str, str]
    ) -> tuple[float, float]:
        if isinstance(plan, PhysScan):
            rows = float(self.statistics.dataset_cardinality(plan.dataset))
            return rows, self.scan_cost(plan)
        if isinstance(plan, PhysSelect):
            child_rows, child_cost = self._cost(plan.child, binding_datasets)
            selectivity = self.statistics.predicate_selectivity(
                plan.predicate, binding_datasets
            )
            return child_rows * selectivity, child_cost + child_rows * PIPELINE_ROW_COST
        if isinstance(plan, PhysUnnest):
            child_rows, child_cost = self._cost(plan.child, binding_datasets)
            fanout = 4.0
            selectivity = self.statistics.predicate_selectivity(
                plan.predicate, binding_datasets
            )
            rows = child_rows * fanout * selectivity
            return rows, child_cost + rows * PIPELINE_ROW_COST
        if isinstance(plan, PhysHashJoin):
            left_rows, left_cost = self._cost(plan.left, binding_datasets)
            right_rows, right_cost = self._cost(plan.right, binding_datasets)
            build = left_rows * MATERIALIZE_ROW_COST
            probe = right_rows * MATERIALIZE_ROW_COST
            output = max(left_rows, right_rows)
            return output, left_cost + right_cost + build + probe + output * PIPELINE_ROW_COST
        if isinstance(plan, PhysNestedLoopJoin):
            left_rows, left_cost = self._cost(plan.left, binding_datasets)
            right_rows, right_cost = self._cost(plan.right, binding_datasets)
            pairs = left_rows * right_rows
            return pairs * 0.1, left_cost + right_cost + pairs * PIPELINE_ROW_COST
        if isinstance(plan, PhysNest):
            child_rows, child_cost = self._cost(plan.child, binding_datasets)
            return child_rows * 0.1, child_cost + child_rows * MATERIALIZE_ROW_COST
        if isinstance(plan, PhysReduce):
            child_rows, child_cost = self._cost(plan.child, binding_datasets)
            return 1.0, child_cost + child_rows * PIPELINE_ROW_COST
        children = plan.children()
        if children:
            return self._cost(children[0], binding_datasets)
        return 1.0, 1.0
