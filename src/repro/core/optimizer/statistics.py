"""Statistics and selectivity estimation.

The metadata store keeps per-dataset cardinalities and min/max values per
attribute (§5.2); the input plug-ins collect them during cold accesses or when
a blocking operator materializes values.  The estimator below instantiates the
standard textbook formulas with those statistics — the paper's stated baseline
("assume that the default selectivity of a predicate is 10%", uniform ranges
for range predicates) — and is consulted by join ordering, build-side
selection and access-path costing.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.algebra import Join, LogicalPlan, Nest, Reduce, Scan, Select, Unnest
from repro.core.expressions import (
    BinaryOp,
    Expression,
    FieldRef,
    Literal,
    Parameter,
    UnaryOp,
    conjuncts,
)
from repro.errors import SchemaError
from repro.storage.catalog import Catalog, DatasetStatistics

#: Fallbacks used when no statistics are available.
DEFAULT_SELECTIVITY = 0.1
DEFAULT_EQUALITY_SELECTIVITY = 0.01
DEFAULT_CARDINALITY = 1_000_000
DEFAULT_UNNEST_FANOUT = 4.0


class StatisticsManager:
    """Estimates cardinalities and selectivities from catalog statistics."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        #: Bound query-parameter values for the estimation in flight.  Set by
        #: ``Planner.plan(..., parameters=...)`` so range/equality formulas
        #: can use the concrete constants of a prepared execution; ``None``
        #: (or a missing key) falls back to the default selectivities — the
        #: plan itself never embeds the values, so its fingerprint stays
        #: parameter-abstracted.
        self.parameter_values: Mapping[int | str, object] | None = None

    # -- dataset level ---------------------------------------------------------

    def dataset_cardinality(self, dataset: str) -> int:
        statistics = self._statistics(dataset)
        if statistics is None:
            return DEFAULT_CARDINALITY
        return statistics.cardinality

    def _statistics(self, dataset: str) -> DatasetStatistics | None:
        if dataset in self.catalog:
            return self.catalog.get(dataset).statistics
        return None

    # -- predicate selectivity ----------------------------------------------------

    def predicate_selectivity(
        self, predicate: Expression | None, binding_datasets: Mapping[str, str]
    ) -> float:
        """Estimated fraction of input satisfying ``predicate``."""
        if predicate is None:
            return 1.0
        selectivity = 1.0
        for conjunct in conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(conjunct, binding_datasets)
        return max(min(selectivity, 1.0), 1e-6)

    def _conjunct_selectivity(
        self, predicate: Expression, binding_datasets: Mapping[str, str]
    ) -> float:
        if isinstance(predicate, Literal):
            return 1.0 if predicate.value else 0.0
        if isinstance(predicate, UnaryOp) and predicate.op == "not":
            return 1.0 - self._conjunct_selectivity(predicate.operand, binding_datasets)
        if isinstance(predicate, BinaryOp):
            if predicate.op == "or":
                left = self._conjunct_selectivity(predicate.left, binding_datasets)
                right = self._conjunct_selectivity(predicate.right, binding_datasets)
                return min(left + right - left * right, 1.0)
            if predicate.op == "and":
                return (
                    self._conjunct_selectivity(predicate.left, binding_datasets)
                    * self._conjunct_selectivity(predicate.right, binding_datasets)
                )
            return self._comparison_selectivity(predicate, binding_datasets)
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(
        self, predicate: BinaryOp, binding_datasets: Mapping[str, str]
    ) -> float:
        field, literal, op = _normalize_comparison(predicate, self.parameter_values)
        if field is None or literal is None:
            return (
                DEFAULT_EQUALITY_SELECTIVITY
                if predicate.op == "="
                else DEFAULT_SELECTIVITY
            )
        dataset = binding_datasets.get(field.binding)
        statistics = self._statistics(dataset) if dataset else None
        if statistics is None or not field.path:
            return DEFAULT_EQUALITY_SELECTIVITY if op == "=" else DEFAULT_SELECTIVITY
        field_name = ".".join(field.path)
        value_range = statistics.value_range(field_name) or statistics.value_range(
            field.path[0]
        )
        if value_range is None or not isinstance(literal.value, (int, float)):
            return DEFAULT_EQUALITY_SELECTIVITY if op == "=" else DEFAULT_SELECTIVITY
        low, high = value_range
        if high <= low:
            return DEFAULT_SELECTIVITY
        value = float(literal.value)
        span = high - low
        if op == "=":
            distinct = statistics.distinct_estimates.get(field_name)
            return 1.0 / distinct if distinct else DEFAULT_EQUALITY_SELECTIVITY
        if op in ("<", "<="):
            return min(max((value - low) / span, 0.0), 1.0)
        if op in (">", ">="):
            return min(max((high - value) / span, 0.0), 1.0)
        if op == "!=":
            return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_SELECTIVITY

    # -- plan-level cardinality -----------------------------------------------------

    def estimate_rows(
        self, plan: LogicalPlan, binding_datasets: Mapping[str, str]
    ) -> float:
        """Rough output cardinality of a logical plan fragment."""
        if isinstance(plan, Scan):
            return float(self.dataset_cardinality(plan.dataset))
        if isinstance(plan, Select):
            child = self.estimate_rows(plan.child, binding_datasets)
            return child * self.predicate_selectivity(plan.predicate, binding_datasets)
        if isinstance(plan, Join):
            left = self.estimate_rows(plan.left, binding_datasets)
            right = self.estimate_rows(plan.right, binding_datasets)
            if plan.predicate is None:
                return left * right
            selectivity = self.predicate_selectivity(plan.predicate, binding_datasets)
            # Equi-join estimate: |L| * |R| / max(distinct) approximated with
            # the generic selectivity when distinct counts are unknown.
            return max(left * right * max(selectivity, 1.0 / max(left, right, 1.0)), 1.0)
        if isinstance(plan, Unnest):
            child = self.estimate_rows(plan.child, binding_datasets)
            fanout = DEFAULT_UNNEST_FANOUT
            selectivity = self.predicate_selectivity(plan.predicate, binding_datasets)
            return child * fanout * selectivity
        if isinstance(plan, (Reduce, Nest)):
            return self.estimate_rows(plan.child, binding_datasets)
        children = plan.children()
        if children:
            return self.estimate_rows(children[0], binding_datasets)
        return float(DEFAULT_CARDINALITY)


def _normalize_comparison(
    predicate: BinaryOp,
    parameter_values: Mapping[int | str, object] | None = None,
) -> tuple[FieldRef | None, Literal | None, str]:
    """Orient a comparison as ``field op literal`` when possible.

    A :class:`Parameter` whose value is bound in ``parameter_values`` counts
    as a literal of that value, so prepared executions are estimated with the
    same formulas as literal queries."""

    def as_literal(expression: Expression) -> Literal | None:
        if isinstance(expression, Literal):
            return expression
        if (
            isinstance(expression, Parameter)
            and parameter_values is not None
            and expression.key in parameter_values
        ):
            try:
                return Literal(parameter_values[expression.key])
            except SchemaError:
                return None  # untypable value: fall back to defaults
        return None

    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(predicate.left, FieldRef):
        literal = as_literal(predicate.right)
        if literal is not None:
            return predicate.left, literal, predicate.op
    if isinstance(predicate.right, FieldRef):
        literal = as_literal(predicate.left)
        if literal is not None:
            return predicate.right, literal, flipped.get(predicate.op, predicate.op)
    return None, None, predicate.op
