"""Join ordering and build-side selection.

The optimizer follows a bottom-up strategy (§4): starting from the filtered
base inputs, it greedily joins the pair with the smallest estimated result,
preferring equi-join edges over cartesian products, and always materializes
the smaller input as the radix-join build side.  For the query shapes of the
paper's evaluation (two- and three-way joins) the greedy order coincides with
the optimal one; the module is written so a DP enumerator could replace the
greedy loop without touching the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.algebra import Join, LogicalPlan
from repro.core.expressions import (
    Expression,
    conjunction,
    conjuncts,
    is_equi_join_predicate,
)
from repro.core.optimizer.statistics import StatisticsManager


@dataclass
class JoinInput:
    """One input of a join region: a plan fragment and its estimated rows."""

    plan: LogicalPlan
    rows: float


def collect_join_region(plan: LogicalPlan) -> tuple[list[LogicalPlan], list[Expression]] | None:
    """If ``plan`` is a tree of inner joins, return its inputs and predicates.

    Returns ``None`` when the plan is not a join (nothing to reorder).
    """
    if not isinstance(plan, Join) or plan.outer:
        return None
    inputs: list[LogicalPlan] = []
    predicates: list[Expression] = []

    def visit(node: LogicalPlan) -> None:
        if isinstance(node, Join) and not node.outer:
            if node.predicate is not None:
                predicates.extend(conjuncts(node.predicate))
            visit(node.left)
            visit(node.right)
        else:
            inputs.append(node)

    visit(plan)
    return inputs, predicates


def order_joins(
    inputs: Sequence[LogicalPlan],
    predicates: Sequence[Expression],
    statistics: StatisticsManager,
    binding_datasets: Mapping[str, str],
) -> LogicalPlan:
    """Greedily rebuild a left-deep join tree over ``inputs``.

    Each step joins the current tree with the unjoined input that (a) is
    connected to it by at least one predicate, and (b) has the smallest
    estimated cardinality; remaining predicates are attached as soon as all of
    their bindings are available.
    """
    remaining = [
        JoinInput(plan, statistics.estimate_rows(plan, binding_datasets)) for plan in inputs
    ]
    if not remaining:
        raise ValueError("join region has no inputs")
    pending = list(predicates)

    # Start from the smallest input.
    remaining.sort(key=lambda item: item.rows)
    current = remaining.pop(0)
    tree = current.plan
    tree_bindings = set(tree.bindings())

    while remaining:
        candidate_index = _pick_next(remaining, pending, tree_bindings)
        nxt = remaining.pop(candidate_index)
        applicable, pending = _split_applicable(
            pending, tree_bindings | set(nxt.plan.bindings())
        )
        tree = Join(conjunction(applicable), tree, nxt.plan)
        tree_bindings |= set(nxt.plan.bindings())

    if pending:
        # Predicates that still reference missing bindings should not exist in
        # a validated plan; attach them defensively to the top join.
        if isinstance(tree, Join):
            combined = conjunction(
                ([tree.predicate] if tree.predicate is not None else []) + pending
            )
            tree = Join(combined, tree.left, tree.right, tree.outer)
    return tree


def _pick_next(
    remaining: list[JoinInput], pending: list[Expression], tree_bindings: set[str]
) -> int:
    connected: list[int] = []
    for index, item in enumerate(remaining):
        bindings = tree_bindings | set(item.plan.bindings())
        for predicate in pending:
            if predicate.bindings() <= bindings and _spans(predicate, tree_bindings, item):
                connected.append(index)
                break
    candidates = connected if connected else list(range(len(remaining)))
    return min(candidates, key=lambda index: remaining[index].rows)


def _spans(predicate: Expression, tree_bindings: set[str], item: JoinInput) -> bool:
    refs = predicate.bindings()
    return bool(refs & tree_bindings) and bool(refs & set(item.plan.bindings()))


def _split_applicable(
    pending: list[Expression], available: set[str]
) -> tuple[list[Expression], list[Expression]]:
    applicable = [p for p in pending if p.bindings() <= available]
    rest = [p for p in pending if not (p.bindings() <= available)]
    return applicable, rest


def choose_build_side(
    left_rows: float, right_rows: float
) -> bool:
    """Return ``True`` when the sides should be swapped so that the smaller
    input becomes the radix-join build side."""
    return right_rows < left_rows


def extract_equi_key(
    predicate: Expression | None, left_bindings: set[str], right_bindings: set[str]
) -> tuple[Expression | None, Expression | None, Expression | None]:
    """Split a join predicate into (left key, right key, residual predicate)."""
    if predicate is None:
        return None, None, None
    residual: list[Expression] = []
    left_key: Expression | None = None
    right_key: Expression | None = None
    for conjunct in conjuncts(predicate):
        if left_key is None:
            pair = is_equi_join_predicate(conjunct, left_bindings, right_bindings)
            if pair is not None:
                left_key, right_key = pair
                continue
        residual.append(conjunct)
    return left_key, right_key, conjunction(residual)
