"""Rule-based logical rewrites.

The optimizer applies a small set of classical, always-beneficial rewrites
before any cost-based decision (§4):

* **selection pushdown** — predicates are split into conjuncts and pushed
  below joins and unnests towards the scans that bind their fields; conjuncts
  spanning both join sides are merged into the join predicate,
* **selection merging** — adjacent selections collapse into one conjunction,
* **projection pushdown** — the set of field paths each scan / unnest must
  materialize is computed from every expression in the plan, so plug-ins
  generate code that extracts only what the query needs (§5.2).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.algebra import (
    Join,
    LogicalPlan,
    Nest,
    Reduce,
    Scan,
    Select,
    Unnest,
)
from repro.core.expressions import Expression, conjunction, conjuncts
from repro.plugins.base import FieldPath


# ---------------------------------------------------------------------------
# Selection pushdown
# ---------------------------------------------------------------------------


def pushdown_selections(plan: LogicalPlan) -> LogicalPlan:
    """Push selection predicates as close to the scans as possible."""
    plan = _rewrite_children(plan)
    if isinstance(plan, Select):
        return _push_select(plan)
    return plan


def _rewrite_children(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Select):
        return Select(plan.predicate, pushdown_selections(plan.child))
    if isinstance(plan, Join):
        return Join(
            plan.predicate,
            pushdown_selections(plan.left),
            pushdown_selections(plan.right),
            plan.outer,
        )
    if isinstance(plan, Unnest):
        return Unnest(
            plan.binding,
            plan.path,
            plan.var,
            pushdown_selections(plan.child),
            plan.predicate,
            plan.outer,
        )
    if isinstance(plan, Reduce):
        return Reduce(plan.monoid, plan.columns, pushdown_selections(plan.child), plan.predicate)
    if isinstance(plan, Nest):
        return Nest(plan.columns, plan.group_by, pushdown_selections(plan.child), plan.predicate)
    return plan


def _push_select(select: Select) -> LogicalPlan:
    child = select.child
    predicates = conjuncts(select.predicate)

    if isinstance(child, Select):
        merged = conjunction(predicates + conjuncts(child.predicate))
        assert merged is not None
        return _push_select(Select(merged, child.child))

    if isinstance(child, Join) and not child.outer:
        left_bindings = child.left.bindings()
        right_bindings = child.right.bindings()
        to_left: list[Expression] = []
        to_right: list[Expression] = []
        to_join: list[Expression] = []
        for predicate in predicates:
            refs = predicate.bindings()
            if refs and refs <= left_bindings:
                to_left.append(predicate)
            elif refs and refs <= right_bindings:
                to_right.append(predicate)
            else:
                to_join.append(predicate)
        left = child.left
        right = child.right
        if to_left:
            left = pushdown_selections(Select(conjunction(to_left), left))
        if to_right:
            right = pushdown_selections(Select(conjunction(to_right), right))
        join_predicate = conjunction(
            conjuncts(child.predicate) + to_join if child.predicate is not None else to_join
        )
        return Join(join_predicate, left, right, child.outer)

    if isinstance(child, Unnest) and not child.outer:
        below: list[Expression] = []
        above: list[Expression] = []
        for predicate in predicates:
            if child.var in predicate.bindings():
                above.append(predicate)
            else:
                below.append(predicate)
        new_child: LogicalPlan = child.child
        if below:
            new_child = pushdown_selections(Select(conjunction(below), new_child))
        unnest_predicate = conjunction(
            ([child.predicate] if child.predicate is not None else []) + above
        )
        return Unnest(
            child.binding, child.path, child.var, new_child, unnest_predicate, child.outer
        )

    return Select(select.predicate, child)


# ---------------------------------------------------------------------------
# Projection pushdown (required field paths per binding)
# ---------------------------------------------------------------------------


def required_paths(plan: LogicalPlan) -> dict[str, set[FieldPath]]:
    """Compute, for every binding, the set of field paths the plan reads.

    Unnest collection paths are *not* attributed to the source binding's scan
    buffers (the plug-in navigates to them directly); the returned mapping is
    used to populate :class:`~repro.core.physical.PhysScan.paths` and
    :class:`~repro.core.physical.PhysUnnest.element_paths`.
    """
    required: dict[str, set[FieldPath]] = defaultdict(set)

    def add_expression(expression: Expression | None) -> None:
        if expression is None:
            return
        for binding, path in expression.referenced_fields():
            required[binding].add(tuple(path))

    for node in plan.walk():
        if isinstance(node, Select):
            add_expression(node.predicate)
        elif isinstance(node, Join):
            add_expression(node.predicate)
        elif isinstance(node, Unnest):
            add_expression(node.predicate)
        elif isinstance(node, Reduce):
            add_expression(node.predicate)
            for column in node.columns:
                add_expression(column.expression)
        elif isinstance(node, Nest):
            add_expression(node.predicate)
            for column in node.columns:
                add_expression(column.expression)
            for expression in node.group_by:
                add_expression(expression)
    return dict(required)


def strip_collection_prefix(
    paths: set[FieldPath], collection_path: FieldPath
) -> set[FieldPath]:
    """Remove a leading collection path from nested references (helper used
    when unnest references appear as ``parent.collection.field``)."""
    stripped: set[FieldPath] = set()
    prefix = tuple(collection_path)
    for path in paths:
        if path[: len(prefix)] == prefix:
            stripped.add(tuple(path[len(prefix):]))
        else:
            stripped.add(tuple(path))
    return stripped
