"""Static plan analysis: prepare-time type/nullability inference and
tier-capability verdicts.

The package has three layers (see :mod:`repro.core.analysis.model`):

* :func:`analyze_schema` — type & schema inference over a physical plan,
  raising :class:`repro.errors.AnalysisError` with ``TYP0xx`` diagnostic
  codes at ``prepare()`` time,
* :func:`tier_verdicts` / :data:`OPERATOR_CAPABILITIES` — the declarative
  tier-capability table predicting which execution tier serves a plan, with
  ``TIER0xx`` decline codes,
* :class:`NullabilityHints` — statically proven non-nullable columns and
  aggregate arguments, consumed by the vectorized tier and the sort kernels
  to skip missing-mask construction.
"""

from repro.core.analysis.capabilities import (
    OPERATOR_CAPABILITIES,
    plan_verdict,
    tier_verdicts,
)
from repro.core.analysis.model import (
    CASCADE_TIERS,
    ColumnInfo,
    EMPTY_HINTS,
    NullabilityHints,
    PlanAnalysis,
    SchemaAnalysis,
    TIER_DISABLED,
    TIER_EXPRESSION,
    TIER_GROUP_COLUMN,
    TIER_OUTER_JOIN,
    TIER_OUTER_UNNEST_PREDICATE,
    TIER_PLAN_SHAPE,
    TIER_RUNTIME_DEMOTION,
    TIER_SCAN_NOT_SPLITTABLE,
    TIER_SINGLE_MORSEL,
    TIER_CODEGEN,
    TIER_PARALLEL,
    TIER_VECTORIZED,
    TIER_VOLCANO,
    TierVerdict,
    TYP_BAD_AGGREGATE,
    TYP_BAD_ARITHMETIC,
    TYP_INCOMPARABLE,
    TYP_NOT_A_COLLECTION,
    TYP_UNKNOWN_FIELD,
)
from repro.core.analysis.typecheck import analyze_schema

__all__ = [
    "OPERATOR_CAPABILITIES",
    "plan_verdict",
    "tier_verdicts",
    "CASCADE_TIERS",
    "ColumnInfo",
    "EMPTY_HINTS",
    "NullabilityHints",
    "PlanAnalysis",
    "SchemaAnalysis",
    "TierVerdict",
    "TIER_DISABLED",
    "TIER_EXPRESSION",
    "TIER_GROUP_COLUMN",
    "TIER_OUTER_JOIN",
    "TIER_OUTER_UNNEST_PREDICATE",
    "TIER_PLAN_SHAPE",
    "TIER_RUNTIME_DEMOTION",
    "TIER_SCAN_NOT_SPLITTABLE",
    "TIER_SINGLE_MORSEL",
    "TIER_CODEGEN",
    "TIER_PARALLEL",
    "TIER_VECTORIZED",
    "TIER_VOLCANO",
    "TYP_BAD_AGGREGATE",
    "TYP_BAD_ARITHMETIC",
    "TYP_INCOMPARABLE",
    "TYP_NOT_A_COLLECTION",
    "TYP_UNKNOWN_FIELD",
    "analyze_schema",
]
