"""Prepare-time type and nullability inference over physical plans.

The walker propagates dtype + nullability from the catalog schemas through
scan -> select -> join -> unnest -> aggregate -> sort, validating every
field path and operator along the way.  Structural problems raise
:class:`repro.errors.AnalysisError` with a stable diagnostic code
(``TYP001`` ...) naming the offending field and dataset — at ``prepare()``
time, instead of a raw ``KeyError``/``TypeError`` deep inside whichever
execution tier happened to serve the query.

Nullability rules (the load-bearing half — they gate the executors'
missing-mask fast paths, so they must be sound, not merely plausible):

* a scan field is non-nullable only when collected statistics *prove* it
  (``analyze()`` observed zero missing values) — declared schemas are never
  verified against the file, so ``Field.nullable=False`` alone is not
  proof; unnest-element fields and fields of an *outer* unnest variable are
  always treated as nullable (absent collections emit a ``None`` element);
* ``/`` and ``%`` results are always nullable: a zero divisor yields
  NaN — the engine's missing encoding — regardless of operand nullability;
* ``min``/``max``/``avg`` over a global reduction are nullable (the input
  may filter down to zero rows); per group they inherit the argument's
  nullability (every group has at least one row);
* ``count``/``sum``/``and``/``or`` are never missing (their monoid zeros
  are concrete values);
* anything involving an unbound query parameter is conservatively nullable
  with unknown dtype.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import types as t
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    IfThenElse,
    Literal,
    PARAMS_BINDING,
    Parameter,
    RecordConstruct,
    UnaryOp,
    iter_aggregates,
    to_string,
)
from repro.core.physical import (
    PhysNest,
    PhysReduce,
    PhysScan,
    PhysUnnest,
    PhysicalPlan,
    expressions_of,
    unwrap_sort,
)
from repro.errors import AnalysisError
from repro.storage.catalog import Catalog

from repro.core.analysis.model import (
    ColumnInfo,
    NullabilityHints,
    SchemaAnalysis,
    TYP_BAD_AGGREGATE,
    TYP_BAD_ARITHMETIC,
    TYP_INCOMPARABLE,
    TYP_NOT_A_COLLECTION,
    TYP_UNKNOWN_FIELD,
)

_ORDERING_OPS = ("<", "<=", ">", ">=")
_COMPARISON_OPS = ("=", "!=") + _ORDERING_OPS
_LOGICAL_OPS = ("and", "or")


@dataclass(frozen=True)
class _BindingInfo:
    """What the analyzer knows about one plan binding."""

    #: Dataset the binding (transitively) scans — named in diagnostics.
    dataset: str
    #: Record view of the binding's fields.
    record: t.RecordType
    #: Element type when the binding is an unnest variable over a collection
    #: of primitives (the record view wraps it as a synthetic ``value``
    #: field; an empty field path denotes the element itself).
    element: t.DataType | None
    #: True for outer-unnest variables: every field may be missing because
    #: an absent collection emits one ``None`` element.
    forced_nullable: bool
    #: Top-level fields proven free of missing values by collected
    #: statistics (empty when the dataset was never analyzed, and always
    #: empty for unnest variables — element data is never profiled).
    proven_non_null: frozenset[str] = frozenset()


@dataclass(frozen=True)
class _Inferred:
    """Inferred shape of one expression: dtype (``None`` while a query
    parameter leaves it unknown) and whether the value may be missing."""

    dtype: t.DataType | None
    nullable: bool


_UNKNOWN = _Inferred(None, True)


def binding_scope(plan: PhysicalPlan, catalog: Catalog) -> dict[str, _BindingInfo]:
    """Resolve every scan/unnest binding of the plan to its record type.

    ``walk()`` is post-order, so a parent binding is always resolved before
    the unnest variables that descend from it.
    """
    scope: dict[str, _BindingInfo] = {}
    for node in plan.walk():
        if isinstance(node, PhysScan):
            dataset = catalog.get(node.dataset)
            statistics = dataset.statistics
            proven = frozenset(
                field.name
                for field in dataset.schema.fields
                if statistics is not None
                and statistics.proven_non_null(field.name)
            )
            scope[node.binding] = _BindingInfo(
                dataset=node.dataset,
                record=dataset.schema,
                element=None,
                forced_nullable=False,
                proven_non_null=proven,
            )
        elif isinstance(node, PhysUnnest):
            parent = scope.get(node.binding)
            if parent is None:
                raise AnalysisError(
                    TYP_UNKNOWN_FIELD,
                    f"unnest references unknown binding {node.binding!r}",
                    field=".".join(node.path),
                )
            collection, _ = _resolve_field(parent, node.binding, node.path)
            if not isinstance(collection, t.CollectionType):
                raise AnalysisError(
                    TYP_NOT_A_COLLECTION,
                    f"field {'.'.join(node.path)!r} of dataset "
                    f"{parent.dataset!r} is {collection.name}, not a nested "
                    f"collection; it cannot be unnested",
                    dataset=parent.dataset,
                    field=".".join(node.path),
                )
            element = collection.element
            nullable = node.outer or parent.forced_nullable
            if isinstance(element, t.RecordType):
                scope[node.var] = _BindingInfo(
                    parent.dataset, element, None, nullable
                )
            else:
                scope[node.var] = _BindingInfo(
                    parent.dataset,
                    t.RecordType([t.Field("value", element)]),
                    element,
                    nullable,
                )
    return scope


def _resolve_field(
    info: _BindingInfo, binding: str, path: tuple[str, ...]
) -> tuple[t.DataType, bool]:
    """Resolve a field path against a binding; returns (dtype, nullable)."""
    if not path:
        if info.element is not None:
            # A primitive collection element: the data inside the array was
            # never profiled, so it may always be missing.
            return info.element, True
        return info.record, info.forced_nullable
    current: t.DataType = info.record
    for depth, step in enumerate(path):
        if not isinstance(current, t.RecordType):
            prefix = ".".join(path[:depth])
            raise AnalysisError(
                TYP_UNKNOWN_FIELD,
                f"cannot descend into {current.name} field {prefix!r} of "
                f"dataset {info.dataset!r} via {step!r} "
                f"(reference {binding}.{'.'.join(path)})",
                dataset=info.dataset,
                field=".".join(path),
            )
        if not current.has_field(step):
            raise AnalysisError(
                TYP_UNKNOWN_FIELD,
                f"dataset {info.dataset!r} has no field "
                f"{'.'.join(path)!r} (reference {binding}.{'.'.join(path)}; "
                f"available at {step!r}: {current.field_names()})",
                dataset=info.dataset,
                field=".".join(path),
            )
        resolved = current.field(step)
        current = resolved.dtype
    # Nullability is data-proven, never declaration-trusted: plugins do not
    # verify declared schemas against the file, so only a zero null count
    # observed by ``analyze()`` (top-level fields only) makes a field
    # non-nullable here.
    nullable = (
        info.forced_nullable
        or len(path) != 1
        or path[0] not in info.proven_non_null
    )
    return current, nullable


class _TypeChecker:
    """Recursive inference over one expression tree."""

    def __init__(self, scope: dict[str, _BindingInfo], grouped: bool):
        self.scope = scope
        #: Inside a Nest head every group has at least one input row, which
        #: tightens the nullability of min/max/avg.
        self.grouped = grouped

    def infer(self, expression: Expression) -> _Inferred:
        if isinstance(expression, Literal):
            return _Inferred(expression.dtype, t.is_missing(expression.value))
        if isinstance(expression, Parameter):
            return _UNKNOWN
        if isinstance(expression, FieldRef):
            return self._infer_field(expression)
        if isinstance(expression, BinaryOp):
            return self._infer_binary(expression)
        if isinstance(expression, UnaryOp):
            return self._infer_unary(expression)
        if isinstance(expression, IfThenElse):
            return self._infer_conditional(expression)
        if isinstance(expression, AggregateCall):
            return self._infer_aggregate(expression)
        if isinstance(expression, RecordConstruct):
            fields = [
                t.Field(name, self.infer(expr).dtype or t.STRING)
                for name, expr in expression.fields
            ]
            return _Inferred(t.RecordType(fields), False)
        return _UNKNOWN

    def _infer_field(self, expression: FieldRef) -> _Inferred:
        if expression.binding == PARAMS_BINDING:
            return _UNKNOWN
        info = self.scope.get(expression.binding)
        if info is None:
            raise AnalysisError(
                TYP_UNKNOWN_FIELD,
                f"reference {to_string(expression)} names unknown binding "
                f"{expression.binding!r}",
                field=".".join(expression.path),
            )
        dtype, nullable = _resolve_field(info, expression.binding, expression.path)
        return _Inferred(dtype, nullable)

    def _infer_binary(self, expression: BinaryOp) -> _Inferred:
        left = self.infer(expression.left)
        right = self.infer(expression.right)
        op = expression.op
        if op in _LOGICAL_OPS:
            return _Inferred(t.BOOL, left.nullable or right.nullable)
        if op in _COMPARISON_OPS:
            self._check_comparison(expression, left, right)
            # Predicate contexts treat a missing operand as "does not
            # qualify", but as an *output value* the tiers disagree on
            # whether the cell is False or missing — stay conservative.
            return _Inferred(t.BOOL, left.nullable or right.nullable)
        # Arithmetic.
        for side in (left, right):
            if side.dtype is not None and not _numeric_like(side.dtype):
                raise AnalysisError(
                    TYP_BAD_ARITHMETIC,
                    f"arithmetic {op!r} requires numeric operands, got "
                    f"{_render_type(left)} and {_render_type(right)} in "
                    f"{to_string(expression)}",
                )
        if op in ("/", "%"):
            # A zero divisor yields NaN — the engine's missing encoding —
            # so division results are always treated as nullable.
            dtype = t.FLOAT if op == "/" else _arithmetic_type(left, right)
            return _Inferred(dtype, True)
        return _Inferred(
            _arithmetic_type(left, right), left.nullable or right.nullable
        )

    def _check_comparison(
        self, expression: BinaryOp, left: _Inferred, right: _Inferred
    ) -> None:
        for side in (left, right):
            if side.dtype is not None and not side.dtype.is_primitive():
                raise AnalysisError(
                    TYP_INCOMPARABLE,
                    f"cannot compare {side.dtype.name} values in "
                    f"{to_string(expression)}",
                )
        if expression.op not in _ORDERING_OPS:
            return  # equality over mismatched primitives is simply false
        if left.dtype is None or right.dtype is None:
            return
        if _order_class(left.dtype) != _order_class(right.dtype):
            raise AnalysisError(
                TYP_INCOMPARABLE,
                f"cannot order {left.dtype.name} against {right.dtype.name} "
                f"in {to_string(expression)}",
            )

    def _infer_unary(self, expression: UnaryOp) -> _Inferred:
        operand = self.infer(expression.operand)
        if expression.op == "not":
            return _Inferred(t.BOOL, operand.nullable)
        if operand.dtype is not None and not _numeric_like(operand.dtype):
            raise AnalysisError(
                TYP_BAD_ARITHMETIC,
                f"negation requires a numeric operand, got "
                f"{operand.dtype.name} in {to_string(expression)}",
            )
        return _Inferred(operand.dtype, operand.nullable)

    def _infer_conditional(self, expression: IfThenElse) -> _Inferred:
        self.infer(expression.condition)
        then = self.infer(expression.then)
        otherwise = self.infer(expression.otherwise)
        if then.dtype is None or otherwise.dtype is None:
            dtype = None
        else:
            dtype = t.merge_types(then.dtype, otherwise.dtype)
        return _Inferred(dtype, then.nullable or otherwise.nullable)

    def _infer_aggregate(self, expression: AggregateCall) -> _Inferred:
        if expression.func == "count":
            if expression.argument is not None:
                self.infer(expression.argument)
            return _Inferred(t.INT, False)
        assert expression.argument is not None
        argument = self.infer(expression.argument)
        if expression.func in ("sum", "avg"):
            if argument.dtype is not None and not _numeric_like(argument.dtype):
                raise AnalysisError(
                    TYP_BAD_AGGREGATE,
                    f"aggregate {expression.func}() requires a numeric "
                    f"argument, got {argument.dtype.name} in "
                    f"{to_string(expression)}",
                )
        elif argument.dtype is not None and not argument.dtype.is_primitive():
            raise AnalysisError(
                TYP_BAD_AGGREGATE,
                f"aggregate {expression.func}() requires a primitive "
                f"argument, got {argument.dtype.name} in "
                f"{to_string(expression)}",
            )
        if expression.func == "sum":
            dtype = t.FLOAT if argument.dtype is t.FLOAT else (
                t.INT if argument.dtype is not None else None
            )
            return _Inferred(dtype, False)
        if expression.func == "avg":
            # A global reduction may aggregate zero rows (avg -> NaN); per
            # group there is at least one row, so a non-null argument keeps
            # the average non-null.
            return _Inferred(
                t.FLOAT, argument.nullable if self.grouped else True
            )
        if expression.func in ("and", "or"):
            return _Inferred(t.BOOL, False)
        # min / max
        return _Inferred(
            argument.dtype, argument.nullable if self.grouped else True
        )


def _numeric_like(dtype: t.DataType) -> bool:
    """Arithmetic-compatible: numeric types plus bool (Python bools add as
    0/1 in every execution tier)."""
    return dtype.is_numeric() or dtype is t.BOOL


def _order_class(dtype: t.DataType) -> str:
    return "str" if dtype is t.STRING else "num"


def _arithmetic_type(left: _Inferred, right: _Inferred) -> t.DataType | None:
    if left.dtype is None or right.dtype is None:
        return None
    if t.FLOAT in (left.dtype, right.dtype):
        return t.FLOAT
    return t.INT


def _render_type(inferred: _Inferred) -> str:
    return inferred.dtype.name if inferred.dtype is not None else "unknown"


def analyze_schema(plan: PhysicalPlan, catalog: Catalog) -> SchemaAnalysis:
    """Type-check a physical plan and infer its output schema.

    Validates every expression of every operator (raising
    :class:`AnalysisError` on the first structural problem) and returns the
    inferred output columns plus the nullability hints the executors'
    fast paths consume.
    """
    scope = binding_scope(plan, catalog)
    for node in plan.walk():
        checker = _TypeChecker(scope, grouped=isinstance(node, PhysNest))
        for expression in expressions_of(node):
            checker.infer(expression)

    root = unwrap_sort(plan)
    if not isinstance(root, (PhysReduce, PhysNest)):
        return SchemaAnalysis(columns=(), hints=NullabilityHints())

    checker = _TypeChecker(scope, grouped=isinstance(root, PhysNest))
    columns: list[ColumnInfo] = []
    non_null_aggregates: set[tuple] = set()
    for column in root.columns:
        inferred = checker.infer(column.expression)
        columns.append(ColumnInfo(column.name, inferred.dtype, inferred.nullable))
        for aggregate in iter_aggregates(column.expression):
            if aggregate.argument is None:
                # Bare count(*) reads no values; there is no mask to skip.
                continue
            if not checker.infer(aggregate.argument).nullable:
                non_null_aggregates.add(aggregate.fingerprint())
    hints = NullabilityHints(
        non_null_columns=frozenset(
            info.name for info in columns if not info.nullable
        ),
        non_null_aggregate_args=frozenset(non_null_aggregates),
    )
    return SchemaAnalysis(columns=tuple(columns), hints=hints)
