"""Declarative tier-capability table and verdict computation.

One table — :data:`OPERATOR_CAPABILITIES` — declares, per execution tier and
per physical operator class, whether the tier covers the operator and under
which conditions it declines.  :func:`tier_verdicts` folds the table, the
root-shape rules, the expression-support rules and the engine configuration
into one :class:`TierVerdict` per tier in cascade order; the first serving
verdict is the tier the engine's cascade will select.

The decline reasons deliberately reuse the executors' own wording (the
strings ``CodegenError`` / ``VectorizationError`` carried before this module
existed), so ``explain()`` output stays familiar; each now also carries a
machine-readable ``TIER0xx`` code.

``tools/tier_lint.py`` enforces the other direction of the contract: every
``Phys*`` operator class must either be handled by an executor module or have
an explicit entry here — a new operator cannot silently fall through a tier.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.codegen.expr_gen import supported_by_codegen
from repro.core.expressions import contains_aggregate, to_string
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysSort,
    PhysUnnest,
    PhysicalPlan,
    expressions_of,
    unwrap_sort,
)
from repro.errors import VectorizationError

from repro.core.analysis.model import (
    CASCADE_TIERS,
    TIER_CODEGEN,
    TIER_DISABLED,
    TIER_EXPRESSION,
    TIER_GROUP_COLUMN,
    TIER_OUTER_JOIN,
    TIER_OUTER_UNNEST_PREDICATE,
    TIER_PARALLEL,
    TIER_PLAN_SHAPE,
    TIER_SCAN_NOT_SPLITTABLE,
    TIER_SINGLE_MORSEL,
    TIER_VECTORIZED,
    TIER_VOLCANO,
    TierVerdict,
)

#: A verdict fragment: ``None`` when the operator is covered, otherwise
#: ``(diagnostic code, human-readable reason)``.
Decline = tuple[str, str] | None

#: A per-operator condition: receives the node and the set of bindings that
#: are backed by a scan (as opposed to introduced by an unnest).
Check = Callable[[PhysicalPlan, frozenset[str]], Decline]


def _scan_bindings(plan: PhysicalPlan) -> frozenset[str]:
    return frozenset(
        node.binding for node in plan.walk() if isinstance(node, PhysScan)
    )


# -- per-operator conditions --------------------------------------------------


def _codegen_unnest(node: PhysicalPlan, scans: frozenset[str]) -> Decline:
    assert isinstance(node, PhysUnnest)
    if node.outer:
        return (
            TIER_PLAN_SHAPE,
            "outer unnest is served by the batch-native unnest of the "
            "vectorized tiers",
        )
    if node.binding not in scans:
        # A nested-in-nested unnest: the parent binding is itself an unnest
        # variable, so the generator has no OID buffer to drive the plug-in's
        # offset-vector API.  The batch tiers serve it through the
        # column-backed path.
        return (
            TIER_PLAN_SHAPE,
            f"no OID buffer for binding {node.binding!r}; the vectorized "
            "tiers flatten the materialized collection column",
        )
    return None


def _batch_unnest(node: PhysicalPlan, scans: frozenset[str]) -> Decline:
    assert isinstance(node, PhysUnnest)
    if node.outer and node.predicate is not None:
        return (
            TIER_OUTER_UNNEST_PREDICATE,
            "outer unnest with an element predicate is served by the "
            "Volcano interpreter",
        )
    return None


def _no_outer_join(node: PhysicalPlan, scans: frozenset[str]) -> Decline:
    assert isinstance(node, (PhysHashJoin, PhysNestedLoopJoin))
    if node.outer:
        return (TIER_OUTER_JOIN, "outer join is served by the Volcano interpreter")
    return None


def _nest_columns_decline(node: PhysNest, volcano_wording: bool) -> Decline:
    """A ``GROUP BY`` output column must be a group key or contain an
    aggregate; anything else only the Volcano interpreter serves."""
    group_key_fingerprints = {
        expression.fingerprint() for expression in node.group_by
    }
    for column in node.columns:
        if column.expression.fingerprint() in group_key_fingerprints:
            continue
        if not contains_aggregate(column.expression):
            suffix = "; served by the Volcano interpreter" if volcano_wording else ""
            return (
                TIER_GROUP_COLUMN,
                f"group-by output column {column.name!r} is neither a group "
                f"key nor an aggregate{suffix}",
            )
    return None


def _codegen_nest(node: PhysicalPlan, scans: frozenset[str]) -> Decline:
    assert isinstance(node, PhysNest)
    return _nest_columns_decline(node, volcano_wording=False)


def _batch_nest(node: PhysicalPlan, scans: frozenset[str]) -> Decline:
    assert isinstance(node, PhysNest)
    return _nest_columns_decline(node, volcano_wording=True)


#: The capability table: tier -> operator class -> coverage condition.
#:
#: ``None`` means unconditionally covered.  Every ``Phys*`` class must appear
#: in every tier's row — ``tools/tier_lint.py`` fails the build otherwise.
#: ``PhysSort`` is covered everywhere because a root ``ORDER BY`` / ``LIMIT``
#: runs in the engine's columnar sort epilogue (or the tier's own top-K /
#: merge path), never inside the tier's operator interpreter; ``PhysReduce``
#: and ``PhysNest`` conditions apply at the plan root — the planner never
#: nests them deeper.
OPERATOR_CAPABILITIES: dict[str, dict[type, Check | None]] = {
    TIER_CODEGEN: {
        PhysScan: None,
        PhysSelect: None,
        PhysUnnest: _codegen_unnest,
        PhysHashJoin: _no_outer_join,
        PhysNestedLoopJoin: _no_outer_join,
        PhysReduce: None,
        PhysNest: _codegen_nest,
        PhysSort: None,
    },
    TIER_PARALLEL: {
        PhysScan: None,
        PhysSelect: None,
        PhysUnnest: _batch_unnest,
        PhysHashJoin: _no_outer_join,
        PhysNestedLoopJoin: _no_outer_join,
        PhysReduce: None,
        PhysNest: _batch_nest,
        PhysSort: None,
    },
    TIER_VECTORIZED: {
        PhysScan: None,
        PhysSelect: None,
        PhysUnnest: _batch_unnest,
        PhysHashJoin: _no_outer_join,
        PhysNestedLoopJoin: _no_outer_join,
        PhysReduce: None,
        PhysNest: _batch_nest,
        PhysSort: None,
    },
    # The Volcano interpreter is the total fallback: it covers every operator
    # unconditionally (PhysSort through the engine's sort epilogue).
    TIER_VOLCANO: {
        PhysScan: None,
        PhysSelect: None,
        PhysUnnest: None,
        PhysHashJoin: None,
        PhysNestedLoopJoin: None,
        PhysReduce: None,
        PhysNest: None,
        PhysSort: None,
    },
}

#: Tiers whose operator interpreters only accept Reduce / Nest plan roots.
_ROOTED_TIERS = frozenset({TIER_CODEGEN, TIER_PARALLEL, TIER_VECTORIZED})


def plan_verdict(tier: str, plan: PhysicalPlan) -> Decline:
    """The capability table's verdict for one tier over one plan.

    Configuration-independent: only the plan shape and its expressions are
    consulted.  Returns ``None`` when the tier covers the plan, otherwise
    ``(code, reason)`` for the first declining condition in plan order.
    """
    table = OPERATOR_CAPABILITIES[tier]
    root = unwrap_sort(plan)
    if tier in _ROOTED_TIERS and not isinstance(root, (PhysReduce, PhysNest)):
        if tier == TIER_CODEGEN:
            reason = f"plan root must be Reduce or Nest, got {root.describe()}"
        else:
            reason = (
                f"plan root {root.describe()} is served by the Volcano "
                "interpreter"
            )
        return (TIER_PLAN_SHAPE, reason)
    scans = _scan_bindings(plan)
    for node in plan.walk():
        check = table.get(type(node))
        if check is not None:
            decline = check(node, scans)
            if decline is not None:
                return decline
    if tier == TIER_VOLCANO:
        return None
    # The generated operators and the batch evaluator cover the same scalar
    # expression shapes (record construction is the Volcano-only outlier).
    for node in plan.walk():
        for expression in expressions_of(node):
            if not supported_by_codegen(expression):
                return (
                    TIER_EXPRESSION,
                    f"expression {to_string(expression)} is served by the "
                    "Volcano interpreter",
                )
    return None


def tier_verdicts(
    physical: PhysicalPlan,
    *,
    enable_codegen: bool,
    enable_vectorized: bool,
    enable_parallel: bool,
    parallel_workers: int,
    catalog: Any = None,
    plugins: Mapping[str, object] | None = None,
    cache_manager: Any = None,
    batch_size: int = 4096,
) -> tuple[TierVerdict, ...]:
    """One :class:`TierVerdict` per tier, in cascade order.

    Folds the engine configuration (ablation flags, worker count) over the
    capability table; with a catalog and plug-ins the parallel tier's verdict
    additionally runs the driving-scan precheck (splittability and morsel
    count — the only input-data-dependent condition).
    """
    verdicts: list[TierVerdict] = []
    for tier in CASCADE_TIERS:
        decline = _config_decline(
            tier,
            enable_codegen=enable_codegen,
            enable_vectorized=enable_vectorized,
            enable_parallel=enable_parallel,
            parallel_workers=parallel_workers,
        )
        if decline is None:
            decline = plan_verdict(tier, physical)
        if decline is None and tier == TIER_PARALLEL and catalog is not None:
            decline = _parallel_scan_decline(
                physical, catalog, plugins or {}, cache_manager,
                batch_size, parallel_workers,
            )
        if decline is None:
            verdicts.append(TierVerdict(tier, serves=True))
        else:
            code, reason = decline
            verdicts.append(TierVerdict(tier, serves=False, code=code, reason=reason))
    return tuple(verdicts)


def _config_decline(
    tier: str,
    *,
    enable_codegen: bool,
    enable_vectorized: bool,
    enable_parallel: bool,
    parallel_workers: int,
) -> Decline:
    if tier == TIER_CODEGEN and not enable_codegen:
        return (TIER_DISABLED, "disabled (enable_codegen=False)")
    if tier in (TIER_PARALLEL, TIER_VECTORIZED) and not enable_vectorized:
        return (TIER_DISABLED, "disabled (enable_vectorized=False)")
    if tier == TIER_PARALLEL:
        if not enable_parallel:
            return (TIER_DISABLED, "disabled (enable_parallel=False)")
        if parallel_workers <= 1:
            return (TIER_DISABLED, "parallel_workers=1 (engine configured serial)")
    return None


def _parallel_scan_decline(
    physical: PhysicalPlan,
    catalog: Any,
    plugins: Mapping[str, object],
    cache_manager: Any,
    batch_size: int,
    parallel_workers: int,
) -> Decline:
    """Run the parallel tier's driving-scan precheck, mapping its
    :class:`VectorizationError` onto a verdict code."""
    from repro.core.parallel import precheck_driving_scan

    root = unwrap_sort(physical)
    child = root.children()[0] if root.children() else root
    try:
        precheck_driving_scan(
            child, catalog, plugins, cache_manager, batch_size, parallel_workers
        )
    except VectorizationError as exc:
        reason = str(exc)
        code = (
            TIER_SINGLE_MORSEL
            if "single morsel" in reason
            else TIER_SCAN_NOT_SPLITTABLE
        )
        return (code, reason)
    return None
