"""Data model of the static plan analyzer.

The analyzer runs once per plan at ``prepare()`` time and produces a
:class:`PlanAnalysis` artifact with three layers:

* inferred output schema — dtype + nullability per output column
  (:class:`ColumnInfo`),
* tier-capability verdicts — one :class:`TierVerdict` per execution tier in
  cascade order, each carrying a machine-readable decline code,
* nullability hints (:class:`NullabilityHints`) — columns and aggregate
  arguments proven statically non-nullable, which let the vectorized tier
  and the sort kernels skip missing-mask construction.

Diagnostic codes are stable identifiers: ``TYP0xx`` for prepare-time type /
schema errors (raised as :class:`repro.errors.AnalysisError`), ``TIER0xx``
for capability verdicts (surfaced in ``explain()`` and
``profile.tier_decline_reasons``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import types as t

# -- diagnostic codes: prepare-time type & schema errors ----------------------

#: A field reference names a field the dataset schema does not have, or
#: descends through a non-record step.
TYP_UNKNOWN_FIELD = "TYP001"
#: An ordering comparison over incomparable operand types.
TYP_INCOMPARABLE = "TYP002"
#: An aggregate over an argument type the aggregate cannot consume.
TYP_BAD_AGGREGATE = "TYP003"
#: Arithmetic over a non-numeric operand.
TYP_BAD_ARITHMETIC = "TYP004"
#: An unnest over a path that does not denote a nested collection.
TYP_NOT_A_COLLECTION = "TYP005"

# -- diagnostic codes: tier-capability verdicts -------------------------------

#: The tier is switched off by engine configuration (ablation flags, serial
#: worker count).
TIER_DISABLED = "TIER001"
#: The plan shape (root or an operator) is not covered by the tier.
TIER_PLAN_SHAPE = "TIER002"
#: An expression shape the tier cannot evaluate (e.g. record construction).
TIER_EXPRESSION = "TIER003"
#: A group-by output column that is neither a group key nor an aggregate.
TIER_GROUP_COLUMN = "TIER004"
#: Outer joins are served by the Volcano interpreter only.
TIER_OUTER_JOIN = "TIER005"
#: The driving scan cannot be range-partitioned into morsels.
TIER_SCAN_NOT_SPLITTABLE = "TIER006"
#: The input fits a single morsel; parallelism would not pay off.
TIER_SINGLE_MORSEL = "TIER007"
#: An outer unnest with an element predicate (Volcano-only shape).
TIER_OUTER_UNNEST_PREDICATE = "TIER008"
#: The tier declined at run time (data-dependent demotion the static
#: analysis cannot rule out, e.g. missing group keys).
TIER_RUNTIME_DEMOTION = "TIER009"

# -- execution tiers, in cascade order ---------------------------------------

TIER_CODEGEN = "codegen"
TIER_PARALLEL = "vectorized-parallel"
TIER_VECTORIZED = "vectorized"
TIER_VOLCANO = "volcano"

#: The engine's four-tier cascade, most- to least-specialized.
CASCADE_TIERS = (TIER_CODEGEN, TIER_PARALLEL, TIER_VECTORIZED, TIER_VOLCANO)


@dataclass(frozen=True)
class ColumnInfo:
    """Statically inferred shape of one output column.

    ``dtype`` is ``None`` when the type depends on an unbound query
    parameter; such columns are conservatively nullable.
    """

    name: str
    dtype: t.DataType | None
    nullable: bool

    def render(self) -> str:
        dtype = self.dtype.name if self.dtype is not None else "unknown"
        return f"{self.name}: {dtype}{' (nullable)' if self.nullable else ''}"


@dataclass(frozen=True)
class TierVerdict:
    """Whether one execution tier can serve the plan, and if not, why.

    ``code``/``reason`` are ``None`` exactly when ``serves`` is true.
    """

    tier: str
    serves: bool
    code: str | None = None
    reason: str | None = None

    def render(self) -> str:
        if self.serves:
            return f"{self.tier}: serves"
        return f"{self.tier}: declines -- {self.reason} [{self.code}]"


@dataclass(frozen=True)
class NullabilityHints:
    """Statically proven non-nullable spots the executors may specialize on.

    ``non_null_columns`` — output column names whose values can never be
    missing; the sort kernels skip NaN / ``None`` scans for them.
    ``non_null_aggregate_args`` — fingerprints of aggregate calls whose
    argument can never be missing; the batch aggregators skip the per-batch
    valid-mask pass for them.

    Soundness: catalog schemas are authoritative.  CSV schemas are inferred
    without nullability and explicit ``make_schema`` schemas default to
    non-nullable, so a dataset whose raw data contains missing values under a
    non-nullable declared schema is outside the model (standard database
    practice: the declared schema is a contract).
    """

    non_null_columns: frozenset[str] = frozenset()
    non_null_aggregate_args: frozenset[tuple] = frozenset()

    def __bool__(self) -> bool:
        return bool(self.non_null_columns or self.non_null_aggregate_args)


EMPTY_HINTS = NullabilityHints()


@dataclass(frozen=True)
class SchemaAnalysis:
    """The engine-configuration-independent half of a plan analysis: the
    inferred output schema and the nullability hints.  Cached per plan
    fingerprint by the engine (the tier verdicts are not cached: the
    parallel-tier verdict depends on cache state at execution time)."""

    columns: tuple[ColumnInfo, ...]
    hints: NullabilityHints

    def column(self, name: str) -> ColumnInfo | None:
        for info in self.columns:
            if info.name == name:
                return info
        return None


@dataclass(frozen=True)
class PlanAnalysis:
    """The full static-analysis artifact for one physical plan."""

    columns: tuple[ColumnInfo, ...] = ()
    verdicts: tuple[TierVerdict, ...] = ()
    hints: NullabilityHints = field(default=EMPTY_HINTS)

    @property
    def predicted_tier(self) -> str:
        """The tier the cascade will select: the first serving verdict."""
        for verdict in self.verdicts:
            if verdict.serves:
                return verdict.tier
        return TIER_VOLCANO

    def verdict(self, tier: str) -> TierVerdict | None:
        for verdict in self.verdicts:
            if verdict.tier == tier:
                return verdict
        return None

    def column(self, name: str) -> ColumnInfo | None:
        for info in self.columns:
            if info.name == name:
                return info
        return None

    def decline_reasons(self) -> dict[str, str]:
        """Machine-readable decline reasons keyed by tier name."""
        return {
            verdict.tier: f"[{verdict.code}] {verdict.reason}"
            for verdict in self.verdicts
            if not verdict.serves
        }
