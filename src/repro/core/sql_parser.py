"""SQL frontend.

Proteus exposes SQL for relational-style queries over flat data and desugars
each statement into a monoid comprehension (§3).  The supported subset covers
the evaluation workloads of the paper:

* ``SELECT`` lists with arithmetic expressions, aggregates (COUNT/SUM/MIN/MAX/
  AVG) and aliases,
* ``FROM`` with any number of comma-separated or ``JOIN ... ON`` table
  references and optional aliases,
* ``WHERE`` with conjunctions/disjunctions of comparisons over (possibly
  nested) field paths,
* ``GROUP BY``, ``ORDER BY`` and ``LIMIT``,
* query parameters: ``?`` (positional, 0-based in order of appearance) and
  ``:name`` (named) placeholders anywhere a scalar expression is allowed;
  they parse into :class:`~repro.core.expressions.Parameter` nodes and are
  bound to values at execution time through ``PreparedQuery.execute``.

Column references may be qualified by a table alias (``l.quantity``) or left
unqualified (``quantity``); unqualified names and JSON paths are resolved
against the catalog by :mod:`repro.core.binder`.
"""

from __future__ import annotations

from repro.core.calculus import Comprehension, DatasetSource, Filter, Generator
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    Literal,
    OutputColumn,
    Parameter,
    UnaryOp,
)
from repro.core.lexer import IDENT, NUMBER, STRING, SYMBOL, TokenStream
from repro.errors import ParseError

#: Placeholder binding used for unqualified column references until binding.
UNRESOLVED = "?"

_AGGREGATE_NAMES = ("count", "sum", "min", "max", "avg")

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "limit", "join", "inner",
    "left", "outer", "on", "and", "or", "not", "as", "asc", "desc",
}


def parse_sql(text: str) -> Comprehension:
    """Parse a SQL statement into a (possibly unbound) comprehension."""
    stream = TokenStream(text)
    parser = _SqlParser(stream)
    comprehension = parser.parse_query()
    if not stream.at_end():
        raise stream.error(f"unexpected trailing input {stream.current.value!r}")
    return comprehension


class _SqlParser:
    def __init__(self, stream: TokenStream):
        self.stream = stream
        #: Number of ``?`` placeholders seen so far; each gets the next
        #: 0-based positional parameter index.
        self.positional_parameters = 0

    # -- query structure ----------------------------------------------------

    def parse_query(self) -> Comprehension:
        self.stream.expect(IDENT, "select")
        select_items = self._parse_select_list()
        self.stream.expect(IDENT, "from")
        qualifiers: list = []
        qualifiers.append(self._parse_table_ref())
        join_filters: list[Expression] = []
        while True:
            if self.stream.accept(SYMBOL, ","):
                qualifiers.append(self._parse_table_ref())
                continue
            joined = self._parse_join_clause()
            if joined is None:
                break
            generator, on_predicate = joined
            qualifiers.append(generator)
            join_filters.append(on_predicate)
        predicate = None
        if self.stream.accept_keyword("where"):
            predicate = self._parse_expression()
        group_by: list[Expression] = []
        if self.stream.accept_keyword("group"):
            self.stream.expect(IDENT, "by")
            group_by = self._parse_expression_list()
        order_by: list[tuple[str, bool]] = []
        if self.stream.accept_keyword("order"):
            self.stream.expect(IDENT, "by")
            order_by = self._parse_order_list()
        limit: int | Parameter | None = None
        if self.stream.accept_keyword("limit"):
            if self.stream.accept(SYMBOL, "?"):
                limit = Parameter(self.positional_parameters)
                self.positional_parameters += 1
            elif self.stream.accept(SYMBOL, ":"):
                limit = Parameter(self.stream.expect(IDENT).value)
            else:
                # A signed literal parses so that ``LIMIT -3`` fails the same
                # validation as a ``LIMIT ?`` bound to -3, instead of a
                # confusing token error.
                negative = self.stream.accept(SYMBOL, "-") is not None
                limit = int(self.stream.expect(NUMBER).value)
                if negative:
                    limit = -limit

        for join_filter in join_filters:
            qualifiers.append(Filter(join_filter))
        if predicate is not None:
            qualifiers.append(Filter(predicate))

        head = self._build_head(select_items)
        monoid = "bag"
        return Comprehension(
            monoid=monoid,
            head=head,
            qualifiers=qualifiers,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self) -> list[tuple[Expression | None, str | None]]:
        items: list[tuple[Expression | None, str | None]] = []
        if self.stream.accept(SYMBOL, "*"):
            return [(None, None)]
        while True:
            expression = self._parse_expression()
            alias = None
            if self.stream.accept_keyword("as"):
                alias = self.stream.expect(IDENT).value
            elif self.stream.current.kind == IDENT and \
                    self.stream.current.value.lower() not in _KEYWORDS:
                alias = self.stream.advance().value
            items.append((expression, alias))
            if not self.stream.accept(SYMBOL, ","):
                break
        return items

    def _build_head(
        self, items: list[tuple[Expression | None, str | None]]
    ) -> list[OutputColumn]:
        head: list[OutputColumn] = []
        for index, (expression, alias) in enumerate(items):
            if expression is None:
                # SELECT * — expanded during binding once schemas are known.
                head.append(OutputColumn("*", FieldRef(UNRESOLVED, ("*",))))
                continue
            name = alias if alias is not None else _default_name(expression, index)
            head.append(OutputColumn(name, expression))
        return head

    def _parse_table_ref(self) -> Generator:
        dataset = self.stream.expect(IDENT).value
        alias = dataset
        if self.stream.accept_keyword("as"):
            alias = self.stream.expect(IDENT).value
        elif self.stream.current.kind == IDENT and \
                self.stream.current.value.lower() not in _KEYWORDS:
            alias = self.stream.advance().value
        return Generator(alias, DatasetSource(dataset))

    def _parse_join_clause(self) -> tuple[Generator, Expression] | None:
        saved = self.stream.index
        if self.stream.accept_keyword("inner"):
            pass
        elif self.stream.accept_keyword("left"):
            self.stream.accept_keyword("outer")
        if not self.stream.accept_keyword("join"):
            self.stream.index = saved
            return None
        generator = self._parse_table_ref()
        self.stream.expect(IDENT, "on")
        predicate = self._parse_expression()
        return generator, predicate

    def _parse_expression_list(self) -> list[Expression]:
        expressions = [self._parse_expression()]
        while self.stream.accept(SYMBOL, ","):
            expressions.append(self._parse_expression())
        return expressions

    def _parse_order_list(self) -> list[tuple[str, bool]]:
        items: list[tuple[str, bool]] = []
        while True:
            name = self.stream.expect(IDENT).value
            ascending = True
            if self.stream.accept_keyword("desc"):
                ascending = False
            else:
                self.stream.accept_keyword("asc")
            items.append((name, ascending))
            if not self.stream.accept(SYMBOL, ","):
                break
        return items

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.stream.accept_keyword("or"):
            right = self._parse_and()
            left = BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.stream.accept_keyword("and"):
            right = self._parse_not()
            left = BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> Expression:
        if self.stream.accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        for symbol, op in (
            ("<=", "<="), (">=", ">="), ("!=", "!="), ("<>", "!="),
            ("==", "="), ("=", "="), ("<", "<"), (">", ">"),
        ):
            if self.stream.accept(SYMBOL, symbol):
                right = self._parse_additive()
                return BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self.stream.accept(SYMBOL, "+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self.stream.accept(SYMBOL, "-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            if self.stream.accept(SYMBOL, "*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self.stream.accept(SYMBOL, "/"):
                left = BinaryOp("/", left, self._parse_unary())
            elif self.stream.accept(SYMBOL, "%"):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.stream.accept(SYMBOL, "-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.stream.current
        if token.kind == NUMBER:
            self.stream.advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == STRING:
            self.stream.advance()
            return Literal(token.value)
        if token.kind == SYMBOL and token.value == "(":
            self.stream.advance()
            inner = self._parse_expression()
            self.stream.expect(SYMBOL, ")")
            return inner
        if token.kind == SYMBOL and token.value == "?":
            self.stream.advance()
            index = self.positional_parameters
            self.positional_parameters += 1
            return Parameter(index)
        if token.kind == SYMBOL and token.value == ":":
            self.stream.advance()
            name = self.stream.expect(IDENT).value
            return Parameter(name)
        if token.kind == IDENT:
            lowered = token.value.lower()
            if lowered in ("true", "false"):
                self.stream.advance()
                return Literal(lowered == "true")
            if lowered in _AGGREGATE_NAMES and self.stream.peek().matches(SYMBOL, "("):
                return self._parse_aggregate()
            return self._parse_path()
        raise self.stream.error(f"unexpected token {token.value!r} in expression")

    def _parse_aggregate(self) -> Expression:
        func = self.stream.expect(IDENT).value.lower()
        self.stream.expect(SYMBOL, "(")
        if self.stream.accept(SYMBOL, "*"):
            argument: Expression | None = None
            if func != "count":
                raise self.stream.error(f"aggregate {func!r} cannot take '*'")
        else:
            argument = self._parse_expression()
        self.stream.expect(SYMBOL, ")")
        return AggregateCall(func, argument)

    def _parse_path(self) -> Expression:
        first = self.stream.expect(IDENT).value
        path = [first]
        while self.stream.current.matches(SYMBOL, ".") and self.stream.peek().kind == IDENT:
            self.stream.advance()
            path.append(self.stream.expect(IDENT).value)
        # The first element may be a table alias or the first step of an
        # unqualified path; the binder disambiguates using catalog schemas.
        return FieldRef(UNRESOLVED, tuple(path))


def _default_name(expression: Expression, index: int) -> str:
    if isinstance(expression, FieldRef) and expression.path:
        return expression.path[-1]
    if isinstance(expression, AggregateCall):
        if isinstance(expression.argument, FieldRef) and expression.argument.path:
            return f"{expression.func}_{expression.argument.path[-1]}"
        return expression.func
    return f"col{index}"
