"""Expression generators (§5.2, "Expression Generation").

An expression generator turns an algebraic expression into a fragment of the
generated program.  The operators that request it are agnostic to where the
referenced values live: the generator resolves every field reference against
the *virtual buffer* table — the mapping from ``(binding, path)`` to the
NumPy buffer variable the corresponding plug-in populated — and emits a
vectorized NumPy expression over those buffers.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    IfThenElse,
    Literal,
    Parameter,
    RecordConstruct,
    UnaryOp,
)
from repro.errors import CodegenError

BufferMap = Mapping[tuple[str, tuple[str, ...]], str]

_COMPARISON_TRANSLATION = {
    "=": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

_ARITHMETIC = ("+", "-", "*", "/", "%")


def generate_expression(expression: Expression, buffers: BufferMap) -> str:
    """Return a Python/NumPy source expression evaluating ``expression`` over
    the virtual buffers."""
    if isinstance(expression, Literal):
        return repr(expression.value)
    if isinstance(expression, Parameter):
        # Parameters stay runtime lookups instead of inlined constants, so
        # one compiled program serves every parameter binding (the plan
        # fingerprint abstracts the value the same way).
        return f"rt.param({expression.key!r})"
    if isinstance(expression, FieldRef):
        key = (expression.binding, tuple(expression.path))
        variable = buffers.get(key)
        if variable is None:
            raise CodegenError(
                f"no buffer holds {expression!r}; available buffers: "
                f"{sorted(buffers)}"
            )
        return variable
    if isinstance(expression, BinaryOp):
        left = generate_expression(expression.left, buffers)
        right = generate_expression(expression.right, buffers)
        if expression.op in _ARITHMETIC:
            # Null-aware helper: None operands (e.g. all-missing group
            # extrema) propagate instead of raising; numeric buffers take the
            # plain NumPy operator inside.
            return f"rt.arith({expression.op!r}, {left}, {right})"
        if expression.op in _COMPARISON_TRANSLATION:
            # Null-aware helper: missing operands (None aggregate results,
            # NaN-encoded nulls) compare false, matching the interpreted
            # tiers — plain operators would raise on None or qualify NaN
            # under !=.
            return f"rt.cmp({expression.op!r}, {left}, {right})"
        # Operands go through rt.mask so bare (non-boolean) operands coerce
        # elementwise and missing values are false, as in the other tiers.
        if expression.op == "and":
            return f"(rt.mask({left}) & rt.mask({right}))"
        if expression.op == "or":
            return f"(rt.mask({left}) | rt.mask({right}))"
        raise CodegenError(f"unsupported binary operator {expression.op!r}")
    if isinstance(expression, UnaryOp):
        operand = generate_expression(expression.operand, buffers)
        if expression.op == "-":
            return f"rt.neg({operand})"
        return f"(~rt.mask({operand}))"
    if isinstance(expression, IfThenElse):
        condition = generate_expression(expression.condition, buffers)
        then = generate_expression(expression.then, buffers)
        otherwise = generate_expression(expression.otherwise, buffers)
        return f"np.where(rt.mask({condition}), {then}, {otherwise})"
    if isinstance(expression, AggregateCall):
        raise CodegenError(
            "aggregate calls are handled by the Reduce/Nest generators, not by "
            "the expression generator"
        )
    if isinstance(expression, RecordConstruct):
        raise CodegenError(
            "record construction in output columns is served by the Volcano "
            "executor fallback"
        )
    raise CodegenError(f"cannot generate code for expression {expression!r}")


def supported_by_codegen(expression: Expression) -> bool:
    """Whether the vectorized generator can evaluate ``expression``."""
    if isinstance(expression, (Literal, FieldRef, Parameter)):
        return True
    if isinstance(expression, (BinaryOp, UnaryOp, IfThenElse)):
        return all(supported_by_codegen(child) for child in expression.children())
    if isinstance(expression, AggregateCall):
        return expression.argument is None or supported_by_codegen(expression.argument)
    return False
