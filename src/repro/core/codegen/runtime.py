"""Runtime support library for generated queries.

The paper keeps two kinds of logic out of the generated code: pre-existing
helpers (radix join/grouping, the memory and caching managers) and anything
that is cheaper to call than to inline.  The generated Python program receives
one :class:`QueryRuntime` instance (``rt``) and calls into it for:

* ``scan`` / ``unnest`` — plug-in data access, transparently served from the
  adaptive caches when the caching manager holds the requested columns and
  populated as a side effect otherwise (§6),
* ``radix_join`` / ``radix_group`` / aggregates — the materializing kernels,
  with join build sides reusable across queries through partial cache matches,
* bookkeeping counters used by the experiment reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.caching.manager import CacheManager
from repro.caching.matching import field_cache_key, join_side_cache_key, unnest_cache_key
from repro.core.executor import radix
from repro.errors import ExecutionError
from repro.plugins.base import FieldPath, InputPlugin, ScanBuffers, UnnestBuffers
from repro.storage.catalog import Catalog, Dataset


@dataclass
class ExecutionProfile:
    """Counters describing one query execution (proxies for the paper's
    hardware-counter discussion)."""

    rows_scanned: int = 0
    values_extracted: int = 0
    values_from_cache: int = 0
    join_build_rows: int = 0
    join_output_rows: int = 0
    groups_built: int = 0
    output_rows: int = 0
    batches_processed: int = 0
    used_generated_code: bool = True
    #: Which execution tier served the query: "codegen" (the specialized
    #: per-query program), "vectorized-parallel" (the morsel-driven parallel
    #: batch interpreter), "vectorized" (the serial batch interpreter) or
    #: "volcano" (the tuple-at-a-time interpreter).
    execution_tier: str = "codegen"
    #: Worker count of the parallel tier (0 on the serial tiers).
    parallel_workers: int = 0
    #: Morsels executed / obtained by stealing on the parallel tier.
    morsels_dispatched: int = 0
    morsels_stolen: int = 0
    #: True when the codegen tier served this execution from an
    #: already-compiled program (no code generation happened on this call).
    compiled_from_cache: bool = False
    #: Which sort kernel served the query's ORDER BY: "lexsort" (one stable
    #: dtype-specialized permutation), "topk" (bounded streaming top-K for
    #: ORDER BY + LIMIT), "parallel-merge" (per-morsel sorted runs merged
    #: k-way at the root), "object-fallback" (boxed comparator for object
    #: columns) — or None when the query has no ORDER BY.
    sort_strategy: str | None = None
    #: Rows that entered a sort kernel (for streaming top-K this counts every
    #: pruned batch, so it can exceed the result size).
    rows_sorted: int = 0
    #: Rows emitted by batch-native unnest stages (flattened elements plus,
    #: under outer unnest, one null child row per empty collection).
    unnest_output_rows: int = 0
    #: The tier the static plan analyzer predicted would serve this query
    #: (``None`` for profiles built outside the engine's cascade).
    predicted_tier: str | None = None
    #: Why each non-serving tier declined, keyed by tier name; values carry a
    #: machine-readable code prefix, e.g. ``"[TIER005] outer join is served
    #: by the Volcano interpreter"``.  Tiers that declined *during* execution
    #: (data-dependent demotions the static analysis cannot rule out) appear
    #: with code ``TIER009``.
    tier_decline_reasons: dict[str, str] = field(default_factory=dict)
    #: Transient scan-I/O retries this query consumed (RES005 territory once
    #: the per-query budget runs out).
    io_retries: int = 0
    #: ``None`` for completed queries; the diagnostic code (``RES001`` ...)
    #: when the query was aborted by the resilience subsystem.
    aborted: str | None = None
    #: Partial-progress counters (batches/rows/morsels/kernel calls) captured
    #: from the :class:`~repro.resilience.context.QueryContext` when a query
    #: aborts; empty for completed queries.
    partial_progress: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "ExecutionProfile") -> None:
        self.rows_scanned += other.rows_scanned
        self.values_extracted += other.values_extracted
        self.values_from_cache += other.values_from_cache
        self.join_build_rows += other.join_build_rows
        self.join_output_rows += other.join_output_rows
        self.groups_built += other.groups_built
        self.output_rows += other.output_rows
        self.batches_processed += other.batches_processed
        self.parallel_workers = max(self.parallel_workers, other.parallel_workers)
        self.morsels_dispatched += other.morsels_dispatched
        self.morsels_stolen += other.morsels_stolen
        self.sort_strategy = self.sort_strategy or other.sort_strategy
        self.rows_sorted += other.rows_sorted
        self.unnest_output_rows += other.unnest_output_rows
        self.io_retries += other.io_retries
        self.aborted = self.aborted or other.aborted
        self.predicted_tier = self.predicted_tier or other.predicted_tier
        self.tier_decline_reasons.update(other.tier_decline_reasons)
        # Tier attribution is conservative: the merged profile reports the
        # *slowest* tier any fragment executed on (that tier bounds the
        # merged execution), generated code only if every fragment ran it,
        # and a cached compilation only if every fragment's program came
        # from the cache.  Before this folding the three fields silently
        # reset to their defaults when per-fragment profiles were merged.
        if _TIER_RANK.get(other.execution_tier, -1) > _TIER_RANK.get(
            self.execution_tier, -1
        ):
            self.execution_tier = other.execution_tier
        self.used_generated_code = (
            self.used_generated_code and other.used_generated_code
        )
        self.compiled_from_cache = (
            self.compiled_from_cache and other.compiled_from_cache
        )


#: Cascade order used by :meth:`ExecutionProfile.merge` — higher rank means
#: a slower (more of a bottleneck) tier.
_TIER_RANK = {
    "codegen": 0,
    "vectorized-parallel": 1,
    "vectorized": 2,
    "volcano": 3,
}


class QueryRuntime:
    """Everything a generated query program needs at run time."""

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        cache_manager: CacheManager | None = None,
        params: Mapping[int | str, object] | None = None,
        trace=None,
        context=None,
    ):
        self.catalog = catalog
        self.plugins = plugins
        self.cache_manager = cache_manager
        self.params: Mapping[int | str, object] = params if params is not None else {}
        self.profile = ExecutionProfile()
        self.trace = trace
        self.context = context
        if trace is not None:
            # Rebind the kernel entry points with span-recording closures on
            # this instance only; untraced runtimes keep the plain methods.
            from repro.obs.instrument import instrument_runtime

            instrument_runtime(self, trace)
        if context is not None and context.active:
            # Same rebinding idiom for cooperative deadline/cancel checks: a
            # generated program cannot be interrupted mid-source, but every
            # unit of work it performs flows through these kernels.  A
            # passive context (no deadline, no token) keeps the plain
            # methods, so the default engine pays nothing here.
            from repro.resilience.instrument import instrument_runtime_checks

            instrument_runtime_checks(self, context)

    # -- parameters ----------------------------------------------------------------

    def param(self, key: int | str):
        """The bound value of one query parameter (generated code calls this
        instead of baking the constant in, so the program is reusable)."""
        try:
            return self.params[key]
        except KeyError as exc:
            display = f"?{key}" if isinstance(key, int) else f":{key}"
            raise ExecutionError(
                f"query parameter {display} is not bound"
            ) from exc

    # -- data access ---------------------------------------------------------------

    def scan(
        self, plugin: InputPlugin, dataset: Dataset, paths: Sequence[FieldPath]
    ) -> ScanBuffers:
        """Materialize the requested columns, using and feeding the caches."""
        paths = [tuple(path) for path in paths]
        manager = self.cache_manager
        if manager is None or plugin.format_name == "cache":
            buffers = _metered_scan(plugin, plugin.scan_columns, dataset, paths)
            self.profile.rows_scanned += buffers.count
            self.profile.values_extracted += buffers.count * len(paths)
            return buffers

        cached: dict[FieldPath, np.ndarray] = {}
        missing: list[FieldPath] = []
        for path in paths:
            entry = manager.lookup(field_cache_key(dataset.name, path))
            if entry is not None:
                cached[path] = entry.data
            else:
                missing.append(path)

        if missing or not paths:
            fresh = _metered_scan(plugin, plugin.scan_columns, dataset, missing)
            self.profile.rows_scanned += fresh.count
            self.profile.values_extracted += fresh.count * len(missing)
            count = fresh.count
            oids = fresh.oids
            for path in missing:
                column = fresh.column(path)
                cached[path] = column
                type_name = _column_type_name(column)
                if manager.policy.should_cache_field(plugin.format_name, type_name):
                    manager.store(
                        field_cache_key(dataset.name, path),
                        column,
                        kind="field",
                        dataset=dataset.name,
                        source_format=plugin.format_name,
                        description=f"{dataset.name}.{'.'.join(path)}",
                    )
        else:
            count = len(next(iter(cached.values()))) if cached else 0
            oids = np.arange(count, dtype=np.int64)
            self.profile.values_from_cache += count * len(cached)

        buffers = ScanBuffers(count=count, oids=oids)
        buffers.columns.update(cached)
        return buffers

    def scan_selected(
        self,
        plugin: InputPlugin,
        dataset: Dataset,
        paths: Sequence[FieldPath],
        oids: np.ndarray,
    ) -> ScanBuffers:
        """Lazy field materialization: convert fields only for qualifying OIDs.

        Used by the generated code when a selective predicate has already run
        over (cached or cheaply-extracted) columns, so the remaining fields are
        converted only for the survivors (§5.2, lazy plug-in behaviour).
        Cached columns are still preferred; selective extractions are not
        admitted to the cache (they do not cover the full dataset).
        """
        paths = [tuple(path) for path in paths]
        oids = np.asarray(oids, dtype=np.int64)
        manager = self.cache_manager
        cached: dict[FieldPath, np.ndarray] = {}
        missing: list[FieldPath] = []
        for path in paths:
            entry = (
                manager.lookup(field_cache_key(dataset.name, path))
                if manager is not None and plugin.format_name != "cache"
                else None
            )
            if entry is not None:
                cached[path] = entry.data[oids]
                self.profile.values_from_cache += len(oids)
            else:
                missing.append(path)
        buffers = ScanBuffers(count=len(oids), oids=oids)
        buffers.columns.update(cached)
        if missing:
            fresh = _metered_scan(plugin, plugin.scan_columns_at, dataset, missing, oids)
            self.profile.values_extracted += len(oids) * len(missing)
            for path in missing:
                buffers.columns[path] = fresh.column(path)
        return buffers

    def unnest(
        self,
        plugin: InputPlugin,
        dataset: Dataset,
        collection_path: FieldPath,
        element_paths: Sequence[FieldPath],
        parent_oids: np.ndarray,
        full_scan: bool = False,
    ) -> UnnestBuffers:
        """Flatten a nested collection, caching the result for full scans."""
        collection_path = tuple(collection_path)
        element_paths = [tuple(path) for path in element_paths]
        manager = self.cache_manager
        key = unnest_cache_key(dataset.name, collection_path, element_paths)
        if manager is not None and full_scan:
            entry = manager.lookup(key)
            if entry is not None:
                buffers = entry.data
                self.profile.values_from_cache += buffers.count * max(len(element_paths), 1)
                self.profile.unnest_output_rows += buffers.count
                return buffers
        buffers = _metered_scan(
            plugin,
            plugin.scan_unnest,
            dataset,
            collection_path,
            element_paths,
            None if full_scan else parent_oids,
        )
        self.profile.rows_scanned += buffers.count
        self.profile.unnest_output_rows += buffers.count
        self.profile.values_extracted += buffers.count * max(len(element_paths), 1)
        if manager is not None and full_scan and \
                manager.policy.cache_unnest_output and \
                manager.policy.should_cache_field(plugin.format_name, "float"):
            manager.store(
                key,
                buffers,
                kind="unnest",
                dataset=dataset.name,
                source_format=plugin.format_name,
                description=f"unnest {dataset.name}.{'.'.join(collection_path)}",
            )
        return buffers

    # -- join / grouping kernels ------------------------------------------------------

    def radix_join(
        self,
        left_keys: np.ndarray,
        right_keys: np.ndarray,
        build_cache_key: tuple | None = None,
        source_format: str = "binary_column",
        dataset: str = "",
        param_keys: tuple = (),
    ) -> tuple[np.ndarray, np.ndarray]:
        """Radix hash join; the build side may be served from / added to the cache.

        ``param_keys`` names the query parameters the build side depends on:
        the plan fingerprint inside ``build_cache_key`` abstracts parameter
        *values*, so the bound values must be folded back into the cache key —
        otherwise two executions with different constants (and coincidentally
        equal build cardinalities) could share a stale build table.
        """
        if build_cache_key is not None and param_keys:
            try:
                build_cache_key = tuple(build_cache_key) + tuple(
                    (key, self.params.get(key)) for key in param_keys
                )
                hash(build_cache_key)
            except TypeError:
                # Unhashable parameter values: skip build-side caching.
                build_cache_key = None
        table = None
        manager = self.cache_manager
        if manager is not None and build_cache_key is not None:
            entry = manager.lookup(("join_side",) + tuple(build_cache_key))
            if entry is not None:
                table = entry.data
        if table is None or table.build_size != len(left_keys):
            table = radix.build_radix_table(np.asarray(left_keys))
            self.profile.join_build_rows += len(left_keys)
            if manager is not None and build_cache_key is not None and \
                    manager.policy.should_cache_join_side({source_format}):
                manager.store(
                    ("join_side",) + tuple(build_cache_key),
                    table,
                    kind="join_side",
                    dataset=dataset,
                    source_format=source_format,
                    description="radix join build side",
                )
        left_positions, right_positions = radix.probe_radix_table(
            table, np.asarray(right_keys)
        )
        self.profile.join_output_rows += len(left_positions)
        return left_positions, right_positions

    def cross_product(self, left_count: int, right_count: int) -> tuple[np.ndarray, np.ndarray]:
        """Index pairs of a cartesian product (nested-loop join fallback)."""
        left = np.repeat(np.arange(left_count, dtype=np.int64), right_count)
        right = np.tile(np.arange(right_count, dtype=np.int64), left_count)
        return left, right

    def radix_group(self, key_arrays: Sequence[np.ndarray]) -> radix.GroupingResult:
        result = radix.radix_group([np.asarray(keys) for keys in key_arrays])
        self.profile.groups_built += result.num_groups
        return result

    def group_agg(
        self,
        func: str,
        group_ids: np.ndarray,
        num_groups: int,
        values: np.ndarray | None = None,
    ) -> np.ndarray:
        return radix.group_aggregate(func, group_ids, num_groups, values)

    def scalar_agg(self, func: str, values: np.ndarray | None, count: int):
        return radix.scalar_aggregate(func, values, count)

    # -- null-aware expression helpers -----------------------------------------------------

    def mask(self, values) -> np.ndarray:
        """Coerce a predicate result to a boolean selection mask (missing
        inputs are false); shared with the vectorized executor."""
        return radix.bool_mask(values)

    def column(self, values, count) -> np.ndarray:
        """Materialize an output-column result to ``count`` rows: constant
        (0-d) heads broadcast, full columns pass through."""
        array = np.asarray(values)
        if array.ndim == 0:
            return np.broadcast_to(array, (int(count),))
        return array

    def cmp(self, op: str, left, right) -> np.ndarray:
        """Null-aware vectorized comparison; shared with the vectorized
        executor."""
        return radix.null_safe_compare(op, left, right)

    def arith(self, op: str, left, right):
        """Null-aware vectorized arithmetic; shared with the vectorized
        executor."""
        return radix.null_safe_arith(op, left, right)

    def neg(self, value):
        """Null-aware vectorized unary minus; shared with the vectorized
        executor."""
        return radix.null_safe_neg(value)

    # -- misc ----------------------------------------------------------------------------

    def record_output(self, count: int) -> None:
        self.profile.output_rows += int(count)

    def join_cache_key(self, side_fingerprint: tuple, key_fingerprint: tuple) -> tuple:
        return join_side_cache_key(side_fingerprint, key_fingerprint)


def _metered_scan(plugin: InputPlugin, accessor, *args):
    """Run one plug-in scan call, charging its wall time and produced bytes
    to the plug-in's scan metrics (scraped per plug-in by the registry)."""
    started = time.perf_counter()
    buffers = accessor(*args)
    seconds = time.perf_counter() - started
    nbytes = sum(
        getattr(column, "nbytes", 0) for column in buffers.columns.values()
    )
    plugin.record_scan(seconds, nbytes)
    return buffers


def _column_type_name(column: np.ndarray) -> str:
    if column.dtype == object:
        return "string"
    if column.dtype.kind == "b":
        return "bool"
    if column.dtype.kind in "iu":
        return "int"
    return "float"
