"""Per-query code generation (§5.1, "An Engine per Query").

The generator traverses the physical plan once, in post-order DFS, exactly as
the paper describes: visiting a leaf (scan) triggers the corresponding input
plug-in to emit data-access code populating virtual buffers; as the recursion
returns towards the root, every visited operator emits its own code over those
buffers (masks for selections, gather/probe code for joins, kernel calls for
grouping), and the final Reduce/Nest emits the code assembling the result.

The output is a single Python function — the specialized engine for this
query — compiled by :mod:`repro.core.codegen.compiler` and executed against a
:class:`~repro.core.codegen.runtime.QueryRuntime`.  Control-flow decisions
(datatype checks, which fields to extract, which access path to use) happen
exactly once, during this traversal, instead of once per tuple as in the
Volcano interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.aggregate_utils import replace_aggregates
from repro.core.codegen.compiler import GeneratedQuery, compile_query
from repro.core.codegen.context import CodegenContext
from repro.core.codegen.expr_gen import generate_expression
from repro.core.expressions import (
    AggregateCall,
    Expression,
    FieldRef,
    contains_aggregate,
    iter_aggregates,
    iter_parameters,
)
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysUnnest,
    PhysicalPlan,
    parameters_of,
)
from repro.errors import CodegenError
from repro.plugins.base import InputPlugin
from repro.storage.catalog import Catalog, Dataset

#: Synthetic binding under which computed aggregate results are exposed to the
#: expression generator when finishing output columns.
_AGG_BINDING = "__agg__"


@dataclass
class _Buffers:
    """Virtual-buffer table threaded through the plan traversal."""

    columns: dict[tuple[str, tuple[str, ...]], str] = field(default_factory=dict)
    oids: dict[str, str] = field(default_factory=dict)
    count_var: str = "0"

    def all_variables(self) -> list[tuple[str, str]]:
        """(kind, variable) pairs for every live buffer (columns and OIDs)."""
        pairs = [("column", var) for var in self.columns.values()]
        pairs.extend(("oid", var) for var in self.oids.values())
        return pairs


class CodeGenerator:
    """Generates the specialized program for one physical plan."""

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        cache_plugin: InputPlugin | None = None,
    ):
        self.catalog = catalog
        self.plugins = plugins
        self.cache_plugin = cache_plugin

    # -- entry point --------------------------------------------------------------

    def generate(self, plan: PhysicalPlan) -> GeneratedQuery:
        ctx = CodegenContext()
        self._binding_sources: dict[str, tuple[Dataset, InputPlugin]] = {}
        if isinstance(plan, PhysReduce):
            buffers = self._visit(plan.child, ctx)
            self._emit_reduce(plan, buffers, ctx)
        elif isinstance(plan, PhysNest):
            buffers = self._visit(plan.child, ctx)
            self._emit_nest(plan, buffers, ctx)
        else:
            raise CodegenError(f"plan root must be Reduce or Nest, got {plan.describe()}")
        return compile_query(ctx)

    # -- operator visitors -----------------------------------------------------------

    def _visit(self, node: PhysicalPlan, ctx: CodegenContext) -> _Buffers:
        if isinstance(node, PhysScan):
            return self._visit_scan(node, ctx)
        if isinstance(node, PhysSelect):
            return self._visit_select(node, ctx)
        if isinstance(node, PhysUnnest):
            return self._visit_unnest(node, ctx)
        if isinstance(node, PhysHashJoin):
            return self._visit_hash_join(node, ctx)
        if isinstance(node, PhysNestedLoopJoin):
            return self._visit_nested_loop(node, ctx)
        raise CodegenError(f"cannot generate code for operator {node.describe()}")

    def _visit_scan(self, node: PhysScan, ctx: CodegenContext) -> _Buffers:
        dataset = self.catalog.get(node.dataset)
        if node.access_path == "cache" and self.cache_plugin is not None:
            plugin = self.cache_plugin
        else:
            plugin = self.plugins.get(dataset.format)
            if plugin is None:
                raise CodegenError(f"no plug-in for format {dataset.format!r}")
        self._binding_sources[node.binding] = (dataset, plugin)
        ctx.comment(node.describe())
        variables = plugin.generate_scan(ctx, dataset, node.paths)
        buffers = _Buffers()
        for path, variable in variables.items():
            if path == ("__oid__",):
                buffers.oids[node.binding] = variable
            else:
                buffers.columns[(node.binding, tuple(path))] = variable
        count_var = ctx.fresh("count")
        oid_var = buffers.oids.get(node.binding)
        if oid_var is not None:
            ctx.emit(f"{count_var} = len({oid_var})")
        else:  # pragma: no cover - the base plug-in always returns OIDs
            ctx.emit(f"{count_var} = 0")
        buffers.count_var = count_var
        return buffers

    def _visit_select(self, node: PhysSelect, ctx: CodegenContext) -> _Buffers:
        lazy = self._try_lazy_scan_select(node, ctx)
        if lazy is not None:
            return lazy
        buffers = self._visit(node.child, ctx)
        ctx.comment(node.describe())
        return self._apply_filter(node.predicate, buffers, ctx)

    def _try_lazy_scan_select(
        self, node: PhysSelect, ctx: CodegenContext
    ) -> _Buffers | None:
        """Lazy materialization over verbose formats (§5.2).

        When a selection sits directly on a CSV/JSON scan, only the fields the
        predicate needs are converted eagerly; the remaining fields are
        converted after the filter, for the qualifying OIDs only.
        """
        child = node.child
        if not isinstance(child, PhysScan) or child.access_path == "cache":
            return None
        dataset = self.catalog.get(child.dataset)
        if dataset.format not in ("csv", "json"):
            return None
        predicate_paths = {
            tuple(path)
            for binding, path in node.predicate.referenced_fields()
            if binding == child.binding
        }
        deferred = [path for path in child.paths if tuple(path) not in predicate_paths]
        if not deferred:
            return None
        eager = [path for path in child.paths if tuple(path) in predicate_paths]
        eager_scan = PhysScan(child.dataset, child.binding, eager, child.access_path)
        buffers = self._visit_scan(eager_scan, ctx)
        ctx.comment(node.describe() + " [lazy field materialization]")
        filtered = self._apply_filter(node.predicate, buffers, ctx)
        plugin = self.plugins[dataset.format]
        dataset_var = ctx.register_constant(f"ds_{dataset.name}", dataset)
        plugin_var = ctx.register_constant(f"plugin_{plugin.format_name}", plugin)
        oid_var = filtered.oids[child.binding]
        lazy_var = ctx.fresh("lazy")
        deferred_literal = ", ".join(repr(tuple(path)) for path in deferred)
        ctx.emit(
            f"{lazy_var} = rt.scan_selected({plugin_var}, {dataset_var}, "
            f"({deferred_literal}{',' if deferred else ''}), {oid_var})"
        )
        for path in deferred:
            column_var = ctx.fresh("lazy_" + "_".join(path))
            ctx.emit(f"{column_var} = {lazy_var}.column({tuple(path)!r})")
            filtered.columns[(child.binding, tuple(path))] = column_var
        return filtered

    def _apply_filter(
        self, predicate: Expression, buffers: _Buffers, ctx: CodegenContext
    ) -> _Buffers:
        mask_source = generate_expression(predicate, buffers.columns)
        mask_var = ctx.fresh("mask")
        ctx.emit(f"{mask_var} = rt.mask({mask_source})")
        filtered = _Buffers()
        for key, variable in buffers.columns.items():
            new_var = ctx.fresh("sel")
            ctx.emit(f"{new_var} = {variable}[{mask_var}]")
            filtered.columns[key] = new_var
        for binding, variable in buffers.oids.items():
            new_var = ctx.fresh("sel_oid")
            ctx.emit(f"{new_var} = {variable}[{mask_var}]")
            filtered.oids[binding] = new_var
        count_var = ctx.fresh("count")
        ctx.emit(f"{count_var} = int({mask_var}.sum())")
        filtered.count_var = count_var
        return filtered

    def _visit_unnest(self, node: PhysUnnest, ctx: CodegenContext) -> _Buffers:
        if node.outer:
            raise CodegenError(
                "outer unnest is served by the batch-native unnest of the "
                "vectorized tiers"
            )
        buffers = self._visit(node.child, ctx)
        source = self._binding_sources.get(node.binding)
        if source is None:
            raise CodegenError(
                f"unnest over binding {node.binding!r} which is not backed by a scan"
            )
        dataset, plugin = source
        if plugin.format_name == "cache":
            # Nested collections always come from the raw source; caches only
            # hold converted primitive columns.
            plugin = self.plugins.get(dataset.format, plugin)
        self._binding_sources[node.var] = (dataset, plugin)
        parent_oid_var = buffers.oids.get(node.binding)
        if parent_oid_var is None:
            raise CodegenError(f"no OID buffer for binding {node.binding!r}")
        ctx.comment(node.describe())
        dataset_var = ctx.register_constant(f"ds_{dataset.name}", dataset)
        plugin_var = ctx.register_constant(f"plugin_{plugin.format_name}", plugin)
        full_scan = isinstance(node.child, PhysScan)
        unnest_var = ctx.fresh("unnest")
        element_paths = ", ".join(repr(tuple(path)) for path in node.element_paths)
        ctx.emit(
            f"{unnest_var} = rt.unnest({plugin_var}, {dataset_var}, "
            f"{tuple(node.path)!r}, ({element_paths}{',' if node.element_paths else ''}), "
            f"{parent_oid_var}, full_scan={full_scan})"
        )
        positions_var = ctx.fresh("parent_pos")
        ctx.emit(f"{positions_var} = {unnest_var}.parent_positions")
        flattened = _Buffers()
        for key, variable in buffers.columns.items():
            new_var = ctx.fresh("un")
            ctx.emit(f"{new_var} = {variable}[{positions_var}]")
            flattened.columns[key] = new_var
        for binding, variable in buffers.oids.items():
            new_var = ctx.fresh("un_oid")
            ctx.emit(f"{new_var} = {variable}[{positions_var}]")
            flattened.oids[binding] = new_var
        for path in node.element_paths:
            column_var = ctx.fresh("elem_" + ("_".join(path) if path else "value"))
            ctx.emit(f"{column_var} = {unnest_var}.column({tuple(path)!r})")
            flattened.columns[(node.var, tuple(path))] = column_var
        count_var = ctx.fresh("count")
        ctx.emit(f"{count_var} = {unnest_var}.count")
        flattened.count_var = count_var
        if node.predicate is not None:
            return self._apply_filter(node.predicate, flattened, ctx)
        return flattened

    def _visit_hash_join(self, node: PhysHashJoin, ctx: CodegenContext) -> _Buffers:
        left = self._visit(node.left, ctx)
        right = self._visit(node.right, ctx)
        ctx.comment(node.describe())
        left_key_var = ctx.fresh("build_key")
        right_key_var = ctx.fresh("probe_key")
        ctx.emit(f"{left_key_var} = {generate_expression(node.left_key, left.columns)}")
        ctx.emit(f"{right_key_var} = {generate_expression(node.right_key, right.columns)}")
        build_dataset, build_format = self._side_source(node.left)
        cache_key = (node.left.fingerprint(), node.left_key.fingerprint())
        cache_key_var = ctx.register_constant("join_key", cache_key)
        # The fingerprints above abstract parameter values; the runtime folds
        # the bound values of these keys back into the cache key so builds
        # with different constants never share a cached table.
        build_params: dict = {}
        for key in parameters_of(node.left):
            build_params.setdefault(key)
        for parameter in iter_parameters(node.left_key):
            build_params.setdefault(parameter.key)
        left_idx = ctx.fresh("left_idx")
        right_idx = ctx.fresh("right_idx")
        ctx.emit(
            f"{left_idx}, {right_idx} = rt.radix_join({left_key_var}, {right_key_var}, "
            f"build_cache_key={cache_key_var}, source_format={build_format!r}, "
            f"dataset={build_dataset!r}, param_keys={tuple(build_params)!r})"
        )
        joined = _Buffers()
        for key, variable in left.columns.items():
            new_var = ctx.fresh("jl")
            ctx.emit(f"{new_var} = {variable}[{left_idx}]")
            joined.columns[key] = new_var
        for binding, variable in left.oids.items():
            new_var = ctx.fresh("jl_oid")
            ctx.emit(f"{new_var} = {variable}[{left_idx}]")
            joined.oids[binding] = new_var
        for key, variable in right.columns.items():
            new_var = ctx.fresh("jr")
            ctx.emit(f"{new_var} = {variable}[{right_idx}]")
            joined.columns[key] = new_var
        for binding, variable in right.oids.items():
            new_var = ctx.fresh("jr_oid")
            ctx.emit(f"{new_var} = {variable}[{right_idx}]")
            joined.oids[binding] = new_var
        count_var = ctx.fresh("count")
        ctx.emit(f"{count_var} = len({left_idx})")
        joined.count_var = count_var
        if node.residual is not None:
            return self._apply_filter(node.residual, joined, ctx)
        return joined

    def _visit_nested_loop(self, node: PhysNestedLoopJoin, ctx: CodegenContext) -> _Buffers:
        left = self._visit(node.left, ctx)
        right = self._visit(node.right, ctx)
        ctx.comment(node.describe())
        left_idx = ctx.fresh("nl_left")
        right_idx = ctx.fresh("nl_right")
        ctx.emit(
            f"{left_idx}, {right_idx} = rt.cross_product({left.count_var}, {right.count_var})"
        )
        joined = _Buffers()
        for key, variable in left.columns.items():
            new_var = ctx.fresh("nl")
            ctx.emit(f"{new_var} = {variable}[{left_idx}]")
            joined.columns[key] = new_var
        for binding, variable in left.oids.items():
            new_var = ctx.fresh("nl_oid")
            ctx.emit(f"{new_var} = {variable}[{left_idx}]")
            joined.oids[binding] = new_var
        for key, variable in right.columns.items():
            new_var = ctx.fresh("nl")
            ctx.emit(f"{new_var} = {variable}[{right_idx}]")
            joined.columns[key] = new_var
        for binding, variable in right.oids.items():
            new_var = ctx.fresh("nl_oid")
            ctx.emit(f"{new_var} = {variable}[{right_idx}]")
            joined.oids[binding] = new_var
        count_var = ctx.fresh("count")
        ctx.emit(f"{count_var} = len({left_idx})")
        joined.count_var = count_var
        if node.predicate is not None:
            return self._apply_filter(node.predicate, joined, ctx)
        return joined

    def _side_source(self, side: PhysicalPlan) -> tuple[str, str]:
        """(dataset, source format) of a join side, for cache bookkeeping."""
        for node in side.walk():
            if isinstance(node, PhysScan):
                dataset = self.catalog.get(node.dataset)
                return node.dataset, dataset.format
        return "", "binary_column"

    # -- roots -----------------------------------------------------------------------

    def _emit_reduce(self, node: PhysReduce, buffers: _Buffers, ctx: CodegenContext) -> None:
        ctx.comment(node.describe())
        aggregated = any(contains_aggregate(column.expression) for column in node.columns)
        if not aggregated:
            assignments = []
            for column in node.columns:
                source = generate_expression(column.expression, buffers.columns)
                variable = ctx.fresh("out_" + column.name)
                # rt.column broadcasts constant-only heads (0-d results) to
                # the row count so literal projections keep their cardinality.
                ctx.emit(f"{variable} = rt.column({source}, {buffers.count_var})")
                assignments.append((column.name, variable))
            ctx.emit(f"rt.record_output({buffers.count_var})")
            self._emit_return(assignments, ctx)
            return
        aggregate_vars = self._emit_aggregates(node.columns, buffers, ctx, grouped=False)
        assignments = []
        for column in node.columns:
            final = replace_aggregates(column.expression, aggregate_vars)
            source = generate_expression(final, self._aggregate_buffers(aggregate_vars))
            variable = ctx.fresh("out_" + column.name)
            ctx.emit(f"{variable} = {source}")
            assignments.append((column.name, variable))
        ctx.emit("rt.record_output(1)")
        self._emit_return(assignments, ctx)

    def _emit_nest(self, node: PhysNest, buffers: _Buffers, ctx: CodegenContext) -> None:
        ctx.comment(node.describe())
        key_vars = []
        for index, expression in enumerate(node.group_by):
            source = generate_expression(expression, buffers.columns)
            variable = ctx.fresh(f"group_key_{index}")
            ctx.emit(f"{variable} = np.asarray({source})")
            key_vars.append(variable)
        grouping_var = ctx.fresh("grouping")
        ctx.emit(f"{grouping_var} = rt.radix_group([{', '.join(key_vars)}])")
        gid_var = ctx.fresh("group_ids")
        ngroups_var = ctx.fresh("num_groups")
        ctx.emit(f"{gid_var} = {grouping_var}.group_ids")
        ctx.emit(f"{ngroups_var} = {grouping_var}.num_groups")
        aggregate_vars = self._emit_aggregates(
            node.columns, buffers, ctx, grouped=True, gid_var=gid_var, ngroups_var=ngroups_var
        )
        group_key_fingerprints = {
            expression.fingerprint(): index for index, expression in enumerate(node.group_by)
        }
        assignments = []
        for column in node.columns:
            fingerprint = column.expression.fingerprint()
            if fingerprint in group_key_fingerprints:
                index = group_key_fingerprints[fingerprint]
                variable = ctx.fresh("out_" + column.name)
                ctx.emit(f"{variable} = {grouping_var}.key_arrays[{index}]")
                assignments.append((column.name, variable))
                continue
            if not contains_aggregate(column.expression):
                raise CodegenError(
                    f"group-by output column {column.name!r} is neither a group key "
                    "nor an aggregate"
                )
            final = replace_aggregates(column.expression, aggregate_vars)
            source = generate_expression(final, self._aggregate_buffers(aggregate_vars))
            variable = ctx.fresh("out_" + column.name)
            ctx.emit(f"{variable} = {source}")
            assignments.append((column.name, variable))
        ctx.emit(f"rt.record_output({ngroups_var})")
        self._emit_return(assignments, ctx)

    # -- aggregate helpers ----------------------------------------------------------------

    def _emit_aggregates(
        self,
        columns,
        buffers: _Buffers,
        ctx: CodegenContext,
        grouped: bool,
        gid_var: str = "",
        ngroups_var: str = "",
    ) -> dict[tuple, Expression]:
        """Emit code computing every distinct aggregate; return the mapping
        from aggregate fingerprint to the expression referencing its result."""
        results: dict[tuple, Expression] = {}
        emitted: dict[tuple, str] = {}
        for column in columns:
            for aggregate in iter_aggregates(column.expression):
                fingerprint = aggregate.fingerprint()
                if fingerprint in emitted:
                    continue
                variable = ctx.fresh(f"agg_{aggregate.func}")
                argument_source = None
                if aggregate.argument is not None:
                    argument_source = generate_expression(aggregate.argument, buffers.columns)
                if grouped:
                    if aggregate.func == "count" and aggregate.argument is None:
                        ctx.emit(
                            f"{variable} = rt.group_agg('count', {gid_var}, {ngroups_var})"
                        )
                    else:
                        ctx.emit(
                            f"{variable} = rt.group_agg({aggregate.func!r}, {gid_var}, "
                            f"{ngroups_var}, np.asarray({argument_source}))"
                        )
                else:
                    if aggregate.func == "count" and aggregate.argument is None:
                        ctx.emit(f"{variable} = rt.scalar_agg('count', None, {buffers.count_var})")
                    else:
                        ctx.emit(
                            f"{variable} = rt.scalar_agg({aggregate.func!r}, "
                            f"np.asarray({argument_source}), {buffers.count_var})"
                        )
                emitted[fingerprint] = variable
                results[fingerprint] = FieldRef(_AGG_BINDING, (variable,))
        return results

    @staticmethod
    def _aggregate_buffers(
        aggregate_vars: Mapping[tuple, Expression]
    ) -> dict[tuple[str, tuple[str, ...]], str]:
        buffers: dict[tuple[str, tuple[str, ...]], str] = {}
        for expression in aggregate_vars.values():
            assert isinstance(expression, FieldRef)
            buffers[(expression.binding, expression.path)] = expression.path[0]
        return buffers

    @staticmethod
    def _emit_return(assignments: list[tuple[str, str]], ctx: CodegenContext) -> None:
        entries = ", ".join(f"{name!r}: {variable}" for name, variable in assignments)
        ctx.emit(f"return {{{entries}}}")
