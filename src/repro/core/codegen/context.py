"""Code-generation context.

The context accumulates the source lines of the specialized query program and
the table of constants (plug-in instances, dataset descriptors) the program
references.  It is the Python analogue of the paper's LLVM IR builder: each
operator and plug-in appends code to it during the single post-order traversal
of the physical plan, and the result is compiled into one function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class CodegenContext:
    """Accumulates generated source and registered constants."""

    lines: list[str] = field(default_factory=list)
    constants: dict[str, Any] = field(default_factory=dict)
    indent: int = 1
    _counter: int = 0
    _constant_ids: dict[int, str] = field(default_factory=dict)

    # -- source accumulation -----------------------------------------------------

    def emit(self, line: str) -> None:
        """Append one line of code at the current indentation."""
        self.lines.append("    " * self.indent + line)

    def emit_blank(self) -> None:
        self.lines.append("")

    def comment(self, text: str) -> None:
        self.emit(f"# {text}")

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        if self.indent <= 1:
            raise ValueError("cannot dedent past the function body")
        self.indent -= 1

    # -- names --------------------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        """Return a fresh variable name with the given prefix."""
        self._counter += 1
        sanitized = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in prefix)
        return f"{sanitized}_{self._counter}"

    def register_constant(self, prefix: str, value: Any) -> str:
        """Register a Python object the generated code needs and return the
        global name under which it will be visible."""
        identity = id(value)
        if identity in self._constant_ids:
            return self._constant_ids[identity]
        name = self.fresh("__" + prefix)
        self.constants[name] = value
        self._constant_ids[identity] = name
        return name

    # -- assembly -------------------------------------------------------------------

    def source(self, function_name: str = "__query__") -> str:
        """Assemble the final function source."""
        header = [f"def {function_name}(rt):"]
        body = self.lines if self.lines else ["    pass"]
        return "\n".join(header + body) + "\n"
