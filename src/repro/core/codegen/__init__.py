"""Per-query code generation: the engine-per-query mechanism of the paper."""

from repro.core.codegen.compiler import GeneratedQuery, compile_query
from repro.core.codegen.generator import CodeGenerator
from repro.core.codegen.runtime import QueryRuntime

__all__ = ["CodeGenerator", "GeneratedQuery", "QueryRuntime", "compile_query"]
