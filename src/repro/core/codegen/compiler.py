"""Compilation of generated query programs.

The paper compiles the stitched-together LLVM IR of a query into machine code
within milliseconds and calls the resulting library.  The reproduction
compiles the generated Python source with :func:`compile` and executes it into
a namespace containing NumPy and the constants (plug-in instances, dataset
descriptors, cache keys) registered during generation.  Compiled queries are
cached by plan fingerprint by the engine, mirroring query-plan caching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.codegen.context import CodegenContext
from repro.errors import CodegenError

FUNCTION_NAME = "__query__"


@dataclass
class GeneratedQuery:
    """The specialized program generated for one query."""

    source: str
    function: Callable[..., dict[str, Any]]
    constants: dict[str, Any]
    compile_seconds: float

    def __call__(self, runtime) -> dict[str, Any]:
        return self.function(runtime)


def compile_query(ctx: CodegenContext) -> GeneratedQuery:
    """Compile the accumulated source of a codegen context."""
    source = ctx.source(FUNCTION_NAME)
    started = time.perf_counter()
    try:
        code = compile(source, "<proteus-generated-query>", "exec")
    except SyntaxError as exc:  # pragma: no cover - indicates a generator bug
        raise CodegenError(f"generated code does not compile: {exc}\n{source}") from exc
    namespace: dict[str, Any] = {"np": np}
    namespace.update(ctx.constants)
    exec(code, namespace)
    function = namespace[FUNCTION_NAME]
    return GeneratedQuery(
        source=source,
        function=function,
        constants=dict(ctx.constants),
        compile_seconds=time.perf_counter() - started,
    )
