"""Work-stealing scheduler for the parallel vectorized tier.

The executor enqueues its work items (morsels, build-side morsels, radix
partitions) into a :class:`WorkStealingQueue`: every worker owns a deque that
is preloaded with a contiguous block of items (sequential ranges keep scans
cache- and readahead-friendly), consumes it front-to-back, and — once its own
deque runs dry — steals from the *back* of the most loaded peer.  Stealing is
what keeps all cores busy when selectivity skew makes some morsels far
cheaper than others.

:class:`WorkerPool` wraps the queue with a thread-per-worker execution model.
Threads (rather than processes) are the right fit here: the heavy lifting —
NumPy slicing, predicate kernels, radix partition sorts — releases the GIL,
and threads share the memory-mapped inputs, the structural indexes and the
materialized join build sides without any serialization.  Results are
returned **in submission order**, which is what makes parallel execution
deterministic: downstream merges see morsel results exactly as the serial
executor would have produced them, regardless of which worker ran what.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Sequence

from repro.core.concurrency import make_lock
from repro.resilience.context import activate_context


class WorkStealingQueue:
    """Per-worker deques with block preloading and back-stealing."""

    def __init__(self, items: Sequence[Any], num_workers: int):
        if num_workers < 1:
            raise ValueError("the queue needs at least one worker")
        self._deques: list[deque] = [deque() for _ in range(num_workers)]
        self._lock = make_lock("WorkStealingQueue._lock")
        self.dispatched = 0
        self.stolen = 0
        # Block distribution: worker w gets the w-th contiguous slice, so a
        # worker's own queue walks the input sequentially.
        total = len(items)
        block = -(-total // num_workers) if total else 0  # ceil
        for worker_id in range(num_workers):
            for position, item in enumerate(
                items[worker_id * block : (worker_id + 1) * block]
            ):
                self._deques[worker_id].append(
                    (worker_id * block + position, item)
                )

    def next_task(self, worker_id: int) -> tuple[int, Any] | None:
        """Pop the next (index, item) for ``worker_id``; ``None`` when every
        deque is empty.  Own work comes from the front; steals come from the
        back of the most loaded victim."""
        with self._lock:
            own = self._deques[worker_id]
            if own:
                self.dispatched += 1
                return own.popleft()
            victim = max(
                (q for q in self._deques if q), key=len, default=None
            )
            if victim is None:
                return None
            self.dispatched += 1
            self.stolen += 1
            return victim.pop()

    @property
    def remaining(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._deques)


class WorkerPool:
    """Execute a task function over items with work-stealing worker threads.

    ``run`` returns results **in item order** (the order-preserving collector
    of the parallel tier); the first exception raised by any worker cancels
    the remaining work and is re-raised on the calling thread, so executor
    fallbacks (:class:`VectorizationError`) propagate exactly as they do on
    the serial tiers.  When several workers fail concurrently the first
    exception is the one raised, with the complete list attached as its
    ``errors`` attribute so no failure vanishes.

    A :class:`~repro.resilience.context.QueryContext` passed to ``run`` is
    observed alongside the error-cancel event: workers stop pulling tasks
    once the deadline/token fires, every thread is still joined, and the
    coded timeout/cancel error is raised on the calling thread after the
    pool has drained cleanly.
    """

    def __init__(self, num_workers: int):
        self.num_workers = max(int(num_workers), 1)
        #: Stealing count of the most recent :meth:`run` (for profiling).
        self.last_stolen = 0

    def run(
        self,
        items: Sequence[Any],
        task: Callable[[Any, int], Any],
        context: Any = None,
    ) -> list[Any]:
        items = list(items)
        self.last_stolen = 0
        if not items:
            return []
        workers = min(self.num_workers, len(items))
        if workers <= 1:
            serial: list[Any] = []
            for item in items:
                if context is not None:
                    context.check()
                serial.append(task(item, 0))
            return serial
        queue = WorkStealingQueue(items, workers)
        results: list[Any] = [None] * len(items)
        errors: list[BaseException] = []
        cancel = threading.Event()

        def work(worker_id: int) -> None:
            # Re-publish the query context on this worker thread so plugin
            # I/O (retry budget) and nested checks can find it.
            with activate_context(context):
                while not cancel.is_set():
                    if context is not None and context.should_stop():
                        return
                    entry = queue.next_task(worker_id)
                    if entry is None:
                        return
                    index, item = entry
                    try:
                        results[index] = task(item, worker_id)
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        errors.append(exc)  # list.append is atomic
                        cancel.set()
                        return

        threads = [
            threading.Thread(
                target=work, args=(worker_id,), name=f"proteus-worker-{worker_id}",
                daemon=True,
            )
            for worker_id in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self.last_stolen = queue.stolen
        if errors:
            primary = errors[0]
            # Concurrent failures from other workers must not vanish: attach
            # the full list (primary included) to the exception we raise.
            primary.errors = list(errors)  # type: ignore[attr-defined]
            raise primary
        if context is not None:
            # Workers drained early because the deadline/token fired while
            # no task was raising; surface the coded error here.
            context.check()
        return results
