"""Morsel-driven parallel executor — the parallel vectorized tier.

Executes the same compiled batch pipelines as the serial vectorized executor
(:mod:`repro.core.executor.vectorized`), but across a work-stealing worker
pool:

* the driving scan is split into batch-aligned :class:`Morsel` row ranges
  through the splittable ``InputPlugin.scan_batch_ranges`` API,
* every worker runs the **same** immutable pipeline object over whichever
  morsels it obtains from the shared work-stealing queue — batch-native
  unnest stages included: each worker flattens its own morsels' nested
  collections through the plug-in's offset-vector ``scan_unnest_batch``
  (inner and outer), and the morsel-ordered merge keeps the flattened row
  order identical to the serial tier's,
* join build sides are themselves materialized morsel-parallel, and their
  radix tables are built partition-parallel (each of the ``2^bits``
  partitions is sort-clustered by a worker),
* the plan root merges *partial* per-morsel states: partial aggregation with
  a final merge for Reduce, partial radix grouping with a second-level
  grouped merge for Nest, and plain morsel-ordered concatenation for
  projections.

Determinism: every merge consumes partial results in **morsel index order**
(the pool's order-preserving collector), never in completion or worker
order — repeated runs return identical rows, and for integer data the rows
are bit-identical to the serial tier's.  (Floating-point sums may differ from
the serial tier in the last ulp because addition is reassociated across
morsels; they remain deterministic run-to-run.)

Whatever this tier cannot serve — an unsplittable driving scan (e.g. the
binary row format's per-tuple shim), a single-morsel input, or any shape the
vectorized model rejects — raises :class:`VectorizationError`, and the engine
transparently falls back to the serial vectorized tier (and from there to
Volcano).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.aggregate_utils import (
    literal_results,
    replace_aggregates,
    unique_output_columns,
)
from repro.core.analysis.model import EMPTY_HINTS, NullabilityHints
from repro.core.executor import radix
from repro.core.executor.vectorized import (
    Batch,
    CompiledPipeline,
    DEFAULT_BATCH_SIZE,
    PipelineCompiler,
    PipelineCounters,
    _BatchAggregates,
    collect_nest_aggregates,
    concat_batches,
    evaluate_batch,
    finish_nest_columns,
    materialize,
    serial_materialize,
)
from repro.caching.matching import field_cache_key
from repro.core.parallel.morsels import Morsel, plan_morsels
from repro.core.parallel.scheduler import WorkerPool
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysSort,
    PhysUnnest,
    PhysicalPlan,
)
from repro.core.sort import (
    STRATEGY_PARALLEL_MERGE,
    TopKAccumulator,
    concat_chunks,
    merge_encodable,
    merge_sorted_runs,
    resolve_limit,
    sort_columns,
)
from repro.core.types import python_value as _python_value
from repro.core.expressions import contains_aggregate, parameter_env
from repro.errors import ExecutionError, VectorizationError
from repro.obs.trace import TraceBuilder
from repro.plugins.base import InputPlugin
from repro.storage.catalog import Catalog

#: Below this many build-side keys a partition-parallel table build costs
#: more in scheduling than it saves in sorting.
MIN_PARALLEL_BUILD_KEYS = 8192


def precheck_driving_scan(
    plan: PhysicalPlan,
    catalog: Catalog,
    plugins: Mapping[str, InputPlugin],
    cache_manager,
    batch_size: int,
    num_workers: int,
    morsel_rows: int | None = None,
) -> None:
    """Cheaply reject plans whose driving scan cannot fan out.

    Walks to the pipeline's streaming leaf exactly as the compiler will
    (selects/unnests stream their child, joins stream their probe side) and
    checks splittability and morsel count without compiling — i.e. without
    materializing any join build side.  Cache availability is probed with
    ``peek`` so hit statistics are not disturbed.  Raises
    :class:`VectorizationError` with the decline reason; also consulted by
    ``ProteusEngine.explain`` for its tier-cascade report.
    """
    node = plan
    while not isinstance(node, PhysScan):
        if isinstance(node, (PhysSelect, PhysUnnest)):
            node = node.child
        elif isinstance(node, (PhysHashJoin, PhysNestedLoopJoin)):
            node = node.right
        else:
            # An operator the compiler itself will reject; let compile
            # raise its own, more precise error.
            return
    dataset = catalog.get(node.dataset)
    plugin = plugins.get(dataset.format)
    if plugin is None:
        return  # compile raises ExecutionError with the right message
    total_rows: int | None = None
    if cache_manager is not None and plugin.format_name != "cache" and node.paths:
        cached_lengths = []
        for path in node.paths:
            entry = cache_manager.peek(field_cache_key(dataset.name, tuple(path)))
            if entry is None:
                cached_lengths = None
                break
            cached_lengths.append(len(entry.data))
        if cached_lengths:
            total_rows = cached_lengths[0]
    if total_rows is None:
        if not plugin.supports_scan_ranges:
            raise VectorizationError(
                f"scan of {dataset.name!r} ({plugin.format_name}) is not "
                "range-splittable; served by the serial vectorized tier"
            )
        total_rows = plugin.scan_row_count(dataset)
        if total_rows is None:
            raise VectorizationError(
                f"row count of {dataset.name!r} is unknown; served by the "
                "serial vectorized tier"
            )
    morsels = plan_morsels(total_rows, batch_size, num_workers, morsel_rows)
    if len(morsels) <= 1:
        raise VectorizationError(
            "input fits a single morsel; served by the serial vectorized tier"
        )


class ParallelVectorizedExecutor:
    """Morsel-driven parallel interpreter over physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        batch_size: int = DEFAULT_BATCH_SIZE,
        num_workers: int = 2,
        cache_manager=None,
        morsel_rows: int | None = None,
        params: Mapping[int | str, object] | None = None,
        hints: NullabilityHints | None = None,
        trace: TraceBuilder | None = None,
        context=None,
    ):
        self.catalog = catalog
        self.plugins = plugins
        self.batch_size = max(int(batch_size), 1)
        self.num_workers = max(int(num_workers), 1)
        self.cache_manager = cache_manager
        self.morsel_rows = morsel_rows
        self.params = params
        #: Per-query resilience context: checked per batch inside pipelines
        #: and per morsel by the workers; the pool observes its token next to
        #: the error-cancel event so teardown drains cleanly.
        self.context = context
        #: Span trace of this execution (``None`` = untraced).  The compiled
        #: pipeline's traced stages are shared by every worker; their span
        #: accumulators are locked, so per-morsel work aggregates into one
        #: morsel-merged span per operator.
        self.trace = trace
        #: Static nullability hints from the plan analyzer (see the serial
        #: executor): skip missing-mask work where provably unnecessary.
        self.hints = hints if hints is not None else EMPTY_HINTS
        #: Counters mirrored into the engine's :class:`ExecutionProfile`.
        self.counters = PipelineCounters()
        self.morsels_dispatched = 0
        self.morsels_stolen = 0
        #: Sort kernel this executor ran for a root ``PhysSort`` (``None``
        #: when the engine's columnar epilogue handles the sort — grouped and
        #: aggregated outputs are small enough to sort once merged).
        self.sort_strategy: str | None = None
        self._pool = WorkerPool(self.num_workers)

    # -- public API ----------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> tuple[list[str], dict[str, Any]]:
        """Execute a plan; returns (column names, column values)."""
        sort_plan: PhysSort | None = None
        if isinstance(plan, PhysSort):
            sort_plan = plan
            plan = plan.child
        if isinstance(plan, PhysReduce):
            root = _make_reduce_root(plan, self.params, self.hints)
        elif isinstance(plan, PhysNest):
            root = _NestRoot(plan, self.params)
        else:
            raise ExecutionError(
                f"the plan root must be Reduce or Nest, got {plan.describe()}"
            )
        if sort_plan is not None and isinstance(root, _ProjectionRoot):
            # Per-morsel sort + k-way merge: each worker sorts (and, under a
            # LIMIT, bounds) its own morsel's output, the root merges the
            # sorted runs in morsel order — no serial final sort.  Multi-key
            # runs are statically unmergeable (the root would re-sort the
            # concatenation), so without a LIMIT to bound the morsel outputs
            # the per-morsel sorts would be wasted work; those shapes stay
            # on the plain projection root and the engine's one-shot
            # epilogue.  Pure LIMIT — and LIMIT 0, which produces nothing —
            # instead bound each morsel's emitted prefix on the plain root.
            limit = resolve_limit(sort_plan.limit, self.params)
            if sort_plan.keys and limit != 0 and (
                len(sort_plan.keys) == 1 or limit is not None
            ):
                root = _SortedProjectionRoot(
                    root, sort_plan.keys, limit, self.hints.non_null_columns
                )
            elif not sort_plan.keys or limit == 0:
                root.limit = limit
        # Refuse unsplittable / single-morsel driving scans *before*
        # compiling: compilation materializes join build sides, and that work
        # would be thrown away and redone by the serial fallback tier.
        self._precheck_driving_scan(plan.child)
        compiler = PipelineCompiler(
            self.catalog,
            self.plugins,
            self.batch_size,
            cache_manager=self.cache_manager,
            counters=self.counters,
            materializer=self._materialize,
            table_builder=self._build_table,
            params=self.params,
            trace=self.trace,
            context=self.context,
        )
        pipeline = compiler.compile(plan.child)
        names, columns = self._run_root(root, pipeline)
        self.sort_strategy = getattr(root, "sort_strategy", None)
        prefix_limit = getattr(root, "limit", None)
        if prefix_limit is not None:
            # The engine slices the exact prefix after the merge; report the
            # emitted row count the way the serial tier does.
            self.counters.output_rows = min(self.counters.output_rows, prefix_limit)
        compiler.store_scan_caches()
        return names, columns

    # -- morsel execution ------------------------------------------------------

    def _run_root(self, root: "_RootTask", pipeline: CompiledPipeline):
        if pipeline.always_empty:
            return root.merge([], self.counters)
        morsels = self._plan_scan_morsels(pipeline)

        def run_morsel(morsel: Morsel, worker_id: int):
            if self.context is not None:
                self.context.check()
            counters = PipelineCounters()
            state = root.new_state()
            for batch in pipeline.source.iter_range(
                morsel.start, morsel.stop, counters, self.batch_size
            ):
                out = pipeline.process(batch, counters)
                if out is not None:
                    root.update(state, out, counters)
                    if root.saturated(state):
                        # The morsel's contribution is complete (e.g. a pure
                        # LIMIT prefix); stop scanning its remaining rows.
                        break
            if self.context is not None:
                self.context.count("morsels")
            return root.finish_morsel(state, counters), counters

        results = self._pool.run(morsels, run_morsel, context=self.context)
        self.morsels_dispatched += len(morsels)
        self.morsels_stolen += self._pool.last_stolen
        for _, counters in results:
            self.counters.merge(counters)
        return root.merge([partial for partial, _ in results], self.counters)

    def _precheck_driving_scan(self, plan: PhysicalPlan) -> None:
        precheck_driving_scan(
            plan,
            self.catalog,
            self.plugins,
            self.cache_manager,
            self.batch_size,
            self.num_workers,
            self.morsel_rows,
        )

    def _plan_scan_morsels(self, pipeline: CompiledPipeline) -> list[Morsel]:
        source = pipeline.source
        if not source.splittable:
            raise VectorizationError(
                f"scan of {source.dataset.name!r} ({source.plugin.format_name}) "
                "is not range-splittable; served by the serial vectorized tier"
            )
        morsels = plan_morsels(
            source.total_rows, self.batch_size, self.num_workers, self.morsel_rows
        )
        if len(morsels) <= 1:
            raise VectorizationError(
                "input fits a single morsel; served by the serial vectorized tier"
            )
        return morsels

    # -- parallel build-side hooks ---------------------------------------------

    def _materialize(
        self, pipeline: CompiledPipeline, compiler: PipelineCompiler
    ) -> Batch:
        """Materialize a join build side, morsel-parallel when splittable.

        Results are concatenated in morsel order, so the materialized batch
        (and therefore every radix-table position in it) is identical to the
        serially-built one.
        """
        if pipeline.always_empty:
            return Batch(count=0)
        source = pipeline.source
        if not source.splittable:
            return serial_materialize(pipeline, compiler)
        morsels = plan_morsels(
            source.total_rows, self.batch_size, self.num_workers, self.morsel_rows
        )
        if len(morsels) <= 1:
            return serial_materialize(pipeline, compiler)

        def run_morsel(morsel: Morsel, worker_id: int):
            if self.context is not None:
                self.context.check()
            counters = PipelineCounters()
            collected: list[Batch] = []
            for batch in source.iter_range(
                morsel.start, morsel.stop, counters, self.batch_size
            ):
                out = pipeline.process(batch, counters)
                if out is not None:
                    collected.append(out)
            if self.context is not None:
                self.context.count("morsels")
            return collected, counters

        results = self._pool.run(morsels, run_morsel, context=self.context)
        self.morsels_dispatched += len(morsels)
        self.morsels_stolen += self._pool.last_stolen
        for _, counters in results:
            self.counters.merge(counters)
        return concat_batches(
            [batch for batches, _ in results for batch in batches]
        )

    def _build_table(self, keys: np.ndarray) -> radix.RadixTable:
        """Partitioned radix-table build: the hash partitioning runs once,
        then the per-partition sort-clustering fans out across the workers.
        The resulting table is identical to a serial build."""
        keys = np.asarray(keys)
        if len(keys) < MIN_PARALLEL_BUILD_KEYS:
            return radix.build_radix_table(keys)
        radix.reject_missing_keys(keys, "join")
        num_partitions = 1 << radix.DEFAULT_RADIX_BITS
        assignment = radix.partition_assignment(keys, num_partitions)
        position_lists = [
            np.nonzero(assignment == partition_id)[0]
            for partition_id in range(num_partitions)
        ]
        partitions = self._pool.run(
            position_lists,
            lambda positions, worker_id: radix.cluster_partition(keys, positions),
            context=self.context,
        )
        return radix.RadixTable(
            partitions=partitions,
            num_partitions=num_partitions,
            build_size=len(keys),
        )


# ---------------------------------------------------------------------------
# Root tasks: per-morsel partial states and their ordered merges
# ---------------------------------------------------------------------------


class _RootTask:
    """Protocol of a plan root under morsel execution.

    ``new_state``/``update``/``finish_morsel`` run inside workers over one
    morsel each; ``merge`` runs on the main thread and consumes the partial
    results in morsel order.
    """

    def new_state(self) -> Any:
        raise NotImplementedError

    def update(self, state: Any, batch: Batch, counters: PipelineCounters) -> None:
        raise NotImplementedError

    def saturated(self, state: Any) -> bool:
        """Whether this morsel's contribution is complete — further batches
        cannot change it, so the worker may stop scanning the morsel."""
        return False

    def finish_morsel(self, state: Any, counters: PipelineCounters) -> Any:
        return state

    def merge(
        self, partials: list, counters: PipelineCounters
    ) -> tuple[list[str], dict[str, Any]]:
        raise NotImplementedError


def _make_reduce_root(
    plan: PhysReduce,
    params: Mapping[int | str, object] | None = None,
    hints: NullabilityHints = EMPTY_HINTS,
) -> "_RootTask":
    aggregated = any(
        contains_aggregate(column.expression) for column in plan.columns
    )
    if aggregated:
        return _GlobalAggregateRoot(plan, params, hints)
    return _ProjectionRoot(plan)


class _ProjectionRoot(_RootTask):
    """Reduce without aggregates: per-morsel column chunks, concatenated in
    morsel order (bit-identical to the serial tier).

    ``limit`` (set by the executor for pure-LIMIT queries and for
    ``ORDER BY ... LIMIT 0``) truncates each morsel's output to its first
    ``limit`` rows: any morsel-order prefix of the result only needs a
    prefix of every morsel, so the root never materializes more than
    ``morsels x limit`` rows while the engine slices the exact prefix.
    """

    def __init__(self, plan: PhysReduce):
        self.plan = plan
        self.names = [column.name for column in plan.columns]
        self.unique_columns = unique_output_columns(plan.columns)
        self.limit: int | None = None

    def new_state(self) -> dict:
        return {"chunks": {name: [] for name in self.names}, "total": 0}

    def update(self, state: dict, batch: Batch, counters: PipelineCounters) -> None:
        for column in self.unique_columns:
            state["chunks"][column.name].append(
                materialize(evaluate_batch(column.expression, batch), batch.count)
            )
        state["total"] += batch.count

    def saturated(self, state: dict) -> bool:
        # LIMIT 0 still takes one batch, so the truncated empty buffers
        # keep their dtypes.
        return self.limit is not None and state["total"] >= max(self.limit, 1)

    def finish_morsel(self, state: dict, counters: PipelineCounters) -> dict:
        if self.limit is not None and state["total"] > self.limit:
            truncated = {
                name: [concat_chunks(state["chunks"][name])[: self.limit]]
                for name in self.names
            }
            state = {"chunks": truncated, "total": self.limit}
        counters.output_rows += state["total"]
        return state

    def merge(self, partials: list, counters: PipelineCounters):
        columns: dict[str, Any] = {}
        for name in self.names:
            parts = [
                chunk
                for partial in partials
                for chunk in partial["chunks"][name]
            ]
            columns[name] = concat_chunks(parts)
        return self.names, columns


class _SortedProjectionRoot(_RootTask):
    """Projection under ORDER BY (and optionally LIMIT): per-morsel sorted
    runs, merged deterministically at the root.

    Every worker sorts its own morsel's output with the columnar kernels
    (and truncates it to the top K when a LIMIT applies — at most K rows per
    morsel ever reach the root), then the root runs the k-way merge of
    :func:`repro.core.sort.merge_sorted_runs`.  Ties across runs resolve in
    morsel order, so the output is identical to a stable sort of the
    morsel-ordered concatenation — bit-identical to the serial tier at any
    worker count.
    """

    def __init__(
        self,
        inner: "_ProjectionRoot",
        keys: list[tuple[str, bool]],
        limit: int | None,
        non_null: frozenset[str] = frozenset(),
    ):
        self.inner = inner
        self.names = inner.names
        self.keys = list(keys)
        self.limit = limit
        self.non_null = frozenset(non_null)
        #: The strategy the merge ran ("parallel-merge", or the re-sort
        #: kernel's name for shapes the merge cannot serve).
        self.sort_strategy: str | None = None

    def new_state(self) -> dict:
        if self.limit is not None:
            # Bounded morsel: stream batches through the same top-K
            # accumulator the serial tier uses, so a worker never holds more
            # than the accumulator's candidate budget per morsel.
            return {
                "topk": TopKAccumulator(
                    self.names, self.keys, self.limit, self.non_null
                )
            }
        return self.inner.new_state()

    def update(self, state: dict, batch: Batch, counters: PipelineCounters) -> None:
        accumulator = state.get("topk")
        if accumulator is not None:
            columns = {
                column.name: materialize(
                    evaluate_batch(column.expression, batch), batch.count
                )
                for column in self.inner.unique_columns
            }
            accumulator.push(columns, batch.count)
            return
        self.inner.update(state, batch, counters)

    def finish_morsel(
        self, state: dict, counters: PipelineCounters
    ) -> tuple[int, dict[str, Any]]:
        # output_rows counts the rows the root emits into the result (the
        # serial top-K path reports K, not the scanned total); it is counted
        # once, after the merge.
        accumulator = state.get("topk")
        if accumulator is not None:
            length, columns, _ = accumulator.finish()
            counters.rows_sorted += accumulator.rows_sorted
            return length, columns
        length = state["total"]
        columns = {
            name: concat_chunks(state["chunks"][name]) for name in self.names
        }
        if length == 0:
            return 0, columns
        if not merge_encodable(columns[self.keys[0][0]]):
            # The root cannot k-way-merge runs on this key dtype (string /
            # object factorization codes are run-local) and will re-sort the
            # concatenation anyway; without a LIMIT to bound the run there
            # is nothing for a local sort to save — hand the run over raw.
            return length, columns
        counters.rows_sorted += length
        length, columns, _ = sort_columns(
            self.names, length, columns, self.keys, None, self.non_null
        )
        return length, columns

    def merge(self, partials: list, counters: PipelineCounters):
        runs = [partial for partial in partials if partial is not None]
        merged_rows = sum(length for length, _ in runs)
        length, columns, strategy = merge_sorted_runs(
            self.names, runs, self.keys, self.limit, self.non_null
        )
        if strategy is not None and strategy != STRATEGY_PARALLEL_MERGE:
            # The merge re-sorted the concatenation (multi-key / string
            # keys); account for the root-side sort.
            counters.rows_sorted += merged_rows
        counters.output_rows += length
        self.sort_strategy = strategy
        return self.names, columns


class _GlobalAggregateRoot(_RootTask):
    """Reduce with aggregates: one partial accumulator per morsel, merged in
    morsel order and finalized exactly like the serial tier."""

    def __init__(
        self,
        plan: PhysReduce,
        params: Mapping[int | str, object] | None = None,
        hints: NullabilityHints = EMPTY_HINTS,
    ):
        self.plan = plan
        self.params = params
        self.hints = hints
        self.names = [column.name for column in plan.columns]

    def new_state(self) -> _BatchAggregates:
        return _BatchAggregates(
            self.plan.columns, self.hints.non_null_aggregate_args
        )

    def update(
        self, state: _BatchAggregates, batch: Batch, counters: PipelineCounters
    ) -> None:
        state.update(batch)

    def merge(self, partials: list, counters: PipelineCounters):
        accumulators = _BatchAggregates(self.plan.columns)
        for partial in partials:
            accumulators.merge(partial)
        values = accumulators.finalize()
        counters.output_rows += 1
        finish_env = parameter_env(self.params)
        columns: dict[str, Any] = {}
        for column in self.plan.columns:
            final = replace_aggregates(column.expression, literal_results(values))
            columns[column.name] = [_python_value(final.evaluate(finish_env))]
        return self.names, columns


@dataclass
class _GroupPartial:
    """Partially aggregated groups of one morsel."""

    key_arrays: list[np.ndarray]
    #: fingerprint → partial result column (aligned with ``key_arrays``);
    #: ``avg`` decomposes into its ``{"sum": ..., "count": ...}`` parts.
    aggregates: dict[tuple, Any]


class _NestRoot(_RootTask):
    """Group-by: per-morsel partial radix grouping + partial aggregates, then
    a second-level grouped merge over the union of partial groups.

    The merge functions are the aggregate monoids: partial counts are summed,
    partial sums summed, partial extrema re-reduced, partial booleans
    re-combined, and ``avg`` is carried as (sum, count) and divided once at
    the end.  Group output order is the lexicographic key order
    ``radix_group`` produces, which is the same order the serial tier emits.
    """

    def __init__(
        self, plan: PhysNest, params: Mapping[int | str, object] | None = None
    ):
        self.plan = plan
        self.params = params
        self.names = [column.name for column in plan.columns]
        self.group_key_fingerprints, self.aggregates = collect_nest_aggregates(plan)

    def new_state(self) -> dict:
        return {
            "key_chunks": [[] for _ in self.plan.group_by],
            "argument_chunks": {
                aggregate.fingerprint(): []
                for aggregate in self.aggregates
                if aggregate.argument is not None
            },
            "total": 0,
        }

    def update(self, state: dict, batch: Batch, counters: PipelineCounters) -> None:
        for index, expression in enumerate(self.plan.group_by):
            state["key_chunks"][index].append(
                materialize(evaluate_batch(expression, batch), batch.count)
            )
        for aggregate in self.aggregates:
            if aggregate.argument is None:
                continue
            state["argument_chunks"][aggregate.fingerprint()].append(
                materialize(evaluate_batch(aggregate.argument, batch), batch.count)
            )
        state["total"] += batch.count

    def finish_morsel(
        self, state: dict, counters: PipelineCounters
    ) -> _GroupPartial | None:
        if state["total"] == 0:
            return None  # an empty morsel contributes no partial groups
        key_arrays = [np.concatenate(chunks) for chunks in state["key_chunks"]]
        # radix_group raises VectorizationError for keys containing missing
        # values; the pool re-raises it and the engine falls back.
        grouping = radix.radix_group(key_arrays)
        partial_aggregates: dict[tuple, Any] = {}
        for aggregate in self.aggregates:
            fingerprint = aggregate.fingerprint()
            values = (
                np.concatenate(state["argument_chunks"][fingerprint])
                if aggregate.argument is not None
                else None
            )
            if aggregate.func == "avg":
                partial_aggregates[fingerprint] = {
                    "sum": radix.group_aggregate(
                        "sum", grouping.group_ids, grouping.num_groups, values
                    ),
                    "count": radix.group_aggregate(
                        "count", grouping.group_ids, grouping.num_groups, values
                    ),
                }
            else:
                partial_aggregates[fingerprint] = radix.group_aggregate(
                    aggregate.func, grouping.group_ids, grouping.num_groups, values
                )
        return _GroupPartial(grouping.key_arrays, partial_aggregates)

    #: How a partial aggregate column is re-reduced across morsels.
    _MERGE_FUNCS = {
        "count": "sum",
        "sum": "sum",
        "min": "min",
        "max": "max",
        "and": "and",
        "or": "or",
    }

    def merge(self, partials: list, counters: PipelineCounters):
        partials = [partial for partial in partials if partial is not None]
        if not partials:
            return self.names, {name: [] for name in self.names}
        merged_keys = [
            np.concatenate([partial.key_arrays[index] for partial in partials])
            for index in range(len(self.plan.group_by))
        ]
        grouping = radix.radix_group(merged_keys)
        counters.groups_built += grouping.num_groups
        counters.output_rows += grouping.num_groups
        aggregate_results: dict[tuple, np.ndarray] = {}
        for aggregate in self.aggregates:
            fingerprint = aggregate.fingerprint()
            if aggregate.func == "avg":
                sums = radix.group_aggregate(
                    "sum",
                    grouping.group_ids,
                    grouping.num_groups,
                    np.concatenate(
                        [partial.aggregates[fingerprint]["sum"] for partial in partials]
                    ),
                )
                valid_counts = radix.group_aggregate(
                    "sum",
                    grouping.group_ids,
                    grouping.num_groups,
                    np.concatenate(
                        [partial.aggregates[fingerprint]["count"] for partial in partials]
                    ),
                )
                aggregate_results[fingerprint] = _finish_avg(sums, valid_counts)
                continue
            stacked = np.concatenate(
                [partial.aggregates[fingerprint] for partial in partials]
            )
            aggregate_results[fingerprint] = radix.group_aggregate(
                self._MERGE_FUNCS[aggregate.func],
                grouping.group_ids,
                grouping.num_groups,
                stacked,
            )
        columns = finish_nest_columns(
            self.plan, self.group_key_fingerprints, grouping, aggregate_results,
            params=self.params,
        )
        return self.names, columns


def _finish_avg(sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Combine merged (sum, count) partials into per-group averages, with the
    same empty-group NaN semantics as the grouping kernel."""
    counts = np.asarray(counts)
    if sums.dtype == object:
        return np.asarray(
            [
                total / count if count else float("nan")
                for total, count in zip(sums.tolist(), counts.tolist())
            ]
        )
    with np.errstate(invalid="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
