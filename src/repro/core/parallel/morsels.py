"""Morsel planning for the parallel vectorized tier.

A *morsel* is a contiguous range of global scan rows — the unit of work the
scheduler hands to workers (the batch analogue of HyPer-style morsel-driven
parallelism).  Morsel boundaries are always multiples of the executor's batch
size, so a pipeline running over morsels sees exactly the batch boundaries
the serial executor would: per-batch operator output (join probe order
included) is bit-for-bit the same, and collecting morsel results in index
order reproduces the serial row order.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default upper bound on morsel size.  Large enough that per-morsel
#: scheduling overhead is noise, small enough that work stealing can
#: rebalance skewed pipelines (e.g. selective predicates).
DEFAULT_MORSEL_ROWS = 65536


@dataclass(frozen=True)
class Morsel:
    """One contiguous range of global scan rows, ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


def plan_morsels(
    total_rows: int,
    batch_size: int,
    num_workers: int,
    morsel_rows: int | None = None,
) -> list[Morsel]:
    """Split ``total_rows`` into batch-aligned morsels.

    When no explicit ``morsel_rows`` is given, the size adapts so that every
    worker gets at least two morsels (leaving room for stealing) without
    dropping below one batch per morsel or exceeding
    :data:`DEFAULT_MORSEL_ROWS`.
    """
    if total_rows <= 0:
        return []
    batch_size = max(int(batch_size), 1)
    if morsel_rows is None:
        per_worker_target = -(-total_rows // max(num_workers * 2, 1))  # ceil
        morsel_rows = min(DEFAULT_MORSEL_ROWS, max(per_worker_target, 1))
    # Align up to a batch multiple so morsels reproduce serial batch
    # boundaries exactly.
    morsel_rows = max(batch_size, -(-morsel_rows // batch_size) * batch_size)
    morsels: list[Morsel] = []
    for index, start in enumerate(range(0, total_rows, morsel_rows)):
        morsels.append(Morsel(index, start, min(start + morsel_rows, total_rows)))
    return morsels
