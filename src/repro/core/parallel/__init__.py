"""Morsel-driven parallel execution subsystem (the ``vectorized-parallel``
tier).

Splits the driving scan of a compiled batch pipeline into batch-aligned
morsels, dispatches them to a pool of worker threads through a work-stealing
queue, and merges per-morsel partial results deterministically (in morsel
order).  See :mod:`repro.core.parallel.executor` for the execution model and
:mod:`repro.core.parallel.scheduler` for the scheduling model.
"""

from repro.core.parallel.executor import (
    ParallelVectorizedExecutor,
    precheck_driving_scan,
)
from repro.core.parallel.morsels import DEFAULT_MORSEL_ROWS, Morsel, plan_morsels
from repro.core.parallel.scheduler import WorkerPool, WorkStealingQueue

__all__ = [
    "DEFAULT_MORSEL_ROWS",
    "Morsel",
    "ParallelVectorizedExecutor",
    "WorkStealingQueue",
    "WorkerPool",
    "plan_morsels",
    "precheck_driving_scan",
]
