"""A small hand-written lexer shared by the SQL and comprehension frontends."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
END = "END"

_SYMBOLS = (
    "<->",  # never valid, placeholder to keep ordering logic simple
    "<-",
    "<=",
    ">=",
    "!=",
    "<>",
    "==",
    ":=",
    ":",  # named query parameters (":name"); must follow ":=" for longest match
    "?",  # positional query parameters
    "(",
    ")",
    "{",
    "}",
    ",",
    ".",
    "*",
    "+",
    "-",
    "/",
    "%",
    "=",
    "<",
    ">",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its position in the source text."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        if value is None:
            return True
        if kind == IDENT:
            return self.value.lower() == value.lower()
        return self.value == value


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, raising :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, i + 1)
            if end == -1:
                raise ParseError("unterminated string literal", i, text)
            tokens.append(Token(STRING, text[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a path separator, not a decimal.
                    if j + 1 >= length or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, text[i:j], i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token(SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token(END, "", length))
    return tokens


class TokenStream:
    """A cursor over a token list with convenience accept/expect helpers."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def at_end(self) -> bool:
        return self.current.kind == END

    def peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != END:
            self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def accept_keyword(self, *keywords: str) -> str | None:
        for keyword in keywords:
            if self.current.matches(IDENT, keyword):
                self.advance()
                return keyword.lower()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            expected = value if value is not None else kind
            raise ParseError(
                f"expected {expected!r} but found {self.current.value!r}",
                self.current.position,
                self.text,
            )
        return token

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.position, self.text)
