"""Concurrency runtime: named locks, a debug lock-order sanitizer, and the
repo's declarative thread-safety contract.

The engine is served to concurrent clients (ROADMAP item 1), so its shared
state — plug-in structural indexes, the adaptive cache, the prepared-statement
and compiled-program caches, the metrics registry, the morsel scheduler — is
protected by a small set of hand-placed locks.  This module makes that lock
discipline *checkable* instead of folklore, in two layers:

**Runtime layer** (this module's classes).  Every lock in the engine is
created through :func:`make_lock`, which returns a plain ``threading.Lock``
when debugging is off — identical cost to before — and a :class:`DebugLock`
when it is on (``PROTEUS_DEBUG_LOCKS=1`` or :func:`set_debug_locks`; the
test suite's ``--stress`` mode enables it).  A :class:`DebugLock` records
every *held-lock → acquired-lock* pair into the process-wide
:class:`LockOrderGraph` and raises :class:`LockOrderError` immediately on

* **same-lock re-entry** — acquiring a non-reentrant lock a thread already
  holds, the single-thread self-deadlock, and
* **lock-order cycles** — an acquisition that closes a cycle in the global
  order graph, the two-thread deadlock *even if the interleaving that would
  actually deadlock never happened in this run*.

**Static layer** (``tools/concurrency_lint.py``).  An AST analyzer proves,
repo-wide, that every mutation of shared mutable state happens under the
declared lock, and that the statically-derivable lock graph is acyclic.  Its
ground truth is the declaration tables at the bottom of this module — the
same pattern as ``SPAN_EXEMPT_OPERATORS``: every shared attribute must be
declared in exactly one table, and stale declarations fail the lint.

The tables are documentation with teeth; see each table's docstring for its
exact contract.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from types import TracebackType
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import ProteusError

__all__ = [
    "LockOrderError",
    "LockOrderGraph",
    "DebugLock",
    "make_lock",
    "make_rlock",
    "set_debug_locks",
    "debug_locks_enabled",
    "global_lock_graph",
    "reset_lock_order",
    "assert_lock_order_acyclic",
    "run_concurrently",
    "switch_interval",
    "SHARED_CLASSES",
    "GUARDED_BY",
    "THREAD_LOCAL",
    "IMMUTABLE_AFTER_INIT",
    "BENIGN_RACES",
    "EXTERNALLY_GUARDED",
]

#: Aggressive thread switch interval (seconds) used by the ``--stress`` test
#: mode: ~1000x more preemption points than CPython's default 5ms, so racy
#: interleavings that would hide for years surface in one CI run.
STRESS_SWITCH_INTERVAL = 5e-6


class LockOrderError(ProteusError):
    """A lock-discipline violation observed at runtime (re-entry or cycle)."""


class LockOrderGraph:
    """The process-wide directed graph of observed lock acquisition orders.

    Nodes are lock names (``"Class._lock"``); an edge ``a -> b`` means some
    thread acquired ``b`` while holding ``a``.  The graph must stay acyclic:
    a cycle means two threads can each hold one lock of the cycle while
    waiting for the next — a deadlock waiting for the right interleaving.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._cycles: list[tuple[str, ...]] = []
        # The meta-lock guarding the graph itself; deliberately a plain lock
        # (wrapping it in a DebugLock would recurse).
        self._lock = threading.Lock()

    def record(self, held: Sequence[str], acquired: str) -> None:
        """Record edges ``h -> acquired`` for every held lock, raising
        :class:`LockOrderError` when an edge closes a cycle."""
        with self._lock:
            for source in held:
                if source == acquired:
                    continue
                targets = self._edges.setdefault(source, set())
                if acquired in targets:
                    continue
                cycle = self._path(acquired, source)
                targets.add(acquired)
                if cycle is not None:
                    full = (source, *cycle)
                    self._cycles.append(full)
                    raise LockOrderError(
                        "lock-order cycle: " + " -> ".join(full)
                    )

    def _path(self, start: str, goal: str) -> tuple[str, ...] | None:
        """A path ``start -> ... -> goal`` in the current graph, or ``None``.
        Called with the meta-lock held."""
        stack: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for target in self._edges.get(node, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append((target, path + (target,)))
        return None

    def edges(self) -> dict[str, set[str]]:
        """A snapshot of the observed acquisition-order edges."""
        with self._lock:
            return {source: set(targets) for source, targets in self._edges.items()}

    def cycles(self) -> list[tuple[str, ...]]:
        """Every cycle ever observed (normally raised at the closing edge)."""
        with self._lock:
            return list(self._cycles)

    def clear(self) -> None:
        with self._lock:
            self._edges.clear()
            self._cycles.clear()


#: The process-wide graph every :class:`DebugLock` records into.
_GRAPH = LockOrderGraph()

#: Master switch; flipped by :func:`set_debug_locks` / ``PROTEUS_DEBUG_LOCKS``.
_DEBUG_ENABLED = os.environ.get("PROTEUS_DEBUG_LOCKS", "") not in ("", "0")

_HELD = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


class DebugLock:
    """A named, order-checking wrapper around ``threading.Lock``.

    Acquisition appends the lock's name to a per-thread held stack and records
    the (held, acquired) pairs into the global :class:`LockOrderGraph`;
    re-entry by the owning thread raises :class:`LockOrderError` instead of
    deadlocking silently.  ``reentrant=True`` wraps an ``RLock`` and permits
    re-entry (order edges are still recorded on first acquisition).
    """

    __slots__ = ("name", "reentrant", "_inner")

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner: threading.Lock | threading.RLock = (
            threading.RLock() if reentrant else threading.Lock()
        )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held_stack()
        first = self.name not in held
        if not first and not self.reentrant:
            raise LockOrderError(
                f"re-entrant acquisition of non-reentrant lock {self.name}: "
                f"held stack {held}"
            )
        ok = self._inner.acquire(blocking, timeout)
        if not ok:
            # A failed non-blocking / timed acquire never held the lock, so
            # it must leave no trace: no held-stack entry and no order edge.
            return False
        if first:
            try:
                _GRAPH.record(held, self.name)
            except LockOrderError:
                self._inner.release()
                raise
        held.append(self.name)
        return True

    def release(self) -> None:
        held = _held_stack()
        if self.name in held:
            # Remove the most recent acquisition (locks release LIFO in every
            # ``with`` block; a stray out-of-order release still unwinds).
            for index in range(len(held) - 1, -1, -1):
                if held[index] == self.name:
                    del held[index]
                    break
        self._inner.release()

    def locked(self) -> bool:
        inner = self._inner
        return inner.locked() if isinstance(inner, type(threading.Lock())) else True

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()


def make_lock(name: str) -> "threading.Lock | DebugLock":
    """The lock constructor every engine component uses.

    Returns a plain ``threading.Lock`` when debug checking is off (the
    default — zero overhead over constructing the lock directly) and a
    :class:`DebugLock` named ``name`` when it is on.  ``name`` is, by
    convention, ``"ClassName.attr"`` — the key the lock-order graph and the
    static analyzer's ``GUARDED_BY`` table both use.
    """
    if _DEBUG_ENABLED:
        return DebugLock(name)
    return threading.Lock()


def make_rlock(name: str) -> "threading.RLock | DebugLock":
    """Reentrant variant of :func:`make_lock`."""
    if _DEBUG_ENABLED:
        return DebugLock(name, reentrant=True)
    return threading.RLock()


def set_debug_locks(enabled: bool) -> None:
    """Flip the debug-lock switch.

    Affects locks created *after* the call: enable before constructing the
    engines under test (the ``--stress`` conftest fixture does this at
    session start).
    """
    global _DEBUG_ENABLED
    _DEBUG_ENABLED = enabled


def debug_locks_enabled() -> bool:
    return _DEBUG_ENABLED


def global_lock_graph() -> LockOrderGraph:
    """The process-wide lock-order graph DebugLocks record into."""
    return _GRAPH


def reset_lock_order() -> None:
    """Clear the recorded lock-order graph (test isolation)."""
    _GRAPH.clear()


def assert_lock_order_acyclic() -> None:
    """Raise :class:`LockOrderError` if any cycle was ever observed."""
    cycles = _GRAPH.cycles()
    if cycles:
        rendered = "; ".join(" -> ".join(cycle) for cycle in cycles)
        raise LockOrderError(f"observed lock-order cycle(s): {rendered}")


# ---------------------------------------------------------------------------
# Stress harness helpers
# ---------------------------------------------------------------------------

T = TypeVar("T")


def run_concurrently(
    task: Callable[[int], T], threads: int, *, name: str = "stress"
) -> list[T]:
    """Run ``task(thread_index)`` from ``threads`` barrier-aligned threads.

    All threads block on one barrier and start their work in the same
    scheduler quantum — the worst case for check-then-act races on cold
    shared state (every thread sees the caches empty at once).  Returns the
    per-thread results in thread-index order; the first exception raised by
    any thread is re-raised on the calling thread after every thread joined.
    """
    barrier = threading.Barrier(threads)
    results: list[T | None] = [None] * threads
    errors: list[BaseException] = []

    def runner(index: int) -> None:
        try:
            barrier.wait()
            results[index] = task(index)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    spawned = [
        threading.Thread(target=runner, args=(index,), name=f"{name}-{index}")
        for index in range(threads)
    ]
    for thread in spawned:
        thread.start()
    for thread in spawned:
        thread.join()
    if errors:
        raise errors[0]
    return results  # type: ignore[return-value]


@contextmanager
def switch_interval(seconds: float = STRESS_SWITCH_INTERVAL) -> Iterator[None]:
    """Temporarily shrink the interpreter's thread switch interval.

    ``sys.setswitchinterval(5e-6)`` preempts threads ~1000x more often than
    the default, turning latent interleaving bugs into reproducible failures;
    the previous interval is always restored.
    """
    previous = sys.getswitchinterval()
    sys.setswitchinterval(seconds)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


# ---------------------------------------------------------------------------
# The declarative thread-safety contract
# ---------------------------------------------------------------------------
#
# ``tools/concurrency_lint.py`` checks every class that owns a lock — owning
# a lock is a claim of thread-safety — plus every class listed in
# SHARED_CLASSES.  Within a checked class, *every* mutation of shared state
# (`self.x[...] = `, `.setdefault`/`.update`/`.pop`/`.append`/…, `del`,
# attribute rebinds, augmented assignment) outside ``__init__`` must be
# covered by exactly one declaration below; an undeclared mutation, a
# GUARDED_BY mutation outside its lock, and a stale declaration (class or
# attribute that no longer exists) each fail the build.

#: Classes whose instances are shared across threads but do not own a lock of
#: their own (lock-owning classes are checked automatically).  Value: why the
#: class is in the checked set — usually the thread entry point that reaches
#: it.  ``tools/concurrency_lint.py`` also requires every class that spawns
#: ``threading.Thread`` workers to appear in the checked set.
SHARED_CLASSES: dict[str, str] = {
    "ProteusEngine": (
        "one engine serves concurrent sessions (ROADMAP item 1): prepare()/"
        "query()/execute() run from many client threads over shared caches"
    ),
    "PreparedQuery": (
        "the per-text prepared cache hands the same PreparedQuery to every "
        "thread calling engine.query() with one query text"
    ),
    "CacheManager": (
        "shared by both batch tiers, the codegen runtime and the planner's "
        "access-path selection; parallel workers populate it via ScanOperator"
    ),
    "CacheArena": (
        "the cache arena accounts blocks for every CacheManager mutation; "
        "reached from the same threads as the manager"
    ),
    "CacheStatistics": (
        "mutated on every CacheManager lookup/store from any query thread"
    ),
    "WorkerPool": (
        "spawns the morsel worker threads (proteus-worker-N); run() is the "
        "thread entry point of the parallel tier"
    ),
    "AdmissionController": (
        "the admission gate is shared by every client thread entering "
        "engine._execute; it synchronizes on a threading.Condition, which "
        "the lint does not recognize as a lock factory"
    ),
    "ScanCoalescer": (
        "the keyed in-flight scan table is probed by every query thread "
        "entering engine._execute over a cold dataset; waiters block on "
        "per-key Events outside the lock"
    ),
    "StatementRegistry": (
        "server-side prepared-statement handles are created/resolved/closed "
        "by concurrent HTTP handler threads"
    ),
    "ActiveQueryRegistry": (
        "cancellation tokens are registered by the executing handler thread "
        "and tripped by a different thread serving DELETE /v1/query/<id>"
    ),
    "ProteusServer": (
        "owns the accept-loop thread (proteus-http-serve) and is started/"
        "stopped from the owning application thread while handler threads "
        "read its engine and registries"
    ),
}

#: ``"Class.attr" -> "lock attribute"``: the attribute is mutated only while
#: ``with self.<lock attribute>`` is held.  The analyzer verifies every
#: mutation site; lock-free *reads* of these attributes are permitted (the
#: double-checked publish idiom the plug-ins use: readers race only against
#: idempotent publication of immutable values).
GUARDED_BY: dict[str, str] = {
    # engine-level shared caches (ProteusEngine serves concurrent sessions)
    "ProteusEngine._compiled": "_lock",
    "ProteusEngine._parsed": "_lock",
    "ProteusEngine._analyses": "_lock",
    "ProteusEngine._prepared_cache": "_lock",
    "ProteusEngine._catalog_epoch": "_lock",
    "PreparedQuery._state": "_lock",
    "PreparedQuery.comprehension": "_lock",
    "PreparedQuery._logical": "_lock",
    # adaptive cache
    "ScanCoalescer._inflight": "_lock",
    "CacheManager._entries": "_lock",
    "CacheManager._clock": "_lock",
    "CacheManager.stats": "_lock",
    # memory manager
    "MemoryManager._mapped": "_map_lock",
    # plug-in state
    "InputPlugin.scan_seconds": "_metrics_lock",
    "InputPlugin.scan_bytes": "_metrics_lock",
    "InputPlugin.scan_calls": "_metrics_lock",
    "CsvPlugin._states": "_state_lock",
    "JsonPlugin._states": "_state_lock",
    "BinaryColumnPlugin._tables": "_table_lock",
    "BinaryRowPlugin._tables": "_table_lock",
    # batch-tier scan cache recorder (shared by parallel workers)
    "ScanOperator._record": "_record_lock",
    # morsel scheduler
    "WorkStealingQueue.dispatched": "_lock",
    "WorkStealingQueue.stolen": "_lock",
    # observability
    "MetricsRegistry._metrics": "_lock",
    "MetricsRegistry._slow_queries": "_lock",
    "Counter._values": "_lock",
    "Histogram._counts": "_lock",
    "Histogram._sum": "_lock",
    "Histogram._count": "_lock",
    "Tracer._traces": "_lock",
    "Tracer._pending_phases": "_lock",
    "Tracer.active": "_lock",
    "TraceBuilder.phase_spans": "_lock",
    "TraceBuilder._operators": "_lock",
    "SpanAccumulator.seconds": "_lock",
    "SpanAccumulator.rows_in": "_lock",
    "SpanAccumulator.rows_out": "_lock",
    "SpanAccumulator.batches": "_lock",
    "SpanAccumulator.bytes_processed": "_lock",
    "SpanAccumulator.invocations": "_lock",
    "SpanAccumulator._batch_buckets": "_lock",
    # resilience subsystem (context shared by every tier + pool workers)
    "QueryContext._progress": "_lock",
    "QueryContext._io_retries": "_lock",
    "FaultInjector._calls": "_lock",
    "FaultInjector._fired": "_lock",
    "FaultInjector._injected": "_lock",
    # HTTP serving layer (handles + cancellation shared across handler threads)
    "StatementRegistry._statements": "_lock",
    "StatementRegistry._counter": "_lock",
    "ActiveQueryRegistry._tokens": "_lock",
    "ProteusServer._thread": "_lock",
    # this module's own graph
    "LockOrderGraph._edges": "_lock",
    "LockOrderGraph._cycles": "_lock",
}

#: ``"Class.attr" -> why``: state that is only ever touched by one thread
#: (per-thread buckets, thread-local stacks) and therefore needs no lock.
THREAD_LOCAL: dict[str, str] = {
    "DebugLock.name": (
        "assigned in __init__ only; listed because the held-stack bookkeeping "
        "reads it from the owning thread's local stack"
    ),
}

#: ``"Class.attr" -> why``: state built in ``__init__`` and never mutated
#: afterwards — published by the constructing thread, read-only to every
#: other thread.  The analyzer flags any post-``__init__`` mutation.
IMMUTABLE_AFTER_INIT: dict[str, str] = {
    "TraceBuilder._node_ids": (
        "the plan-walk ordinal map is frozen at builder construction; worker "
        "threads only read it through node_ordinal()"
    ),
    "WorkStealingQueue._deques": (
        "the deque *list* is frozen after preloading; the deques themselves "
        "are popped only under self._lock inside next_task()"
    ),
    "ScanOperator._cached": (
        "cache lookups resolve in the constructor on the coordinating "
        "thread; workers only gather from the resolved arrays"
    ),
}

#: ``"Class.attr" -> why``: racy by construction and documented harmless —
#: single GIL-atomic reference rebinds where the last writer legitimately
#: wins and readers only introspect.
BENIGN_RACES: dict[str, str] = {
    "ProteusEngine.last_plan": (
        "per-query introspection; concurrent queries race to publish and the "
        "last writer wins — callers inspecting it own the engine call"
    ),
    "ProteusEngine.last_generated_source": (
        "same introspection contract as last_plan; one atomic rebind per query"
    ),
    "ProteusEngine.last_profile": (
        "same introspection contract as last_plan; one atomic rebind per query"
    ),
    "Tracer.enabled": (
        "force()/set flips one boolean; a query racing the flip is traced or "
        "not traced wholesale, never torn"
    ),
    "WorkerPool.last_stolen": (
        "written by run() on the coordinating thread before workers start and "
        "after they join; never concurrent with the workers it profiles"
    ),
    "InputPlugin.fault_injector": (
        "installed (one atomic rebind) by the chaos harness before queries "
        "run against the plugin; query threads only read the reference"
    ),
}

#: ``"Class.attr" -> why``: mutable state whose every mutation path runs
#: under some *other* object's lock (the analyzer cannot see that statically,
#: so these are audited suppressions, stale-checked like the rest).
EXTERNALLY_GUARDED: dict[str, str] = {
    "ProteusEngine.cache_manager": (
        "the binding is immutable after __init__; mutating calls "
        "(clear_caches -> CacheManager.clear) are serialized by "
        "CacheManager._lock inside the manager itself"
    ),
    "CacheArena._blocks": (
        "register()/unregister() are called only by CacheManager mutators, "
        "which hold CacheManager._lock"
    ),
    "CacheStatistics.lookups": "mutated only by CacheManager under its _lock",
    "CacheStatistics.hits": "mutated only by CacheManager under its _lock",
    "CacheStatistics.stores": "mutated only by CacheManager under its _lock",
    "CacheStatistics.evictions": "mutated only by CacheManager under its _lock",
    "CacheStatistics.rejected": "mutated only by CacheManager under its _lock",
    "CacheEntry.last_used": (
        "touch() is called only by CacheManager mutators under its _lock"
    ),
    "CacheEntry.hits": (
        "touch() is called only by CacheManager mutators under its _lock"
    ),
    "AdmissionController._active": (
        "mutated only while holding self._condition (a threading.Condition)"
    ),
    "AdmissionController._reserved_bytes": (
        "mutated only while holding self._condition (a threading.Condition)"
    ),
    "AdmissionController._admitted_total": (
        "mutated only while holding self._condition (a threading.Condition)"
    ),
    "AdmissionController._rejected_total": (
        "mutated only while holding self._condition (a threading.Condition)"
    ),
}
