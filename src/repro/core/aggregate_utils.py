"""Helpers for evaluating output columns that mix aggregates and arithmetic.

An output column such as ``sum(l.extendedprice) / count(*)`` contains
aggregate calls nested inside ordinary expressions.  Both executors evaluate
the aggregates first (per group, or globally) and then substitute the results
back into the column expression before evaluating the remainder.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    IfThenElse,
    Literal,
    RecordConstruct,
    UnaryOp,
)


def replace_aggregates(
    expression: Expression, results: Mapping[tuple, Expression]
) -> Expression:
    """Replace each aggregate call with the expression holding its result.

    ``results`` maps aggregate fingerprints to replacement expressions
    (usually literals holding the computed value).
    """
    if isinstance(expression, AggregateCall):
        replacement = results.get(expression.fingerprint())
        if replacement is None:
            raise KeyError(f"no result for aggregate {expression!r}")
        return replacement
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op,
            replace_aggregates(expression.left, results),
            replace_aggregates(expression.right, results),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, replace_aggregates(expression.operand, results))
    if isinstance(expression, IfThenElse):
        return IfThenElse(
            replace_aggregates(expression.condition, results),
            replace_aggregates(expression.then, results),
            replace_aggregates(expression.otherwise, results),
        )
    if isinstance(expression, RecordConstruct):
        return RecordConstruct(
            [(name, replace_aggregates(expr, results)) for name, expr in expression.fields]
        )
    return expression


def literal_results(values: Mapping[tuple, object]) -> dict[tuple, Expression]:
    """Wrap computed aggregate values as literal expressions."""
    return {fingerprint: Literal(value) for fingerprint, value in values.items()}
