"""Helpers for evaluating output columns that mix aggregates and arithmetic.

An output column such as ``sum(l.extendedprice) / count(*)`` contains
aggregate calls nested inside ordinary expressions.  Both executors evaluate
the aggregates first (per group, or globally) and then substitute the results
back into the column expression before evaluating the remainder.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping, Sequence

from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    IfThenElse,
    Literal,
    OutputColumn,
    RecordConstruct,
    UnaryOp,
    iter_aggregates,
)


class AggregateAccumulators:
    """Shared state and finalization of running aggregates.

    Both interpreters accumulate into the same per-fingerprint state (sums as
    floats, extrema as Python values, missing inputs skipped, the bare
    ``count`` counting every row) — only the update granularity differs: one
    tuple at a time in the Volcano executor, one batch at a time in the
    vectorized executor.  Each subclass supplies its own ``update``; keeping
    the state and ``finalize`` here guarantees the tiers cannot drift apart.
    """

    def __init__(self, columns: Sequence[OutputColumn]):
        self.aggregates: list[AggregateCall] = []
        seen: set[tuple] = set()
        for column in columns:
            for aggregate in iter_aggregates(column.expression):
                fingerprint = aggregate.fingerprint()
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    self.aggregates.append(aggregate)
        self.count = 0
        # Sums start at integer 0 so integer inputs accumulate exactly
        # (Python ints are arbitrary precision); floats promote on first add.
        self.sums: dict[tuple, Any] = defaultdict(int)
        self.mins: dict[tuple, Any] = {}
        self.maxs: dict[tuple, Any] = {}
        self.bools_and: dict[tuple, bool] = defaultdict(lambda: True)
        self.bools_or: dict[tuple, bool] = defaultdict(lambda: False)
        self.counts: dict[tuple, int] = defaultdict(int)

    def merge(self, other: "AggregateAccumulators") -> None:
        """Fold another accumulator's partial state into this one.

        This is the combine step of the morsel-driven parallel tier: each
        morsel accumulates independently and the partials are merged in
        morsel order afterwards.  Merging is defined on the shared state, so
        partials from any ``update`` granularity combine correctly.
        """
        self.count += other.count
        for fingerprint, count in other.counts.items():
            self.counts[fingerprint] += count
        for fingerprint, total in other.sums.items():
            self.sums[fingerprint] += total
        for fingerprint, value in other.maxs.items():
            current = self.maxs.get(fingerprint)
            self.maxs[fingerprint] = (
                value if current is None else max(current, value)
            )
        for fingerprint, value in other.mins.items():
            current = self.mins.get(fingerprint)
            self.mins[fingerprint] = (
                value if current is None else min(current, value)
            )
        for fingerprint, value in other.bools_and.items():
            self.bools_and[fingerprint] = self.bools_and[fingerprint] and value
        for fingerprint, value in other.bools_or.items():
            self.bools_or[fingerprint] = self.bools_or[fingerprint] or value

    def finalize(self) -> dict[tuple, Any]:
        results: dict[tuple, Any] = {}
        for aggregate in self.aggregates:
            fingerprint = aggregate.fingerprint()
            if aggregate.func == "count":
                results[fingerprint] = (
                    self.count if aggregate.argument is None else self.counts[fingerprint]
                )
            elif aggregate.func == "sum":
                results[fingerprint] = self.sums[fingerprint]
            elif aggregate.func == "avg":
                count = self.counts[fingerprint]
                results[fingerprint] = self.sums[fingerprint] / count if count else float("nan")
            elif aggregate.func == "max":
                results[fingerprint] = self.maxs.get(fingerprint)
            elif aggregate.func == "min":
                results[fingerprint] = self.mins.get(fingerprint)
            elif aggregate.func == "and":
                results[fingerprint] = self.bools_and[fingerprint]
            elif aggregate.func == "or":
                results[fingerprint] = self.bools_or[fingerprint]
        return results


def replace_aggregates(
    expression: Expression, results: Mapping[tuple, Expression]
) -> Expression:
    """Replace each aggregate call with the expression holding its result.

    ``results`` maps aggregate fingerprints to replacement expressions
    (usually literals holding the computed value).
    """
    if isinstance(expression, AggregateCall):
        replacement = results.get(expression.fingerprint())
        if replacement is None:
            raise KeyError(f"no result for aggregate {expression!r}")
        return replacement
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op,
            replace_aggregates(expression.left, results),
            replace_aggregates(expression.right, results),
        )
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, replace_aggregates(expression.operand, results))
    if isinstance(expression, IfThenElse):
        return IfThenElse(
            replace_aggregates(expression.condition, results),
            replace_aggregates(expression.then, results),
            replace_aggregates(expression.otherwise, results),
        )
    if isinstance(expression, RecordConstruct):
        return RecordConstruct(
            [(name, replace_aggregates(expr, results)) for name, expr in expression.fields]
        )
    return expression


def literal_results(values: Mapping[tuple, object]) -> dict[tuple, Expression]:
    """Wrap computed aggregate values as literal expressions."""
    return {fingerprint: Literal(value) for fingerprint, value in values.items()}


def unique_output_columns(columns: Sequence[OutputColumn]) -> list[OutputColumn]:
    """First occurrence per output name.  Result columns are keyed by name,
    and the planner rejects duplicate names over *different* expressions, so
    evaluating the first occurrence covers every duplicate."""
    seen: dict[str, OutputColumn] = {}
    for column in columns:
        seen.setdefault(column.name, column)
    return list(seen.values())
