"""Core of the Proteus reproduction.

This package contains the paper's primary contribution: the nested relational
algebra, the monoid-comprehension frontends, the optimizer, and the per-query
code-generation machinery that collapses the engine into a specialized program
for every query.
"""

from repro.core.engine import PreparedQuery, ProteusEngine, QueryResult, ResultSet

__all__ = ["PreparedQuery", "ProteusEngine", "QueryResult", "ResultSet"]
