"""Calculus → nested relational algebra translation.

The translator walks the normalized comprehension's qualifiers in order and
builds a left-deep logical plan:

* a generator over a catalog dataset becomes a :class:`~repro.core.algebra.Scan`
  (joined to the plan built so far — initially as a cartesian product, later
  turned into an equi-join by the optimizer),
* a generator over a nested path becomes an :class:`~repro.core.algebra.Unnest`,
* a filter becomes a :class:`~repro.core.algebra.Select`,
* the head becomes a :class:`~repro.core.algebra.Reduce` (projection or global
  aggregation) or a :class:`~repro.core.algebra.Nest` (grouping).

This mirrors the paper's pipeline: the calculus is rewritten into an algebraic
tree that is then optimized with relational-style rules (§4).
"""

from __future__ import annotations

from repro.core.algebra import Join, LogicalPlan, Nest, Reduce, Scan, Select, Unnest
from repro.core.calculus import Comprehension, DatasetSource, Filter, Generator, PathSource
from repro.core.expressions import contains_aggregate
from repro.errors import TranslationError


def translate(comprehension: Comprehension) -> LogicalPlan:
    """Translate a validated comprehension into a logical plan."""
    comprehension.validate()
    plan: LogicalPlan | None = None

    for qualifier in comprehension.qualifiers:
        if isinstance(qualifier, Generator):
            plan = _translate_generator(qualifier, plan)
        elif isinstance(qualifier, Filter):
            if plan is None:
                raise TranslationError("filter appears before any generator")
            plan = Select(qualifier.predicate, plan)
        else:  # pragma: no cover - defensive
            raise TranslationError(f"unknown qualifier {qualifier!r}")

    if plan is None:
        raise TranslationError("query has no generators")

    return _translate_head(comprehension, plan)


def _translate_generator(generator: Generator, plan: LogicalPlan | None) -> LogicalPlan:
    source = generator.source
    if isinstance(source, DatasetSource):
        scan = Scan(source.dataset, generator.var)
        if plan is None:
            return scan
        # Cartesian product for now; the optimizer extracts equi-join
        # predicates from enclosing selections and reorders joins.
        return Join(None, plan, scan)
    if isinstance(source, PathSource):
        if plan is None:
            raise TranslationError(
                f"path generator {generator!r} cannot be the first generator"
            )
        if source.binding not in plan.bindings():
            raise TranslationError(
                f"path generator {generator!r} references binding "
                f"{source.binding!r} which is not produced by the plan so far"
            )
        return Unnest(
            source.binding, source.path, generator.var, plan, outer=generator.outer
        )
    raise TranslationError(f"unknown generator source {source!r}")


def _translate_head(comprehension: Comprehension, plan: LogicalPlan) -> LogicalPlan:
    has_aggregates = any(contains_aggregate(c.expression) for c in comprehension.head)

    if comprehension.group_by:
        if not has_aggregates:
            raise TranslationError("GROUP BY requires at least one aggregate output column")
        return Nest(comprehension.head, comprehension.group_by, plan)

    if has_aggregates:
        plain = [
            c.name
            for c in comprehension.head
            if not contains_aggregate(c.expression)
        ]
        if plain:
            raise TranslationError(
                f"non-aggregate output columns {plain} require a GROUP BY clause"
            )
        return Reduce("agg", comprehension.head, plan)

    return Reduce(comprehension.monoid, comprehension.head, plan)
