"""Physical query plans.

The optimizer lowers the logical nested relational algebra into a physical
plan whose operators carry everything needed for execution and for code
generation:

* scans know which field paths they must place into virtual buffers
  (projection pushdown) and which plug-in/access path serves them,
* joins are resolved to radix hash joins with explicit key expressions (plus
  an optional residual predicate) or to nested-loop joins when no equi-join
  key exists,
* unnests know which element fields they must flatten,
* the root is a Reduce (projection / global aggregation) or a Nest (grouping).

Both executors consume this representation: the code generator collapses it
into a single specialized program (§5.1), and the Volcano interpreter walks it
operator-at-a-tuple (the "static general-purpose engine" the paper contrasts
against).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.expressions import Expression, OutputColumn, iter_parameters, to_string
from repro.plugins.base import FieldPath


class PhysicalPlan:
    """Base class of physical operators."""

    def children(self) -> tuple["PhysicalPlan", ...]:
        return ()

    def bindings(self) -> set[str]:
        result: set[str] = set()
        for child in self.children():
            result |= child.bindings()
        return result

    def walk(self) -> Iterator["PhysicalPlan"]:
        for child in self.children():
            yield from child.walk()
        yield self

    def fingerprint(self) -> tuple:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.pretty()


class PhysScan(PhysicalPlan):
    """Scan a dataset, materializing the requested field paths."""

    def __init__(
        self,
        dataset: str,
        binding: str,
        paths: Sequence[FieldPath],
        access_path: str = "raw",
    ):
        self.dataset = dataset
        self.binding = binding
        self.paths = [tuple(path) for path in paths]
        #: "raw" (the dataset's own plug-in) or "cache" (fully served by caches).
        self.access_path = access_path

    def bindings(self) -> set[str]:
        return {self.binding}

    def fingerprint(self) -> tuple:
        return ("scan", self.dataset, self.binding, tuple(self.paths))

    def describe(self) -> str:
        fields = ", ".join(".".join(path) for path in self.paths) or "<none>"
        suffix = " [cache]" if self.access_path == "cache" else ""
        return f"Scan({self.dataset} as {self.binding}: {fields}){suffix}"


class PhysSelect(PhysicalPlan):
    """Filter the child by a predicate."""

    def __init__(self, predicate: Expression, child: PhysicalPlan):
        self.predicate = predicate
        self.child = child

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        return ("select", self.predicate.fingerprint(), self.child.fingerprint())

    def describe(self) -> str:
        return f"Select({to_string(self.predicate)})"


class PhysUnnest(PhysicalPlan):
    """Unnest a nested collection field of ``binding`` into ``var``."""

    def __init__(
        self,
        binding: str,
        path: FieldPath,
        var: str,
        element_paths: Sequence[FieldPath],
        child: PhysicalPlan,
        predicate: Expression | None = None,
        outer: bool = False,
    ):
        self.binding = binding
        self.path = tuple(path)
        self.var = var
        self.element_paths = [tuple(p) for p in element_paths]
        self.child = child
        self.predicate = predicate
        self.outer = outer

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def bindings(self) -> set[str]:
        return self.child.bindings() | {self.var}

    def fingerprint(self) -> tuple:
        predicate = self.predicate.fingerprint() if self.predicate is not None else None
        return (
            "unnest",
            self.binding,
            self.path,
            self.var,
            tuple(self.element_paths),
            predicate,
            self.outer,
            self.child.fingerprint(),
        )

    def planned_mode(self) -> tuple[str, str]:
        """(mode, why) for the batch tiers' batch-native unnest execution.

        ``offset-vector`` — the parent binding is scan-backed, so the plug-in
        flattens through ``scan_unnest_batch`` (per-parent repeat counts, one
        ``np.repeat`` parent broadcast per batch).  ``column-backed`` — the
        parent is itself an unnest variable (nested-in-nested); the collection
        column materialized by the parent unnest is flattened in memory.
        """
        scan_backed = any(
            isinstance(node, PhysScan) and node.binding == self.binding
            for node in self.child.walk()
        )
        if scan_backed:
            return (
                "offset-vector",
                "plug-in scan_unnest_batch returns flattened element buffers "
                "plus per-parent repeat counts",
            )
        return (
            "column-backed",
            "collection column materialized by the parent unnest is "
            "flattened in memory",
        )

    def describe(self) -> str:
        name = "OuterUnnest" if self.outer else "Unnest"
        fields = ", ".join(".".join(p) for p in self.element_paths) or "<value>"
        mode, _ = self.planned_mode()
        return (
            f"{name}({self.var} <- {self.binding}.{'.'.join(self.path)}: {fields})"
            f" [{mode}]"
        )


class PhysHashJoin(PhysicalPlan):
    """Radix hash join on equi-join keys, with an optional residual predicate.

    The left side is the build side (materialized first), the right side is
    probed; this mirrors the paper's radix hash join whose materialized sides
    double as implicit caches.
    """

    def __init__(
        self,
        left_key: Expression,
        right_key: Expression,
        left: PhysicalPlan,
        right: PhysicalPlan,
        residual: Expression | None = None,
        outer: bool = False,
    ):
        self.left_key = left_key
        self.right_key = right_key
        self.left = left
        self.right = right
        self.residual = residual
        self.outer = outer

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def fingerprint(self) -> tuple:
        residual = self.residual.fingerprint() if self.residual is not None else None
        return (
            "hashjoin",
            self.left_key.fingerprint(),
            self.right_key.fingerprint(),
            residual,
            self.outer,
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def describe(self) -> str:
        name = "OuterHashJoin" if self.outer else "RadixHashJoin"
        text = f"{name}({to_string(self.left_key)} = {to_string(self.right_key)})"
        if self.residual is not None:
            text += f" residual: {to_string(self.residual)}"
        return text


class PhysNestedLoopJoin(PhysicalPlan):
    """Fallback join for non-equi predicates (and the behaviour an optimizer
    blind to a data type falls back to, cf. the Q39 discussion in §7.2)."""

    def __init__(
        self,
        predicate: Expression | None,
        left: PhysicalPlan,
        right: PhysicalPlan,
        outer: bool = False,
    ):
        self.predicate = predicate
        self.left = left
        self.right = right
        self.outer = outer

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def fingerprint(self) -> tuple:
        predicate = self.predicate.fingerprint() if self.predicate is not None else None
        return (
            "nljoin",
            predicate,
            self.outer,
            self.left.fingerprint(),
            self.right.fingerprint(),
        )

    def describe(self) -> str:
        predicate = to_string(self.predicate) if self.predicate is not None else "true"
        return f"NestedLoopJoin({predicate})"


class PhysReduce(PhysicalPlan):
    """Final projection (bag output) or global aggregation."""

    def __init__(self, monoid: str, columns: Sequence[OutputColumn], child: PhysicalPlan):
        self.monoid = monoid
        self.columns = list(columns)
        self.child = child

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        return (
            "reduce",
            self.monoid,
            tuple(column.fingerprint() for column in self.columns),
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        columns = ", ".join(
            f"{column.name}={to_string(column.expression)}" for column in self.columns
        )
        return f"Reduce[{self.monoid}]({columns})"


class PhysSort(PhysicalPlan):
    """Order (and optionally bound) the query output — the plan's root when
    the query carries ORDER BY and/or LIMIT.

    ``keys`` are ``(output column name, ascending)`` pairs over the child's
    output columns; ``limit`` is a non-negative int, a ``Parameter``
    expression bound at execution time, or ``None``.  Making the sort a plan
    operator (instead of an engine-side epilogue) means the planner places
    it, plan fingerprints cover it — a prepared ``LIMIT ?`` stays abstract —
    and ``explain()`` reports the chosen strategy.

    Execution is strategy-specialized per tier (see
    :mod:`repro.core.sort`): dtype-specialized ``np.lexsort`` kernels, a
    bounded streaming top-K when a LIMIT accompanies the sort, per-morsel
    sorted runs merged k-way on the parallel tier, and a boxed-comparator
    fallback for object columns the encoders cannot represent.
    """

    def __init__(
        self,
        keys: Sequence[tuple[str, bool]],
        limit: "int | Expression | None",
        child: PhysicalPlan,
    ):
        self.keys = [(str(name), bool(ascending)) for name, ascending in keys]
        self.limit = limit
        self.child = child

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        if isinstance(self.limit, Expression):
            limit = self.limit.fingerprint()
        else:
            limit = self.limit
        return ("sort", tuple(self.keys), limit, self.child.fingerprint())

    def planned_strategy(self) -> tuple[str, str]:
        """(strategy, why) as planned — the data-independent choice.

        Execution refines it per key dtype: object columns demote to the
        comparator fallback, and the parallel tier upgrades single-key sorts
        to per-morsel runs plus a k-way merge.
        """
        if self.keys and self.limit is not None:
            return (
                "topk",
                "LIMIT bounds the sort; only the top K rows survive each batch",
            )
        if self.keys:
            return ("lexsort", "full stable sort via dtype-specialized kernels")
        return ("limit", "no sort keys; LIMIT truncates the output")

    def describe(self) -> str:
        keys = ", ".join(
            f"{name} {'ASC' if ascending else 'DESC'}" for name, ascending in self.keys
        )
        parts = [keys] if keys else []
        if self.limit is not None:
            if isinstance(self.limit, Expression):
                parts.append(f"limit={to_string(self.limit)}")
            else:
                parts.append(f"limit={self.limit}")
        strategy, _ = self.planned_strategy()
        return f"Sort({', '.join(parts)}) [strategy: {strategy}]"


def unwrap_sort(plan: PhysicalPlan) -> PhysicalPlan:
    """The plan beneath a root :class:`PhysSort` (identity otherwise)."""
    return plan.child if isinstance(plan, PhysSort) else plan


class PhysNest(PhysicalPlan):
    """Radix-hash grouping with per-group aggregates."""

    def __init__(
        self,
        columns: Sequence[OutputColumn],
        group_by: Sequence[Expression],
        child: PhysicalPlan,
    ):
        self.columns = list(columns)
        self.group_by = list(group_by)
        self.child = child

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def fingerprint(self) -> tuple:
        return (
            "nest",
            tuple(column.fingerprint() for column in self.columns),
            tuple(expression.fingerprint() for expression in self.group_by),
            self.child.fingerprint(),
        )

    def describe(self) -> str:
        columns = ", ".join(
            f"{column.name}={to_string(column.expression)}" for column in self.columns
        )
        keys = ", ".join(to_string(expression) for expression in self.group_by)
        return f"RadixNest(group by {keys}; {columns})"


def scans_of(plan: PhysicalPlan) -> list[PhysScan]:
    """All scan leaves of a physical plan, in traversal order."""
    return [node for node in plan.walk() if isinstance(node, PhysScan)]


def datasets_of(plan: PhysicalPlan) -> set[str]:
    """Names of all datasets touched by the plan."""
    return {scan.dataset for scan in scans_of(plan)}


def expressions_of(node: PhysicalPlan) -> list[Expression]:
    """Every expression carried by one physical operator (not its children)."""
    expressions: list[Expression] = []
    if isinstance(node, (PhysSelect, PhysNestedLoopJoin)):
        if node.predicate is not None:
            expressions.append(node.predicate)
    elif isinstance(node, PhysUnnest):
        if node.predicate is not None:
            expressions.append(node.predicate)
    elif isinstance(node, PhysHashJoin):
        expressions.extend((node.left_key, node.right_key))
        if node.residual is not None:
            expressions.append(node.residual)
    elif isinstance(node, PhysReduce):
        expressions.extend(column.expression for column in node.columns)
    elif isinstance(node, PhysNest):
        expressions.extend(column.expression for column in node.columns)
        expressions.extend(node.group_by)
    elif isinstance(node, PhysSort):
        if isinstance(node.limit, Expression):
            expressions.append(node.limit)
    return expressions


def parameters_of(plan: PhysicalPlan) -> list[int | str]:
    """Query-parameter keys referenced anywhere in the plan, deduplicated in
    first-appearance order."""
    seen: dict[int | str, None] = {}
    for node in plan.walk():
        for expression in expressions_of(node):
            for parameter in iter_parameters(expression):
                seen.setdefault(parameter.key)
    return list(seen)
