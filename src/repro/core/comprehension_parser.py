"""Comprehension-syntax frontend.

For queries over nested data (and for producing nested output), Proteus
exposes a query comprehension syntax (§3, Example 3.1):

.. code-block:: text

    for { s1 <- Sailor, c <- s1.children, s2 <- Ship,
          p <- s2.personnel, s1.id = p.id, c.age > 18 }
    yield bag (s1.id, s2.name, c.name)

Inside the braces, a comma-separated list of qualifiers mixes generators
(``var <- Dataset`` or ``var <- bound.path``) and filter predicates.  The
``yield`` clause names the output monoid — a collection monoid (``bag``,
``set``, ``list``) followed by a parenthesised list of output expressions, or
an aggregate monoid (``sum``, ``count``, ``max``, ``min``, ``avg``) followed
by a single expression (``count`` may stand alone).  Output columns can be
named with ``expr as name``.

Query parameters (``?`` positional / ``:name`` named) are accepted anywhere a
scalar expression is, mirroring the SQL frontend: they parse into
:class:`~repro.core.expressions.Parameter` nodes bound at execution time.
"""

from __future__ import annotations

from repro.core.calculus import (
    Comprehension,
    DatasetSource,
    Filter,
    Generator,
    PathSource,
)
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    Literal,
    OutputColumn,
    Parameter,
    UnaryOp,
)
from repro.core.lexer import IDENT, NUMBER, STRING, SYMBOL, TokenStream
from repro.core.types import AGGREGATE_MONOIDS, COLLECTION_MONOIDS
from repro.errors import ParseError


def parse_comprehension(text: str) -> Comprehension:
    """Parse the comprehension syntax into a :class:`Comprehension`."""
    stream = TokenStream(text)
    parser = _ComprehensionParser(stream)
    comprehension = parser.parse()
    if not stream.at_end():
        raise stream.error(f"unexpected trailing input {stream.current.value!r}")
    comprehension.validate()
    return comprehension


class _ComprehensionParser:
    def __init__(self, stream: TokenStream):
        self.stream = stream
        self.bound_vars: set[str] = set()
        #: Number of ``?`` placeholders seen so far (0-based positional keys).
        self.positional_parameters = 0

    def parse(self) -> Comprehension:
        self.stream.expect(IDENT, "for")
        self.stream.expect(SYMBOL, "{")
        qualifiers = self._parse_qualifiers()
        self.stream.expect(SYMBOL, "}")
        self.stream.expect(IDENT, "yield")
        monoid, head = self._parse_yield()
        return Comprehension(monoid=monoid, head=head, qualifiers=qualifiers)

    # -- qualifiers ----------------------------------------------------------

    def _parse_qualifiers(self) -> list:
        qualifiers: list = []
        while True:
            qualifiers.append(self._parse_qualifier())
            if not self.stream.accept(SYMBOL, ","):
                break
        return qualifiers

    def _parse_qualifier(self):
        # ``ident <-`` introduces a generator; anything else is a filter.
        if self.stream.current.kind == IDENT and self.stream.peek().matches(SYMBOL, "<-"):
            var = self.stream.expect(IDENT).value
            self.stream.expect(SYMBOL, "<-")
            # ``var <- outer parent.path`` keeps parents with empty
            # collections (outer unnest).  The ``outer`` modifier only makes
            # sense before a source, so a following IDENT disambiguates it
            # from a source *named* outer (``x <- outer`` / ``x <- outer.f``).
            outer = False
            if (
                self.stream.current.kind == IDENT
                and self.stream.current.value.lower() == "outer"
                and self.stream.peek().kind == IDENT
            ):
                self.stream.advance()
                outer = True
            source = self._parse_source()
            if outer and not isinstance(source, PathSource):
                raise self.stream.error(
                    "the outer modifier applies to path generators only"
                )
            self.bound_vars.add(var)
            return Generator(var, source, outer)
        return Filter(self._parse_expression())

    def _parse_source(self):
        name = self.stream.expect(IDENT).value
        path: list[str] = []
        while self.stream.current.matches(SYMBOL, ".") and self.stream.peek().kind == IDENT:
            self.stream.advance()
            path.append(self.stream.expect(IDENT).value)
        if path:
            if name not in self.bound_vars:
                raise self.stream.error(
                    f"path generator over unbound variable {name!r}"
                )
            return PathSource(name, tuple(path))
        return DatasetSource(name)

    # -- yield clause --------------------------------------------------------

    def _parse_yield(self) -> tuple[str, list[OutputColumn]]:
        monoid_token = self.stream.expect(IDENT)
        monoid = monoid_token.value.lower()
        if monoid in COLLECTION_MONOIDS:
            self.stream.expect(SYMBOL, "(")
            head = self._parse_output_list()
            self.stream.expect(SYMBOL, ")")
            return "bag" if monoid == "bag" else monoid, head
        if monoid in AGGREGATE_MONOIDS:
            argument: Expression | None = None
            if self.stream.accept(SYMBOL, "("):
                if not self.stream.current.matches(SYMBOL, ")"):
                    argument = self._parse_expression()
                self.stream.expect(SYMBOL, ")")
            elif not self.stream.at_end():
                argument = self._parse_expression()
            if monoid != "count" and argument is None:
                raise self.stream.error(f"aggregate monoid {monoid!r} requires an argument")
            column = OutputColumn(monoid, AggregateCall(monoid, argument))
            return "bag", [column]
        raise ParseError(
            f"unknown output monoid {monoid!r}", monoid_token.position, self.stream.text
        )

    def _parse_output_list(self) -> list[OutputColumn]:
        columns: list[OutputColumn] = []
        index = 0
        while True:
            expression = self._parse_expression()
            name = None
            if self.stream.accept_keyword("as"):
                name = self.stream.expect(IDENT).value
            if name is None:
                name = _default_name(expression, index, [c.name for c in columns])
            columns.append(OutputColumn(name, expression))
            index += 1
            if not self.stream.accept(SYMBOL, ","):
                break
        return columns

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.stream.accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.stream.accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.stream.accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        for symbol, op in (
            ("<=", "<="), (">=", ">="), ("!=", "!="), ("<>", "!="),
            ("==", "="), ("=", "="), ("<", "<"), (">", ">"),
        ):
            if self.stream.accept(SYMBOL, symbol):
                return BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self.stream.accept(SYMBOL, "+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self.stream.accept(SYMBOL, "-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            if self.stream.accept(SYMBOL, "*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self.stream.accept(SYMBOL, "/"):
                left = BinaryOp("/", left, self._parse_unary())
            elif self.stream.accept(SYMBOL, "%"):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.stream.accept(SYMBOL, "-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.stream.current
        if token.kind == NUMBER:
            self.stream.advance()
            return Literal(float(token.value) if "." in token.value else int(token.value))
        if token.kind == STRING:
            self.stream.advance()
            return Literal(token.value)
        if token.kind == SYMBOL and token.value == "(":
            self.stream.advance()
            inner = self._parse_expression()
            self.stream.expect(SYMBOL, ")")
            return inner
        if token.kind == SYMBOL and token.value == "?":
            self.stream.advance()
            index = self.positional_parameters
            self.positional_parameters += 1
            return Parameter(index)
        if token.kind == SYMBOL and token.value == ":":
            self.stream.advance()
            name = self.stream.expect(IDENT).value
            return Parameter(name)
        if token.kind == IDENT:
            lowered = token.value.lower()
            if lowered in ("true", "false"):
                self.stream.advance()
                return Literal(lowered == "true")
            if lowered in AGGREGATE_MONOIDS and self.stream.peek().matches(SYMBOL, "("):
                func = self.stream.advance().value.lower()
                self.stream.expect(SYMBOL, "(")
                argument: Expression | None = None
                if not self.stream.current.matches(SYMBOL, ")"):
                    argument = self._parse_expression()
                self.stream.expect(SYMBOL, ")")
                return AggregateCall(func, argument)
            return self._parse_path()
        raise self.stream.error(f"unexpected token {token.value!r} in expression")

    def _parse_path(self) -> Expression:
        binding = self.stream.expect(IDENT).value
        if binding not in self.bound_vars:
            raise self.stream.error(
                f"reference to unbound variable {binding!r}; "
                f"bound variables are {sorted(self.bound_vars)}"
            )
        path: list[str] = []
        while self.stream.current.matches(SYMBOL, ".") and self.stream.peek().kind == IDENT:
            self.stream.advance()
            path.append(self.stream.expect(IDENT).value)
        return FieldRef(binding, tuple(path))


def _default_name(expression: Expression, index: int, taken: list[str]) -> str:
    if isinstance(expression, FieldRef) and expression.path:
        candidate = expression.path[-1]
    elif isinstance(expression, FieldRef):
        candidate = expression.binding
    elif isinstance(expression, AggregateCall):
        candidate = expression.func
    else:
        candidate = f"col{index}"
    if candidate in taken:
        suffix = 1
        while f"{candidate}_{suffix}" in taken:
            suffix += 1
        candidate = f"{candidate}_{suffix}"
    return candidate
