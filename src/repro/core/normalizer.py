"""Calculus normalization.

Before a comprehension is translated to the algebra, Proteus normalizes it
(§4, "Query Optimization"): predicates are split into conjuncts and pushed as
early as possible (selection pushdown at the calculus level), constants are
folded, and trivially true filters are dropped.  The result is an equivalent
comprehension whose qualifier order already reflects where each filter can be
evaluated, which the translator then maps onto Select/Join/Unnest operators.
"""

from __future__ import annotations

from repro.core.calculus import Comprehension, Filter, Generator, Qualifier, split_filters
from repro.core.expressions import (
    BinaryOp,
    Expression,
    FieldRef,
    IfThenElse,
    Literal,
    UnaryOp,
)


def normalize(comprehension: Comprehension) -> Comprehension:
    """Return an equivalent, normalized comprehension."""
    qualifiers = split_filters(comprehension.qualifiers)
    qualifiers = [_normalize_qualifier(q) for q in qualifiers]
    qualifiers = [q for q in qualifiers if not _is_trivially_true(q)]
    qualifiers = _push_filters_early(qualifiers)
    normalized = Comprehension(
        monoid=comprehension.monoid,
        head=list(comprehension.head),
        qualifiers=qualifiers,
        group_by=list(comprehension.group_by),
        order_by=list(comprehension.order_by),
        limit=comprehension.limit,
    )
    normalized.validate()
    return normalized


def _normalize_qualifier(qualifier: Qualifier) -> Qualifier:
    if isinstance(qualifier, Filter):
        return Filter(fold_constants(qualifier.predicate))
    return qualifier


def _is_trivially_true(qualifier: Qualifier) -> bool:
    return (
        isinstance(qualifier, Filter)
        and isinstance(qualifier.predicate, Literal)
        and qualifier.predicate.value is True
    )


def _push_filters_early(qualifiers: list[Qualifier]) -> list[Qualifier]:
    """Place each filter immediately after the last generator it depends on.

    Generators keep their relative order (it matters for path generators);
    filters that depend on no generator float to the front.
    """
    generators = [q for q in qualifiers if isinstance(q, Generator)]
    filters = [q for q in qualifiers if isinstance(q, Filter)]

    # For each filter, find the index (in generator order) after which all of
    # its referenced bindings are available.
    generator_index = {g.var: i for i, g in enumerate(generators)}
    placed: dict[int, list[Filter]] = {i: [] for i in range(-1, len(generators))}
    for filt in filters:
        refs = filt.predicate.bindings()
        if not refs:
            placed[-1].append(filt)
            continue
        last = max(generator_index.get(ref, len(generators) - 1) for ref in refs)
        placed[last].append(filt)

    result: list[Qualifier] = list(placed[-1])
    for index, generator in enumerate(generators):
        result.append(generator)
        result.extend(placed[index])
    return result


def fold_constants(expression: Expression) -> Expression:
    """Fold constant sub-expressions (e.g. ``1 + 2`` becomes ``3``)."""
    if isinstance(expression, BinaryOp):
        left = fold_constants(expression.left)
        right = fold_constants(expression.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            folded = BinaryOp(expression.op, left, right).evaluate({})
            return Literal(folded)
        # Boolean simplifications with one constant side.
        if expression.op == "and":
            if isinstance(left, Literal):
                return right if left.value else Literal(False)
            if isinstance(right, Literal):
                return left if right.value else Literal(False)
        if expression.op == "or":
            if isinstance(left, Literal):
                return Literal(True) if left.value else right
            if isinstance(right, Literal):
                return Literal(True) if right.value else left
        return BinaryOp(expression.op, left, right)
    if isinstance(expression, UnaryOp):
        operand = fold_constants(expression.operand)
        if isinstance(operand, Literal):
            return Literal(UnaryOp(expression.op, operand).evaluate({}))
        return UnaryOp(expression.op, operand)
    if isinstance(expression, IfThenElse):
        condition = fold_constants(expression.condition)
        then = fold_constants(expression.then)
        otherwise = fold_constants(expression.otherwise)
        if isinstance(condition, Literal):
            return then if condition.value else otherwise
        return IfThenElse(condition, then, otherwise)
    if isinstance(expression, FieldRef) or isinstance(expression, Literal):
        return expression
    return expression
