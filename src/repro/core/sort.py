"""Columnar sort subsystem: ORDER BY / LIMIT as specialized kernels.

The paper's thesis is that specializing the execution path to the query and
data shape beats a generic interpreter.  ORDER BY used to be the one stage
where every tier ran the generic path: the engine boxed each buffer into
Python objects and ran ``list.sort`` with per-element lambda keys.  This
module replaces that epilogue with dtype-specialized kernels, chosen per key
column at execution time:

* **lexsort** — one stable :func:`numpy.lexsort` permutation over
  *key-transform* arrays.  Each key column is encoded into at most two NumPy
  arrays whose ascending order equals the requested column order: descending
  integers are bit-inverted (``~x``, overflow-free), descending floats are
  negated, descending strings are mapped to negated factorization codes, and
  missing values (``None``/NaN) get a dedicated boolean subkey so they sort
  NULLS LAST in *both* directions.  No Python object is ever boxed.
* **topk** — when a LIMIT accompanies ORDER BY, :func:`numpy.partition`
  selects the candidate rows whose primary key can reach the top K, and only
  those are lexsorted.  :class:`TopKAccumulator` is the streaming variant the
  batch tiers use: at most K rows survive each pushed batch, so a 1M-row
  ``ORDER BY x LIMIT 10`` never materializes more than a few thousand
  candidate rows.
* **object-fallback** — object columns holding values the encoders cannot
  represent exactly (mixed types, huge Python ints, records) keep the old
  comparator semantics, with uncomparable mixed types surfaced as a clear
  :class:`~repro.errors.ExecutionError` instead of a raw ``TypeError``.
* **parallel-merge** — the morsel-driven tier sorts each morsel's partial
  result locally (inside the workers) and the root merges the sorted runs
  with a deterministic k-way merge (:func:`merge_sorted_runs`) instead of
  re-sorting everything serially.

All strategies implement identical ordering semantics: stable (ties keep the
input order), NULLS LAST in both directions, and multi-key ascending /
descending mixes.  :data:`ExecutionProfile.sort_strategy` records which one
served a query.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core import types as t
from repro.core.expressions import Expression, parameter_env
from repro.errors import ExecutionError, ProteusError

#: One ORDER BY key: (output column name, ascending?).
SortKey = tuple[str, bool]

STRATEGY_LEXSORT = "lexsort"
STRATEGY_TOPK = "topk"
STRATEGY_FALLBACK = "object-fallback"
STRATEGY_PARALLEL_MERGE = "parallel-merge"

#: Integers beyond ±2**53 are not exactly representable as float64; object
#: columns holding them cannot be float-encoded without reordering risk.
_FLOAT_EXACT_INT = 2**53


# ---------------------------------------------------------------------------
# LIMIT validation (shared by the literal and the parameter path)
# ---------------------------------------------------------------------------


def validate_order_columns(
    names: Sequence[str],
    available: "Mapping[str, Any] | Sequence[str]",
    order_by: Sequence[SortKey],
) -> None:
    """Every ORDER BY key must name an output column (shared by the planner,
    which checks at plan time, and :func:`sort_columns` for direct callers)."""
    for column, _ in order_by:
        if column not in available:
            raise ExecutionError(
                f"ORDER BY column {column!r} is not part of the result "
                f"projection; output columns: {list(names)}"
            )


def validate_limit(value: int, display: str = "LIMIT") -> int:
    """Validate an already-integer LIMIT value; negative limits are rejected
    identically whether they were written literally or bound to a parameter."""
    if value < 0:
        raise ProteusError(f"{display} must not be negative, got {value}")
    return value


def resolve_limit(
    limit: "int | Expression | None",
    params: Mapping[int | str, object] | None = None,
) -> int | None:
    """Resolve a LIMIT clause to a validated non-negative int (or ``None``).

    ``limit`` is either a literal int or a ``Parameter`` expression bound at
    execution time; both paths run through :func:`validate_limit`, so a
    negative ``LIMIT -3`` and a negative ``LIMIT ?`` binding fail with the
    same error.
    """
    if limit is None:
        return None
    if isinstance(limit, Expression):
        value = limit.evaluate(parameter_env(params))
        display = f"LIMIT parameter {limit.display}"
        if isinstance(value, np.integer):
            value = int(value)
        elif isinstance(value, float) and value.is_integer():
            value = int(value)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProteusError(
                f"{display} must be an integer, got {value!r}"
            )
        return validate_limit(value, display)
    return validate_limit(int(limit))


# ---------------------------------------------------------------------------
# Key-transform encoding
# ---------------------------------------------------------------------------


def _encode_key(
    buffer: Any, ascending: bool, assume_present: bool = False
) -> list[np.ndarray] | None:
    """Encode one key column into lexsort subkeys, or ``None`` when only the
    object-fallback comparator can order it.

    Returns the subkeys **most significant first**: the optional missing-mask
    (``False`` = present, so missing rows sort last in both directions)
    followed by the value transform whose ascending order is the requested
    column order.

    ``assume_present`` is the static analyzer's non-nullable hint: the
    missing-value scans (``np.isnan`` over floats, the per-element probe over
    object columns) are skipped entirely.  The hint is safe even when wrong
    for float columns — NaN compares last under NumPy sorts natively, and
    negation keeps NaN as NaN, so NULLS LAST semantics are preserved in both
    directions; a spurious hint only costs the dedicated subkey.
    """
    values = buffer if isinstance(buffer, np.ndarray) else np.asarray(buffer, dtype=object)
    kind = values.dtype.kind
    if kind in "iu":
        return [values if ascending else ~values]
    if kind == "b":
        return [values if ascending else ~values]
    if kind == "f":
        if assume_present:
            return [values if ascending else -values]
        missing = np.isnan(values)
        key = values if ascending else -values
        if missing.any():
            return [missing, np.where(missing, 0.0, key)]
        return [key]
    if kind in "US":
        if ascending:
            return [values]
        _, codes = np.unique(values, return_inverse=True)
        return [-codes.astype(np.int64)]
    if kind == "O":
        return _encode_object_key(values, ascending, assume_present)
    return None


def _encode_object_key(
    values: np.ndarray, ascending: bool, assume_present: bool = False
) -> list[np.ndarray] | None:
    """Encode an object column when its present values are uniformly strings
    or exactly-representable numbers; otherwise defer to the comparator.

    ``assume_present`` removes every per-element piece of mask handling: the
    missing scan, the mask side of the type probe, and the conditional
    blank-for-missing materialization.  The type-uniformity probe itself
    still runs regardless — a mixed-type column must keep raising its clear
    error through the fallback comparator, hint or no hint (and a value the
    hint wrongly promised present fails that probe, so a stale hint falls
    back to the comparator instead of mis-sorting).
    """
    items = values.tolist()
    if assume_present:
        missing = None
    else:
        missing = np.fromiter(
            (t.is_missing(v) for v in items), dtype=bool, count=len(items)
        )
    all_str = True
    all_num = True
    probed = items if missing is None else (
        value for value, absent in zip(items, missing) if not absent
    )
    for value in probed:
        if isinstance(value, str):
            all_num = False
            if not all_str:
                return None
        elif isinstance(value, (bool, int, float, np.integer, np.floating, np.bool_)):
            all_str = False
            if not all_num:
                return None
            if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
                if value > _FLOAT_EXACT_INT or value < -_FLOAT_EXACT_INT:
                    return None  # float64 would collapse distinct keys
        else:
            return None
    if all_num and not all_str:
        if missing is None:
            key = np.fromiter(
                (float(value) for value in items), dtype=np.float64, count=len(items)
            )
        else:
            key = np.fromiter(
                (
                    0.0 if absent else float(value)
                    for value, absent in zip(items, missing)
                ),
                dtype=np.float64,
                count=len(items),
            )
        if not ascending:
            key = -key
        return [key] if missing is None or not missing.any() else [missing, key]
    # Uniform strings (or an all-missing column, encoded as empty strings
    # under a missing mask that dominates them).
    if missing is None:
        strings = np.array(items)
    else:
        strings = np.array(
            ["" if absent else value for value, absent in zip(items, missing)]
        )
    if strings.dtype.kind not in "US":  # zero rows degenerate to float64
        strings = strings.astype(str)
    if ascending:
        key = strings
    else:
        _, codes = np.unique(strings, return_inverse=True)
        key = -codes.astype(np.int64)
    return [key] if missing is None or not missing.any() else [missing, key]


def _lexsort_keys(
    data: Mapping[str, Any],
    order_by: Sequence[SortKey],
    non_null: frozenset[str] = frozenset(),
) -> tuple[list[np.ndarray], list[np.ndarray]] | None:
    """All lexsort subkeys for an ORDER BY, in :func:`numpy.lexsort` order
    (least significant first, primary key last), plus the primary column's
    own subkeys (most significant first — the top-K kernel partitions on
    them); ``None`` when any key column requires the object fallback.
    ``non_null`` names key columns proven non-nullable by the static
    analyzer — their missing-value scans are skipped."""
    keys: list[np.ndarray] = []
    primary: list[np.ndarray] = []
    for column, ascending in reversed(order_by):
        encoded = _encode_key(data[column], ascending, column in non_null)
        if encoded is None:
            return None
        keys.extend(reversed(encoded))  # least significant subkey first
        primary = encoded
    return keys, primary


# ---------------------------------------------------------------------------
# Permutation kernels
# ---------------------------------------------------------------------------


def _topk_permutation(
    keys: list[np.ndarray], primary: list[np.ndarray], k: int, length: int
) -> np.ndarray:
    """Indices of the first ``k`` rows of the stable lexsort order, computed
    without sorting every row: ``np.partition`` on the primary key bounds the
    candidate set, and only candidates are lexsorted."""
    if k >= length:
        return np.lexsort(tuple(keys))
    if len(primary) == 2:
        # The primary column carries a missing-mask subkey (the more
        # significant one); candidates are selected among present rows first.
        missing, primary_values = primary
    else:
        missing, primary_values = None, primary[0]
    if missing is not None and missing.any():
        present = np.nonzero(~missing)[0]
        if len(present) < k:
            # Not enough present rows: every present row qualifies and the
            # remainder comes from the missing tail — sort everything.
            return np.lexsort(tuple(keys))[:k]
        present_values = primary_values[present]
        bound = np.partition(present_values, k - 1)[k - 1]
        candidates = present[present_values <= bound]
    else:
        bound = np.partition(primary_values, k - 1)[k - 1]
        candidates = np.nonzero(primary_values <= bound)[0]
    order = np.lexsort(tuple(key[candidates] for key in keys))
    return candidates[order][:k]


class _FallbackKey:
    """Comparator wrapper of the object-fallback strategy.

    Implements descending order by inverting ``<`` and converts the
    ``TypeError`` Python raises for uncomparable mixed types into a clear
    :class:`ExecutionError` naming the column and both offending types.
    """

    __slots__ = ("column", "value", "descending")

    def __init__(self, column: str, value: Any, descending: bool):
        self.column = column
        self.value = value
        self.descending = descending

    def _compare(self, left: Any, right: Any) -> bool:
        try:
            return left < right
        except TypeError:
            first, second = sorted((type(left).__name__, type(right).__name__))
            raise ExecutionError(
                f"ORDER BY column {self.column!r} mixes uncomparable value "
                f"types {first} and {second}; give the column a uniform type "
                "or cast it in the projection"
            ) from None

    def __eq__(self, other: "_FallbackKey") -> bool:
        try:
            return bool(self.value == other.value)
        except TypeError:  # pragma: no cover - defensive (== rarely raises)
            return False

    def __lt__(self, other: "_FallbackKey") -> bool:
        if self.descending:
            return self._compare(other.value, self.value)
        return self._compare(self.value, other.value)


def _fallback_permutation(
    data: Mapping[str, Any], order_by: Sequence[SortKey], length: int
) -> list[int]:
    """The object-fallback permutation: per-key stable passes of ``list.sort``
    over ``(is_missing, comparator)`` tuples — NULLS LAST in both directions,
    identical tie semantics to the kernels."""
    indices = list(range(length))
    for column, ascending in reversed(order_by):
        buffer = data[column]
        values = buffer.tolist() if isinstance(buffer, np.ndarray) else list(buffer)
        values = [None if t.is_missing(v) else t.python_value(v) for v in values]
        indices.sort(
            key=lambda i, values=values, column=column, descending=not ascending: (
                values[i] is None,
                _FallbackKey(column, values[i], descending),
            )
        )
    return indices


def _take(buffer: Any, indices: Any):
    """Gather a columnar buffer by a permutation (array or list backed)."""
    if isinstance(buffer, np.ndarray):
        return buffer[np.asarray(indices, dtype=np.int64)]
    return [buffer[i] for i in indices]


# ---------------------------------------------------------------------------
# The one-shot entry point
# ---------------------------------------------------------------------------


def sort_columns(
    names: Sequence[str],
    length: int,
    data: Mapping[str, Any],
    order_by: Sequence[SortKey],
    limit: int | None,
    non_null: frozenset[str] = frozenset(),
) -> tuple[int, dict[str, Any], str | None]:
    """Apply ORDER BY / LIMIT to a columnar result in place of row boxing.

    Returns ``(row count, column buffers, strategy)`` where ``strategy`` is
    the kernel that ran (``lexsort`` / ``topk`` / ``object-fallback``), or
    ``None`` when there was nothing to sort (pure LIMIT).  One permutation is
    computed over the key columns and every buffer is gathered through it —
    rows are never materialized.  Missing values sort NULLS LAST in both
    directions.  ``non_null`` (the static analyzer's nullability hints) lets
    the key encoders skip their missing-value scans for the named columns.
    """
    data = dict(data)
    if not order_by:
        if limit is not None and limit < length:
            return limit, {n: b[:limit] for n, b in data.items()}, None
        return length, data, None
    validate_order_columns(list(names), data, order_by)
    if limit == 0:
        return 0, {n: b[:0] for n, b in data.items()}, STRATEGY_TOPK
    encoded = _lexsort_keys(data, order_by, non_null)
    if encoded is None:
        indices = _fallback_permutation(data, order_by, length)
        if limit is not None:
            indices = indices[:limit]
        strategy = STRATEGY_FALLBACK
    elif limit is not None:
        # The strategy names the query shape (ORDER BY bounded by a LIMIT),
        # so it reads identically on every tier — the streaming accumulator
        # cannot know whether K exceeds the final row count, and the
        # permutation below degenerates to a full lexsort when it does.
        keys, primary = encoded
        indices = _topk_permutation(keys, primary, limit, length)
        strategy = STRATEGY_TOPK
    else:
        indices = np.lexsort(tuple(encoded[0]))
        strategy = STRATEGY_LEXSORT
    gathered = {name: _take(buffer, indices) for name, buffer in data.items()}
    return len(indices), gathered, strategy


# ---------------------------------------------------------------------------
# Streaming top-K (the batch tiers' bounded sort)
# ---------------------------------------------------------------------------


class TopKAccumulator:
    """Bounded streaming ORDER BY + LIMIT over columnar batches.

    Each pushed batch is pruned to its own top ``k`` rows (stable, so the
    earliest rows win ties), the survivors accumulate as candidate chunks,
    and the candidate set is re-compacted to ``k`` whenever it outgrows its
    budget — no more than ``max(4k, 4096)`` rows are ever held, regardless of
    input size.  ``finish`` runs the final bounded sort.

    Correctness does not depend on cross-batch key encoding: every internal
    sort runs :func:`sort_columns` over raw buffers, so a batch whose keys
    need the object fallback is simply pruned by the fallback comparator.
    """

    def __init__(
        self,
        names: Sequence[str],
        order_by: Sequence[SortKey],
        k: int,
        non_null: frozenset[str] = frozenset(),
    ):
        self.names = list(names)
        self.order_by = list(order_by)
        self.k = int(k)
        self.non_null = frozenset(non_null)
        self._chunks: dict[str, list] = {name: [] for name in self.names}
        self._total = 0
        self._budget = max(4 * self.k, 4096)
        self._fallback = False
        #: Rows that entered a sort kernel (mirrored into the profile).
        self.rows_sorted = 0

    def push(self, columns: Mapping[str, Any], count: int) -> None:
        """Offer one batch of output columns; at most ``k`` rows survive."""
        if count == 0:
            return
        if count > self.k:
            self.rows_sorted += count
            count, columns, strategy = sort_columns(
                self.names, count, columns, self.order_by, self.k, self.non_null
            )
            self._note(strategy)
        for name in self._chunks:  # dict-keyed: duplicate names append once
            self._chunks[name].append(columns[name])
        self._total += count
        if self._total > self._budget:
            self._compact()

    def _note(self, strategy: str | None) -> None:
        if strategy == STRATEGY_FALLBACK:
            self._fallback = True

    def _materialize(self) -> dict[str, Any]:
        return {
            name: concat_chunks(chunks) for name, chunks in self._chunks.items()
        }

    def _compact(self) -> None:
        columns = self._materialize()
        self.rows_sorted += self._total
        length, columns, strategy = sort_columns(
            self.names, self._total, columns, self.order_by, self.k, self.non_null
        )
        self._note(strategy)
        self._chunks = {name: [columns[name]] for name in self.names}
        self._total = length

    def finish(self) -> tuple[int, dict[str, Any], str]:
        """The final top-``k`` rows, sorted: ``(count, columns, strategy)``."""
        columns = self._materialize()
        self.rows_sorted += self._total
        length, columns, strategy = sort_columns(
            self.names, self._total, columns, self.order_by, self.k, self.non_null
        )
        self._note(strategy)
        return (
            length,
            columns,
            STRATEGY_FALLBACK if self._fallback else STRATEGY_TOPK,
        )


def concat_chunks(chunks: list) -> Any:
    """Concatenate columnar chunks into one buffer, tolerating list-backed
    buffers; an empty chunk list degenerates to an empty float64 column (the
    batch tiers' convention for "no rows at all")."""
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    if len(chunks) == 1:
        return chunks[0]
    if all(isinstance(chunk, np.ndarray) for chunk in chunks):
        return np.concatenate(chunks)
    merged: list = []
    for chunk in chunks:
        merged.extend(chunk.tolist() if isinstance(chunk, np.ndarray) else chunk)
    return merged


# ---------------------------------------------------------------------------
# Sorted runs and the deterministic k-way merge (parallel tier)
# ---------------------------------------------------------------------------


def merge_encodable(buffer: Any) -> bool:
    """Whether a key buffer's encoding is *element-wise* (numeric/boolean —
    independent of the other runs' values) and therefore comparable across
    sorted runs; string factorization codes are run-local and are not."""
    return isinstance(buffer, np.ndarray) and buffer.dtype.kind in "iubf"


def _mergeable_single_key(
    runs: Sequence[tuple[int, Mapping[str, Any]]],
    order_by: Sequence[SortKey],
    non_null: frozenset[str] = frozenset(),
) -> list[tuple[np.ndarray, np.ndarray | None]] | None:
    """Per-run ``(value key, missing mask)`` encodings for a k-way merge, or
    ``None`` when the runs must be merged by re-sorting.

    Only a single ORDER BY key whose encoding is merge-encodable (see
    :func:`merge_encodable`) can be merged by value comparison.
    """
    if len(order_by) != 1:
        return None
    column, ascending = order_by[0]
    buffers: list[np.ndarray] = []
    for _, data in runs:
        buffer = data[column]
        if not merge_encodable(buffer):
            return None
        if buffer.dtype.kind == "b":
            buffer = buffer.astype(np.int8)
        buffers.append(buffer)
    kinds = {buffer.dtype.kind for buffer in buffers}
    if "u" in kinds and "i" in kinds:
        # Promoting mixed signed/unsigned comparisons goes through float64;
        # the re-sort path is exact.
        return None
    if "f" in kinds and kinds & {"i", "u"}:
        # Mixed runs (a nullable int column materializes float64 for ranges
        # containing a null, int64 otherwise): the key spaces differ — a
        # descending int encodes as ``~x`` but a descending float as ``-x``
        # — so all runs must be compared in one space.  float64 represents
        # every int up to ±2**53 exactly; beyond that the re-sort path is
        # the exact one.
        for buffer in buffers:
            if buffer.dtype.kind in "iu" and len(buffer) and (
                int(buffer.min()) < -_FLOAT_EXACT_INT
                or int(buffer.max()) > _FLOAT_EXACT_INT
            ):
                return None
        buffers = [
            buffer.astype(np.float64) if buffer.dtype.kind in "iu" else buffer
            for buffer in buffers
        ]
    encoded_runs: list[tuple[np.ndarray, np.ndarray | None]] = []
    for buffer in buffers:
        keys = _encode_key(buffer, ascending, column in non_null)
        if keys is None:  # pragma: no cover - numeric kinds always encode
            return None
        encoded_runs.append((keys[-1], keys[0] if len(keys) == 2 else None))
    return encoded_runs


def _merge_two_sorted(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of two sorted key arrays inside their merged order.

    Ties place every left element before every right element (the runs are
    merged in morsel order, matching a stable sort of the concatenation).
    """
    insert = np.searchsorted(left_keys, right_keys, side="right")
    total = len(left_keys) + len(right_keys)
    right_positions = insert + np.arange(len(right_keys), dtype=np.int64)
    left_mask = np.ones(total, dtype=bool)
    left_mask[right_positions] = False
    left_positions = np.nonzero(left_mask)[0]
    return left_positions, right_positions


def merge_sorted_runs(
    names: Sequence[str],
    runs: Sequence[tuple[int, Mapping[str, Any]]],
    order_by: Sequence[SortKey],
    limit: int | None,
    non_null: frozenset[str] = frozenset(),
) -> tuple[int, dict[str, Any], str | None]:
    """Merge per-morsel sorted runs into one globally sorted result.

    Runs must be given in morsel order.  Each run must already be sorted by
    ``order_by`` when its key buffer is merge-encodable (and truncated to
    ``limit`` rows when one applies); runs that fall to the re-sort path —
    multi-key, string/object keys — need not be pre-sorted, since the
    concatenation is re-sorted with the regular kernels.  Ties across runs
    resolve in run order, so the output is identical to a stable sort of the
    morsel-ordered concatenation — bit-identical to the serial tier, at any
    worker count.

    Single numeric/boolean keys are merged with a vectorized k-way merge
    (pairwise :func:`numpy.searchsorted` passes over the already-sorted
    runs); within each run missing values form a sorted NULLS LAST suffix,
    so present prefixes are merged by value and missing suffixes are
    concatenated in run order.  Everything else (multi-key, string keys)
    re-sorts the concatenation with the regular kernels.  Returns
    ``(row count, columns, strategy)`` with strategy ``parallel-merge`` for
    the merge path or the re-sort kernel's name otherwise.
    """
    populated = [run for run in runs if run[0] > 0]
    if not populated:
        if runs:
            # Keep the columns' real dtypes: slice the (empty) run buffers
            # instead of fabricating float64 columns.
            _, data = runs[0]
            return 0, {name: data[name][:0] for name in names}, None
        return 0, {name: np.zeros(0, dtype=np.float64) for name in names}, None
    runs = populated
    if not order_by:
        length, data = _concat_runs(names, runs)
        length, data = _slice_limit(length, data, limit)
        return length, data, None
    encoded = _mergeable_single_key(runs, order_by, non_null)
    if len(runs) == 1 and encoded is not None:
        # A single merge-encodable run is pre-sorted by contract; runs on
        # the re-sort path may have been handed over raw, so they take the
        # sort below even when alone.
        length, data = runs[0]
        sliced = _slice_limit(length, data, limit)
        return (*sliced, STRATEGY_PARALLEL_MERGE)
    if encoded is None:
        length, data = _concat_runs(names, runs)
        return sort_columns(names, length, data, order_by, limit, non_null)
    # Global positions of each run inside the concatenation.
    offsets = np.cumsum([0] + [length for length, _ in runs])
    segments: list[np.ndarray] = []  # merged present rows, as global indices
    missing_tails: list[np.ndarray] = []
    merged_keys: list[np.ndarray] = []
    for run_index, ((length, _), (value_key, missing)) in enumerate(zip(runs, encoded)):
        positions = np.arange(length, dtype=np.int64) + offsets[run_index]
        if missing is not None and missing.any():
            present = int(np.count_nonzero(~missing))
            missing_tails.append(positions[present:])
            positions, value_key = positions[:present], value_key[:present]
        segments.append(positions)
        merged_keys.append(value_key)
    while len(segments) > 1:
        next_segments: list[np.ndarray] = []
        next_keys: list[np.ndarray] = []
        for index in range(0, len(segments) - 1, 2):
            left_pos, right_pos = _merge_two_sorted(
                merged_keys[index], merged_keys[index + 1]
            )
            positions = np.empty(
                len(segments[index]) + len(segments[index + 1]), dtype=np.int64
            )
            keys = np.empty(
                len(positions),
                dtype=np.result_type(merged_keys[index], merged_keys[index + 1]),
            )
            positions[left_pos] = segments[index]
            positions[right_pos] = segments[index + 1]
            keys[left_pos] = merged_keys[index]
            keys[right_pos] = merged_keys[index + 1]
            next_segments.append(positions)
            next_keys.append(keys)
        if len(segments) % 2:
            next_segments.append(segments[-1])
            next_keys.append(merged_keys[-1])
        segments, merged_keys = next_segments, next_keys
    order = segments[0]
    if missing_tails:
        order = np.concatenate([order] + missing_tails)
    if limit is not None:
        order = order[:limit]
    length, data = _concat_runs(names, runs)
    gathered = {name: _take(buffer, order) for name, buffer in data.items()}
    return len(order), gathered, STRATEGY_PARALLEL_MERGE


def _concat_runs(
    names: Sequence[str], runs: Sequence[tuple[int, Mapping[str, Any]]]
) -> tuple[int, dict[str, Any]]:
    data = {
        name: concat_chunks([run_data[name] for _, run_data in runs])
        for name in names
    }
    return sum(length for length, _ in runs), data


def _slice_limit(
    length: int, data: Mapping[str, Any], limit: int | None
) -> tuple[int, dict[str, Any]]:
    if limit is not None and limit < length:
        return limit, {name: buffer[:limit] for name, buffer in data.items()}
    return length, dict(data)
