"""Expression AST of the nested relational algebra.

Expressions appear in selection predicates, join predicates, projection /
aggregation heads, group-by keys and cache definitions.  They reference fields
of *bindings* — the variables introduced by generators in the calculus (and by
scans/unnests in the algebra) — through possibly nested paths, which is how
the engine reaches into JSON hierarchies.

Every expression supports three independent consumers:

* ``evaluate(env)`` — tuple-at-a-time interpretation, used by the Volcano
  executor and by the baseline engines,
* ``fingerprint()`` — a structural key used by the caching manager when
  matching plans against materialized caches,
* the vectorized code generator (``repro.core.codegen.expr_gen``) walks the
  same AST to emit NumPy source for the per-query specialized engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core import types as t
from repro.errors import ExecutionError, SchemaError

# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------


class Expression:
    """Base class of all expressions."""

    def children(self) -> tuple["Expression", ...]:
        return ()

    # -- analysis -----------------------------------------------------------

    def referenced_fields(self) -> set[tuple[str, tuple[str, ...]]]:
        """Return the set of ``(binding, path)`` pairs this expression reads."""
        refs: set[tuple[str, tuple[str, ...]]] = set()
        for child in self.children():
            refs |= child.referenced_fields()
        return refs

    def bindings(self) -> set[str]:
        """Return the names of all bindings this expression depends on."""
        return {binding for binding, _ in self.referenced_fields()}

    def fingerprint(self) -> tuple:
        """A hashable structural key identifying this expression."""
        raise NotImplementedError

    # -- transformation -----------------------------------------------------

    def substitute_binding(self, old: str, new: str) -> "Expression":
        """Return a copy with references to binding ``old`` renamed to ``new``."""
        return self._rebuild([c.substitute_binding(old, new) for c in self.children()])

    def _rebuild(self, children: Sequence["Expression"]) -> "Expression":
        if not children:
            return self
        raise NotImplementedError

    # -- interpretation -----------------------------------------------------

    def evaluate(self, env: Mapping[str, object]) -> object:
        """Evaluate the expression against an environment of bound values."""
        raise NotImplementedError

    # -- typing -------------------------------------------------------------

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        """Infer the result type given the record type of each binding."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return to_string(self)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: object, dtype: t.DataType | None = None):
        self.value = value
        self.dtype = dtype if dtype is not None else t.infer_type(value)

    def fingerprint(self) -> tuple:
        return ("lit", self.value, self.dtype.name)

    def evaluate(self, env: Mapping[str, object]) -> object:
        return self.value

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        return self.dtype


class FieldRef(Expression):
    """A reference to a (possibly nested) field of a binding.

    ``FieldRef("l", ("quantity",))`` is ``l.quantity``;
    ``FieldRef("s", ("address", "city"))`` is ``s.address.city``;
    ``FieldRef("x", ())`` denotes the bound value itself (useful after an
    unnest of a collection of primitives).
    """

    def __init__(self, binding: str, path: Sequence[str] = ()):
        self.binding = binding
        self.path = tuple(path)

    def fingerprint(self) -> tuple:
        return ("field", self.binding, self.path)

    def referenced_fields(self) -> set[tuple[str, tuple[str, ...]]]:
        return {(self.binding, self.path)}

    def substitute_binding(self, old: str, new: str) -> "Expression":
        if self.binding == old:
            return FieldRef(new, self.path)
        return self

    def evaluate(self, env: Mapping[str, object]) -> object:
        try:
            value = env[self.binding]
        except KeyError as exc:
            raise ExecutionError(f"unbound variable {self.binding!r}") from exc
        return t.dig_path(value, self.path)

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        try:
            base = scope[self.binding]
        except KeyError as exc:
            raise SchemaError(f"unknown binding {self.binding!r}") from exc
        if not self.path:
            return base
        if not isinstance(base, t.RecordType):
            raise SchemaError(f"binding {self.binding!r} is not a record")
        return base.resolve_path(self.path)

    def extend(self, step: str) -> "FieldRef":
        """Return a new reference one path step deeper."""
        return FieldRef(self.binding, self.path + (step,))


#: Reserved environment key under which bound parameter values travel through
#: tuple-at-a-time evaluation.  It is not a generator binding: parameters never
#: appear in ``referenced_fields``/``bindings`` analyses, so scoping validation
#: and projection pushdown ignore them.
PARAMS_BINDING = "__params__"


def parameter_env(params: Mapping[object, object] | None) -> dict[str, object]:
    """Wrap a parameter-value mapping as a tuple evaluation environment."""
    return {} if not params else {PARAMS_BINDING: params}


class Parameter(Expression):
    """A query parameter placeholder: ``?`` (positional) or ``:name`` (named).

    The node survives binding, normalization, translation and planning, so a
    plan's fingerprint abstracts over the constant (``("param", key)`` instead
    of a literal value) — one compiled program serves every binding of the
    parameter.  Evaluation reads the value from the parameter environment the
    executing tier provides (:data:`PARAMS_BINDING` for the interpreted tiers,
    ``rt.param`` in generated code, ``Batch.params`` in the batch tiers).
    """

    def __init__(self, key: int | str):
        self.key = key

    @property
    def display(self) -> str:
        return f"?{self.key}" if isinstance(self.key, int) else f":{self.key}"

    def fingerprint(self) -> tuple:
        return ("param", self.key)

    def evaluate(self, env: Mapping[str, object]) -> object:
        params = env.get(PARAMS_BINDING)
        if params is None or self.key not in params:
            raise ExecutionError(
                f"query parameter {self.display} is not bound; execute the "
                "query through PreparedQuery.execute() with a value for it"
            )
        return params[self.key]

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        raise SchemaError(
            f"the type of parameter {self.display} is unknown until a value is bound"
        )


def iter_parameters(expression: Expression) -> Iterator["Parameter"]:
    """Yield every parameter placeholder in the expression tree."""
    if isinstance(expression, Parameter):
        yield expression
        return
    for child in expression.children():
        yield from iter_parameters(child)


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

def _divide(a, b):
    """Division matching the columnar tiers' NumPy semantics: a zero divisor
    yields ±inf / NaN instead of raising ZeroDivisionError."""
    try:
        return a / b
    except ZeroDivisionError:
        if a > 0:
            return float("inf")
        if a < 0:
            return float("-inf")
        return float("nan")


def _modulo(a, b):
    """Modulo matching NumPy: ``x % 0`` is 0 for ints and NaN for floats."""
    try:
        return a % b
    except ZeroDivisionError:
        if isinstance(a, int) and isinstance(b, int):
            return 0
        return float("nan")


_ARITHMETIC_OPS: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _divide,
    "%": _modulo,
}

_COMPARISON_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_LOGICAL_OPS = ("and", "or")

ARITHMETIC_OPS = tuple(_ARITHMETIC_OPS)
COMPARISON_OPS = tuple(_COMPARISON_OPS)
LOGICAL_OPS = _LOGICAL_OPS

#: Scalar arithmetic/comparison functions shared with the columnar kernels so
#: every tier evaluates operators identically (arithmetic carries the
#: NumPy-aligned zero-divisor semantics).
ARITHMETIC_FUNCS = dict(_ARITHMETIC_OPS)
COMPARISON_FUNCS = dict(_COMPARISON_OPS)


class BinaryOp(Expression):
    """A binary arithmetic, comparison or logical expression."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITHMETIC_OPS and op not in _COMPARISON_OPS and op not in _LOGICAL_OPS:
            raise SchemaError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _rebuild(self, children: Sequence[Expression]) -> Expression:
        return BinaryOp(self.op, children[0], children[1])

    def fingerprint(self) -> tuple:
        return ("bin", self.op, self.left.fingerprint(), self.right.fingerprint())

    def evaluate(self, env: Mapping[str, object]) -> object:
        if self.op == "and":
            return t.truthy(self.left.evaluate(env)) and t.truthy(self.right.evaluate(env))
        if self.op == "or":
            return t.truthy(self.left.evaluate(env)) or t.truthy(self.right.evaluate(env))
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op in _ARITHMETIC_OPS:
            if left is None or right is None:
                return None
            return _ARITHMETIC_OPS[self.op](left, right)
        # Comparisons with a missing operand (None, or NaN in float data) are
        # false in every execution tier.
        if t.is_missing(left) or t.is_missing(right):
            return False
        return _COMPARISON_OPS[self.op](left, right)

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        if self.op in _COMPARISON_OPS or self.op in _LOGICAL_OPS:
            return t.BOOL
        left = self.left.result_type(scope)
        right = self.right.result_type(scope)
        if self.op == "/":
            return t.FLOAT
        return t.arithmetic_result_type(left, right)


class UnaryOp(Expression):
    """Unary negation (``-x``) or logical not (``not x``)."""

    def __init__(self, op: str, operand: Expression):
        if op not in ("-", "not"):
            raise SchemaError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def _rebuild(self, children: Sequence[Expression]) -> Expression:
        return UnaryOp(self.op, children[0])

    def fingerprint(self) -> tuple:
        return ("un", self.op, self.operand.fingerprint())

    def evaluate(self, env: Mapping[str, object]) -> object:
        value = self.operand.evaluate(env)
        if self.op == "-":
            return None if value is None else -value
        return not t.truthy(value)

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        if self.op == "not":
            return t.BOOL
        return self.operand.result_type(scope)


class RecordConstruct(Expression):
    """Construct a new record from named sub-expressions."""

    def __init__(self, fields: Mapping[str, Expression] | Sequence[tuple[str, Expression]]):
        items = fields.items() if isinstance(fields, Mapping) else fields
        self.fields: tuple[tuple[str, Expression], ...] = tuple(items)

    def children(self) -> tuple[Expression, ...]:
        return tuple(expr for _, expr in self.fields)

    def _rebuild(self, children: Sequence[Expression]) -> Expression:
        names = [name for name, _ in self.fields]
        return RecordConstruct(list(zip(names, children)))

    def fingerprint(self) -> tuple:
        return ("rec",) + tuple((name, expr.fingerprint()) for name, expr in self.fields)

    def evaluate(self, env: Mapping[str, object]) -> object:
        return {name: expr.evaluate(env) for name, expr in self.fields}

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        return t.RecordType(
            [t.Field(name, expr.result_type(scope)) for name, expr in self.fields]
        )


class IfThenElse(Expression):
    """A conditional expression."""

    def __init__(self, condition: Expression, then: Expression, otherwise: Expression):
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def children(self) -> tuple[Expression, ...]:
        return (self.condition, self.then, self.otherwise)

    def _rebuild(self, children: Sequence[Expression]) -> Expression:
        return IfThenElse(children[0], children[1], children[2])

    def fingerprint(self) -> tuple:
        return (
            "if",
            self.condition.fingerprint(),
            self.then.fingerprint(),
            self.otherwise.fingerprint(),
        )

    def evaluate(self, env: Mapping[str, object]) -> object:
        if t.truthy(self.condition.evaluate(env)):
            return self.then.evaluate(env)
        return self.otherwise.evaluate(env)

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        return t.merge_types(self.then.result_type(scope), self.otherwise.result_type(scope))


class AggregateCall(Expression):
    """An aggregate over an input expression (``count`` may omit the argument).

    Aggregate calls only appear in the heads of Reduce and Nest operators; the
    planner rejects them anywhere else.
    """

    def __init__(self, func: str, argument: Expression | None = None):
        func = func.lower()
        if func not in t.AGGREGATE_MONOIDS:
            raise SchemaError(f"unknown aggregate {func!r}")
        if func != "count" and argument is None:
            raise SchemaError(f"aggregate {func!r} requires an argument")
        self.func = func
        self.argument = argument

    def children(self) -> tuple[Expression, ...]:
        return (self.argument,) if self.argument is not None else ()

    def _rebuild(self, children: Sequence[Expression]) -> Expression:
        return AggregateCall(self.func, children[0] if children else None)

    def substitute_binding(self, old: str, new: str) -> Expression:
        if self.argument is None:
            return self
        return AggregateCall(self.func, self.argument.substitute_binding(old, new))

    def fingerprint(self) -> tuple:
        arg = self.argument.fingerprint() if self.argument is not None else None
        return ("agg", self.func, arg)

    def evaluate(self, env: Mapping[str, object]) -> object:
        raise ExecutionError("aggregate calls cannot be evaluated tuple-at-a-time")

    def result_type(self, scope: Mapping[str, t.DataType]) -> t.DataType:
        if self.func == "count":
            return t.INT
        if self.func == "avg":
            return t.FLOAT
        assert self.argument is not None
        arg_type = self.argument.result_type(scope)
        if self.func in ("and", "or"):
            return t.BOOL
        return arg_type


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op == "and":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def conjunction(predicates: Iterable[Expression]) -> Expression | None:
    """Combine predicates into a single conjunction (``None`` when empty)."""
    result: Expression | None = None
    for predicate in predicates:
        result = predicate if result is None else BinaryOp("and", result, predicate)
    return result


def contains_aggregate(expression: Expression) -> bool:
    """Return True if the expression tree contains an :class:`AggregateCall`."""
    if isinstance(expression, AggregateCall):
        return True
    return any(contains_aggregate(child) for child in expression.children())


def iter_aggregates(expression: Expression) -> Iterator[AggregateCall]:
    """Yield every aggregate call contained in the expression tree."""
    if isinstance(expression, AggregateCall):
        yield expression
        return
    for child in expression.children():
        yield from iter_aggregates(child)


def is_equi_join_predicate(
    predicate: Expression, left_bindings: set[str], right_bindings: set[str]
) -> tuple[Expression, Expression] | None:
    """If ``predicate`` is ``left_expr = right_expr`` across the two binding
    sets, return the pair ``(left_expr, right_expr)`` oriented left/right;
    otherwise return ``None``."""
    if not isinstance(predicate, BinaryOp) or predicate.op != "=":
        return None
    a_bindings = predicate.left.bindings()
    b_bindings = predicate.right.bindings()
    if a_bindings and b_bindings:
        if a_bindings <= left_bindings and b_bindings <= right_bindings:
            return predicate.left, predicate.right
        if a_bindings <= right_bindings and b_bindings <= left_bindings:
            return predicate.right, predicate.left
    return None


def to_string(expression: Expression) -> str:
    """Render an expression as a readable string (used by EXPLAIN output)."""
    if isinstance(expression, Literal):
        return repr(expression.value)
    if isinstance(expression, FieldRef):
        if not expression.path:
            return expression.binding
        return expression.binding + "." + ".".join(expression.path)
    if isinstance(expression, Parameter):
        return expression.display
    if isinstance(expression, BinaryOp):
        return f"({to_string(expression.left)} {expression.op} {to_string(expression.right)})"
    if isinstance(expression, UnaryOp):
        return f"({expression.op} {to_string(expression.operand)})"
    if isinstance(expression, RecordConstruct):
        inner = ", ".join(f"{name}: {to_string(expr)}" for name, expr in expression.fields)
        return f"<{inner}>"
    if isinstance(expression, IfThenElse):
        return (
            f"if {to_string(expression.condition)} then {to_string(expression.then)} "
            f"else {to_string(expression.otherwise)}"
        )
    if isinstance(expression, AggregateCall):
        arg = to_string(expression.argument) if expression.argument is not None else "*"
        return f"{expression.func}({arg})"
    return object.__repr__(expression)


@dataclass(frozen=True)
class OutputColumn:
    """A named output column of a query: a label and the expression computing it."""

    name: str
    expression: Expression

    def fingerprint(self) -> tuple:
        return (self.name, self.expression.fingerprint())
