"""Monoid comprehension calculus.

Queries — whether written in the SQL subset or in the comprehension syntax —
are first translated into a monoid comprehension: a *monoid* describing how
output is assembled (a bag of records, or an aggregate such as ``sum``), a
*head* describing what each output element looks like, and a sequence of
*qualifiers*: generators (``x <- Source``) that bind variables to elements of
datasets or of nested collections, and filters (boolean predicates).

This representation is the paper's unifying internal language (§3): it treats
flat relations and nested collections uniformly, and it is the input of the
normalizer and of the calculus→algebra translator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core import types as t
from repro.core.expressions import (
    Expression,
    FieldRef,
    OutputColumn,
    conjuncts,
    iter_parameters,
    to_string,
)
from repro.errors import TranslationError

# ---------------------------------------------------------------------------
# Generator sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetSource:
    """A generator source that iterates a named dataset from the catalog."""

    dataset: str

    def fingerprint(self) -> tuple:
        return ("dataset", self.dataset)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.dataset


@dataclass(frozen=True)
class PathSource:
    """A generator source that iterates a nested collection of a bound variable.

    ``PathSource("s", ("children",))`` corresponds to ``c <- s.children``.
    """

    binding: str
    path: tuple[str, ...]

    def fingerprint(self) -> tuple:
        return ("path", self.binding, self.path)

    def as_field_ref(self) -> FieldRef:
        return FieldRef(self.binding, self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.binding + "." + ".".join(self.path)


Source = DatasetSource | PathSource


# ---------------------------------------------------------------------------
# Qualifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Generator:
    """A generator qualifier: ``var <- source``.

    ``outer`` marks an *outer* path generator (``var <- outer parent.path``):
    parents whose collection is empty or missing still produce one row, with
    ``var`` bound to the missing value — the comprehension analogue of a left
    outer join against the nested collection.
    """

    var: str
    source: Source
    outer: bool = False

    def fingerprint(self) -> tuple:
        return ("gen", self.var, self.source.fingerprint(), self.outer)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        arrow = "<- outer" if self.outer else "<-"
        return f"{self.var} {arrow} {self.source!r}"


@dataclass(frozen=True)
class Filter:
    """A filter qualifier: a boolean predicate over previously bound variables."""

    predicate: Expression

    def fingerprint(self) -> tuple:
        return ("filter", self.predicate.fingerprint())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return to_string(self.predicate)


Qualifier = Generator | Filter


# ---------------------------------------------------------------------------
# Comprehension
# ---------------------------------------------------------------------------


@dataclass
class Comprehension:
    """A monoid comprehension: ``monoid { head | qualifiers }``.

    ``head`` is a list of named output columns; for aggregate queries the
    column expressions contain :class:`~repro.core.expressions.AggregateCall`
    nodes.  ``group_by`` holds the grouping expressions introduced by SQL's
    GROUP BY clause (empty for pure reductions and for collection output).
    ``order_by`` optionally names output columns to sort the final result by
    (the reproduction sorts the materialized result; ordering is not part of
    the monoid itself).  ``limit`` may be a literal int or a
    :class:`~repro.core.expressions.Parameter` bound at execution time.
    """

    monoid: str
    head: list[OutputColumn]
    qualifiers: list[Qualifier] = field(default_factory=list)
    group_by: list[Expression] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: "int | Expression | None" = None

    # -- convenience accessors ---------------------------------------------

    def generators(self) -> list[Generator]:
        return [q for q in self.qualifiers if isinstance(q, Generator)]

    def filters(self) -> list[Filter]:
        return [q for q in self.qualifiers if isinstance(q, Filter)]

    def generator_vars(self) -> list[str]:
        return [g.var for g in self.generators()]

    def datasets(self) -> list[str]:
        """Names of all catalog datasets referenced by the comprehension."""
        return [
            g.source.dataset
            for g in self.generators()
            if isinstance(g.source, DatasetSource)
        ]

    def parameters(self) -> list[int | str]:
        """Query-parameter keys referenced anywhere in the comprehension
        (filters, head, group-by), deduplicated in first-appearance order:
        positional ``?`` placeholders appear as 0-based ints, named ``:name``
        placeholders as strings."""
        seen: dict[int | str, None] = {}
        expressions: list[Expression] = [
            f.predicate for f in self.filters()
        ]
        expressions.extend(column.expression for column in self.head)
        expressions.extend(self.group_by)
        if isinstance(self.limit, Expression):
            expressions.append(self.limit)
        for expression in expressions:
            for parameter in iter_parameters(expression):
                seen.setdefault(parameter.key)
        return list(seen)

    def fingerprint(self) -> tuple:
        return (
            "comprehension",
            self.monoid,
            tuple(c.fingerprint() for c in self.head),
            tuple(q.fingerprint() for q in self.qualifiers),
            tuple(e.fingerprint() for e in self.group_by),
        )

    def validate(self) -> None:
        """Check scoping rules: every reference must be bound by a preceding
        generator, and generator variables must be unique."""
        bound: set[str] = set()
        for qualifier in self.qualifiers:
            if isinstance(qualifier, Generator):
                if qualifier.var in bound:
                    raise TranslationError(
                        f"generator variable {qualifier.var!r} bound more than once"
                    )
                if isinstance(qualifier.source, PathSource):
                    if qualifier.source.binding not in bound:
                        raise TranslationError(
                            f"path generator {qualifier!r} references unbound variable "
                            f"{qualifier.source.binding!r}"
                        )
                bound.add(qualifier.var)
            else:
                unbound = qualifier.predicate.bindings() - bound
                if unbound:
                    raise TranslationError(
                        f"filter {qualifier!r} references unbound variables {sorted(unbound)}"
                    )
        for column in self.head:
            unbound = column.expression.bindings() - bound
            if unbound:
                raise TranslationError(
                    f"output column {column.name!r} references unbound variables "
                    f"{sorted(unbound)}"
                )
        for expr in self.group_by:
            unbound = expr.bindings() - bound
            if unbound:
                raise TranslationError(
                    f"group-by expression references unbound variables {sorted(unbound)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        quals = ", ".join(repr(q) for q in self.qualifiers)
        head = ", ".join(f"{c.name}={to_string(c.expression)}" for c in self.head)
        text = f"for {{ {quals} }} yield {self.monoid} ({head})"
        if self.group_by:
            text += " group by " + ", ".join(to_string(e) for e in self.group_by)
        return text


# ---------------------------------------------------------------------------
# Helpers used by the normalizer and the translator
# ---------------------------------------------------------------------------


def split_filters(qualifiers: Iterable[Qualifier]) -> list[Qualifier]:
    """Split every filter qualifier into one qualifier per conjunct.

    Splitting conjunctions is a prerequisite for selection pushdown: each
    conjunct can then be placed immediately after the last generator it
    depends on.
    """
    result: list[Qualifier] = []
    for qualifier in qualifiers:
        if isinstance(qualifier, Filter):
            result.extend(Filter(p) for p in conjuncts(qualifier.predicate))
        else:
            result.append(qualifier)
    return result


def bound_after(qualifiers: Sequence[Qualifier], index: int) -> set[str]:
    """Variables bound by the first ``index + 1`` qualifiers."""
    bound: set[str] = set()
    for qualifier in qualifiers[: index + 1]:
        if isinstance(qualifier, Generator):
            bound.add(qualifier.var)
    return bound


def generator_scope(
    comprehension: Comprehension, catalog_types: dict[str, t.DataType]
) -> dict[str, t.DataType]:
    """Compute the record type bound by each generator variable.

    ``catalog_types`` maps dataset names to the element type of the dataset
    (a :class:`~repro.core.types.RecordType` for all supported formats).
    """
    scope: dict[str, t.DataType] = {}
    for generator in comprehension.generators():
        source = generator.source
        if isinstance(source, DatasetSource):
            try:
                scope[generator.var] = catalog_types[source.dataset]
            except KeyError as exc:
                raise TranslationError(
                    f"unknown dataset {source.dataset!r} in generator {generator!r}"
                ) from exc
        else:
            base = scope.get(source.binding)
            if base is None:
                raise TranslationError(
                    f"generator {generator!r} references unbound variable "
                    f"{source.binding!r}"
                )
            if not isinstance(base, t.RecordType):
                raise TranslationError(
                    f"cannot navigate path {source.path} in non-record binding "
                    f"{source.binding!r}"
                )
            target = base.resolve_path(source.path)
            if not isinstance(target, t.CollectionType):
                raise TranslationError(
                    f"path {source!r} does not denote a nested collection"
                )
            scope[generator.var] = target.element
    return scope
