"""Vectorized batch executor — the middle execution tier.

The paper's §5 identifies per-tuple interpretation as the dominant overhead of
static engines, and removes it by collapsing each plan into a specialized
program.  The Volcano interpreter exists as the ablation baseline for that
claim, but it also serves every query shape the code generator does not cover
— so those shapes, and every ablation with code generation disabled, pay the
exact overhead the paper measures.

This executor closes that gap without generating code: it interprets the same
physical plans, but over NumPy columnar *batches* (default 4096 rows) instead
of per-tuple dict environments.  Each operator consumes and produces
:class:`Batch` objects:

* scans pull :meth:`InputPlugin.scan_batches` buffers,
* selections evaluate the predicate once per batch into a boolean mask,
* hash joins materialize the build side, build one radix table and probe it
  batch-at-a-time,
* grouping concatenates key/argument columns and reduces them with the radix
  grouping kernel (``np.unique`` + segmented reductions).

Interpretation decisions still happen at run time (unlike the generated
tier), but once per *batch* rather than once per tuple — the classic
vectorized-execution trade-off.

Null semantics mirror the Volcano interpreter: comparisons with a missing
value are false, arithmetic over a missing value is missing and aggregates
skip missing inputs.  In columnar buffers "missing" is ``None`` inside object
columns or NaN inside float columns (the JSON plug-in's encoding of absent
numeric fields).

Shapes this tier does not cover (record construction in output columns, outer
joins/unnests, grouping on keys containing nulls, group-by output columns
that are neither keys nor aggregates) raise :class:`VectorizationError`, and
the engine falls back to the Volcano interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.aggregate_utils import (
    AggregateAccumulators,
    literal_results,
    replace_aggregates,
    unique_output_columns,
)
from repro.core.executor import radix
from repro.core.expressions import (
    AggregateCall,
    BinaryOp,
    Expression,
    FieldRef,
    IfThenElse,
    Literal,
    UnaryOp,
    contains_aggregate,
    iter_aggregates,
)
from repro.core.physical import (
    PhysHashJoin,
    PhysNest,
    PhysNestedLoopJoin,
    PhysReduce,
    PhysScan,
    PhysSelect,
    PhysUnnest,
    PhysicalPlan,
)
from repro.core.types import python_value as _python_value
from repro.errors import ExecutionError, PluginError, VectorizationError
from repro.plugins.base import InputPlugin
from repro.storage.catalog import Catalog, Dataset

DEFAULT_BATCH_SIZE = 4096

#: Synthetic binding under which computed per-group aggregate results are
#: exposed when finishing group-by output columns (mirrors the codegen tier).
_AGG_BINDING = "__agg__"

#: Virtual-buffer key: (binding, field path).
ColumnKey = tuple[str, tuple[str, ...]]


@dataclass
class Batch:
    """One columnar batch flowing between operators."""

    count: int
    columns: dict[ColumnKey, np.ndarray] = field(default_factory=dict)
    #: Per-binding global row positions (for lazy access and unnesting).
    oids: dict[str, np.ndarray] = field(default_factory=dict)

    def take(self, selector: np.ndarray) -> "Batch":
        """Gather rows by boolean mask or integer positions."""
        taken = Batch(count=0)
        for key, column in self.columns.items():
            taken.columns[key] = column[selector]
        for binding, oids in self.oids.items():
            taken.oids[binding] = oids[selector]
        if selector.dtype == np.bool_:
            taken.count = int(selector.sum())
        else:
            taken.count = len(selector)
        return taken


# ---------------------------------------------------------------------------
# Vectorized expression evaluation
# ---------------------------------------------------------------------------

_COMPARISONS = frozenset(("=", "!=", "<", "<=", ">", ">="))

def _is_object_array(value: Any) -> bool:
    return isinstance(value, np.ndarray) and value.dtype == object


def materialize(value: Any, count: int) -> np.ndarray:
    """Broadcast an evaluation result to a full column of ``count`` rows."""
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    if isinstance(value, np.ndarray):  # 0-d array
        value = value.item()
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (bool, int, float)):
        return np.full(count, value)
    column = np.empty(count, dtype=object)
    column[:] = [value] * count
    return column


def as_bool_array(value: Any, count: int) -> np.ndarray:
    """Coerce an evaluation result to a boolean mask of ``count`` rows.
    Missing values are false (see :func:`radix.bool_mask`)."""
    return radix.bool_mask(materialize(value, count))


def evaluate_batch(expression: Expression, batch: Batch) -> Any:
    """Evaluate an expression over a batch; returns a column or a scalar."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, FieldRef):
        key = (expression.binding, tuple(expression.path))
        column = batch.columns.get(key)
        if column is None:
            raise VectorizationError(
                f"no batch column holds {expression!r}; available: "
                f"{sorted(batch.columns)}"
            )
        return column
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, batch)
    if isinstance(expression, UnaryOp):
        value = evaluate_batch(expression.operand, batch)
        if expression.op == "not":
            return ~as_bool_array(value, batch.count)
        return radix.null_safe_neg(value)
    if isinstance(expression, IfThenElse):
        condition = as_bool_array(evaluate_batch(expression.condition, batch), batch.count)
        then = materialize(evaluate_batch(expression.then, batch), batch.count)
        otherwise = materialize(evaluate_batch(expression.otherwise, batch), batch.count)
        return np.where(condition, then, otherwise)
    if isinstance(expression, AggregateCall):
        raise VectorizationError(
            "aggregate calls are evaluated by the Reduce/Nest batch operators"
        )
    raise VectorizationError(
        f"the vectorized executor cannot evaluate expression {expression!r}"
    )


def _evaluate_binary(expression: BinaryOp, batch: Batch) -> Any:
    if expression.op == "and":
        left = as_bool_array(evaluate_batch(expression.left, batch), batch.count)
        right = as_bool_array(evaluate_batch(expression.right, batch), batch.count)
        return left & right
    if expression.op == "or":
        left = as_bool_array(evaluate_batch(expression.left, batch), batch.count)
        right = as_bool_array(evaluate_batch(expression.right, batch), batch.count)
        return left | right
    left = evaluate_batch(expression.left, batch)
    right = evaluate_batch(expression.right, batch)
    if expression.op in _COMPARISONS:
        return radix.null_safe_compare(expression.op, left, right)
    return radix.null_safe_arith(expression.op, left, right)


def _valid_mask(values: np.ndarray) -> np.ndarray | None:
    """Mask of non-missing entries, or ``None`` when everything is valid."""
    mask = radix.missing_mask(values)
    return None if mask is None else ~mask


def _apply_predicate(batch: Batch, predicate: Expression) -> Batch | None:
    """Filter a batch by a predicate; ``None`` when nothing survives."""
    mask = as_bool_array(evaluate_batch(predicate, batch), batch.count)
    if not mask.any():
        return None
    if mask.all():
        return batch
    return batch.take(mask)


def _gather_joined(
    left: Batch, right: Batch, left_positions: np.ndarray, right_positions: np.ndarray
) -> Batch:
    """Assemble a join output batch by gathering both sides."""
    joined = Batch(count=len(left_positions))
    for key, column in left.columns.items():
        joined.columns[key] = column[left_positions]
    for binding, oids in left.oids.items():
        joined.oids[binding] = oids[left_positions]
    for key, column in right.columns.items():
        joined.columns[key] = column[right_positions]
    for binding, oids in right.oids.items():
        joined.oids[binding] = oids[right_positions]
    return joined




# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class VectorizedExecutor:
    """Batch-vectorized interpreter over physical plans."""

    def __init__(
        self,
        catalog: Catalog,
        plugins: Mapping[str, InputPlugin],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.catalog = catalog
        self.plugins = plugins
        self.batch_size = max(int(batch_size), 1)
        #: Counters mirrored into the engine's :class:`ExecutionProfile`.
        self.rows_scanned = 0
        self.batches_processed = 0
        self.join_build_rows = 0
        self.join_output_rows = 0
        self.groups_built = 0
        self.output_rows = 0

    # -- public API ----------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> tuple[list[str], dict[str, Any]]:
        """Execute a plan; returns (column names, column values)."""
        if isinstance(plan, PhysReduce):
            return self._execute_reduce(plan)
        if isinstance(plan, PhysNest):
            return self._execute_nest(plan)
        raise ExecutionError(
            f"the plan root must be Reduce or Nest, got {plan.describe()}"
        )

    # -- batch pipelines -------------------------------------------------------

    def _batches(self, plan: PhysicalPlan) -> Iterator[Batch]:
        if isinstance(plan, PhysScan):
            yield from self._iterate_scan(plan)
        elif isinstance(plan, PhysSelect):
            yield from self._iterate_select(plan)
        elif isinstance(plan, PhysUnnest):
            yield from self._iterate_unnest(plan)
        elif isinstance(plan, PhysHashJoin):
            yield from self._iterate_hash_join(plan)
        elif isinstance(plan, PhysNestedLoopJoin):
            yield from self._iterate_nested_loop(plan)
        else:
            raise VectorizationError(
                f"cannot interpret operator {plan.describe()} over batches"
            )

    def _iterate_scan(self, plan: PhysScan) -> Iterator[Batch]:
        dataset = self.catalog.get(plan.dataset)
        plugin = self.plugins.get(dataset.format)
        if plugin is None:
            raise ExecutionError(f"no plug-in registered for format {dataset.format!r}")
        paths = [tuple(path) for path in plan.paths]
        for buffers in plugin.scan_batches(dataset, paths, batch_size=self.batch_size):
            if buffers.count == 0:
                continue
            batch = Batch(count=buffers.count)
            batch.oids[plan.binding] = np.asarray(buffers.oids, dtype=np.int64)
            for path in paths:
                batch.columns[(plan.binding, path)] = buffers.column(path)
            self.rows_scanned += buffers.count
            self.batches_processed += 1
            yield batch

    def _iterate_select(self, plan: PhysSelect) -> Iterator[Batch]:
        for batch in self._batches(plan.child):
            filtered = _apply_predicate(batch, plan.predicate)
            if filtered is not None:
                yield filtered

    def _iterate_unnest(self, plan: PhysUnnest) -> Iterator[Batch]:
        if plan.outer:
            raise VectorizationError(
                "outer unnest is served by the Volcano interpreter"
            )
        dataset, plugin = self._scan_source(plan, plan.binding)
        element_paths = [tuple(path) for path in plan.element_paths]
        for batch in self._batches(plan.child):
            parent_oids = batch.oids.get(plan.binding)
            if parent_oids is None:
                raise VectorizationError(
                    f"no OID column for unnest binding {plan.binding!r}"
                )
            try:
                buffers = plugin.scan_unnest(
                    dataset, plan.path, element_paths, parent_oids
                )
            except PluginError as exc:
                raise VectorizationError(str(exc)) from exc
            if buffers.count == 0:
                continue
            flattened = batch.take(buffers.parent_positions)
            for path in element_paths:
                flattened.columns[(plan.var, path)] = buffers.column(path)
            self.rows_scanned += buffers.count
            if plan.predicate is not None:
                flattened = _apply_predicate(flattened, plan.predicate)
                if flattened is None:
                    continue
            yield flattened

    def _iterate_hash_join(self, plan: PhysHashJoin) -> Iterator[Batch]:
        if plan.outer:
            raise VectorizationError("outer join is served by the Volcano interpreter")
        left = self._materialize(plan.left)
        if left.count == 0:
            # An inner join with an empty build side produces nothing; bail
            # out before key evaluation (an empty Batch has no columns, which
            # would needlessly demote the query to the Volcano tier).
            return
        left_keys = _join_keys(evaluate_batch(plan.left_key, left), left.count)
        table = radix.build_radix_table(left_keys)
        build_kind = left_keys.dtype.kind
        self.join_build_rows += left.count
        for right in self._batches(plan.right):
            right_keys = _join_keys(evaluate_batch(plan.right_key, right), right.count)
            probe_keys, kept = _align_probe_keys(build_kind, right_keys)
            left_positions, right_positions = radix.probe_radix_table(table, probe_keys)
            if len(left_positions) == 0:
                continue
            if kept is not None:
                right_positions = kept[right_positions]
            self.join_output_rows += len(left_positions)
            joined = _gather_joined(left, right, left_positions, right_positions)
            if plan.residual is not None:
                joined = _apply_predicate(joined, plan.residual)
                if joined is None:
                    continue
            yield joined

    def _iterate_nested_loop(self, plan: PhysNestedLoopJoin) -> Iterator[Batch]:
        if plan.outer:
            raise VectorizationError(
                "outer join is served by the Volcano interpreter"
            )
        left = self._materialize(plan.left)
        if left.count == 0:
            return
        for right in self._batches(plan.right):
            left_positions = np.repeat(
                np.arange(left.count, dtype=np.int64), right.count
            )
            right_positions = np.tile(
                np.arange(right.count, dtype=np.int64), left.count
            )
            joined = _gather_joined(left, right, left_positions, right_positions)
            if plan.predicate is not None:
                joined = _apply_predicate(joined, plan.predicate)
                if joined is None:
                    continue
            yield joined

    def _materialize(self, plan: PhysicalPlan) -> Batch:
        """Concatenate a batch stream into one batch (join build sides)."""
        batches = list(self._batches(plan))
        if not batches:
            return Batch(count=0)
        if len(batches) == 1:
            return batches[0]
        merged = Batch(count=sum(batch.count for batch in batches))
        for key in batches[0].columns:
            merged.columns[key] = np.concatenate(
                [batch.columns[key] for batch in batches]
            )
        for binding in batches[0].oids:
            merged.oids[binding] = np.concatenate(
                [batch.oids[binding] for batch in batches]
            )
        return merged

    def _scan_source(
        self, plan: PhysicalPlan, binding: str
    ) -> tuple[Dataset, InputPlugin]:
        for node in plan.walk():
            if isinstance(node, PhysScan) and node.binding == binding:
                dataset = self.catalog.get(node.dataset)
                plugin = self.plugins.get(dataset.format)
                if plugin is None:
                    raise ExecutionError(
                        f"no plug-in registered for format {dataset.format!r}"
                    )
                return dataset, plugin
        raise VectorizationError(
            f"binding {binding!r} is not backed by a scan in this plan"
        )

    # -- roots -----------------------------------------------------------------

    def _execute_reduce(self, plan: PhysReduce) -> tuple[list[str], dict[str, Any]]:
        names = [column.name for column in plan.columns]
        aggregated = any(contains_aggregate(column.expression) for column in plan.columns)
        if not aggregated:
            unique_columns = unique_output_columns(plan.columns)
            chunks: dict[str, list[np.ndarray]] = {name: [] for name in names}
            total = 0
            for batch in self._batches(plan.child):
                for column in unique_columns:
                    chunks[column.name].append(
                        materialize(
                            evaluate_batch(column.expression, batch), batch.count
                        )
                    )
                total += batch.count
            self.output_rows += total
            columns = {
                name: (
                    np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)
                )
                for name, parts in chunks.items()
            }
            return names, columns
        accumulators = _BatchAggregates(plan.columns)
        for batch in self._batches(plan.child):
            accumulators.update(batch)
        values = accumulators.finalize()
        self.output_rows += 1
        columns = {}
        for column in plan.columns:
            final = replace_aggregates(column.expression, literal_results(values))
            columns[column.name] = [_python_value(final.evaluate({}))]
        return names, columns

    def _execute_nest(self, plan: PhysNest) -> tuple[list[str], dict[str, Any]]:
        names = [column.name for column in plan.columns]
        group_key_fingerprints = {
            expression.fingerprint(): index
            for index, expression in enumerate(plan.group_by)
        }
        aggregates: list[AggregateCall] = []
        seen: set[tuple] = set()
        for column in plan.columns:
            fingerprint = column.expression.fingerprint()
            if fingerprint in group_key_fingerprints:
                continue
            if not contains_aggregate(column.expression):
                raise VectorizationError(
                    f"group-by output column {column.name!r} is neither a group "
                    "key nor an aggregate; served by the Volcano interpreter"
                )
            for aggregate in iter_aggregates(column.expression):
                if aggregate.fingerprint() not in seen:
                    seen.add(aggregate.fingerprint())
                    aggregates.append(aggregate)

        key_chunks: list[list[np.ndarray]] = [[] for _ in plan.group_by]
        argument_chunks: dict[tuple, list[np.ndarray]] = {
            aggregate.fingerprint(): []
            for aggregate in aggregates
            if aggregate.argument is not None
        }
        total = 0
        for batch in self._batches(plan.child):
            for index, expression in enumerate(plan.group_by):
                key_chunks[index].append(
                    materialize(evaluate_batch(expression, batch), batch.count)
                )
            for aggregate in aggregates:
                if aggregate.argument is None:
                    continue
                argument_chunks[aggregate.fingerprint()].append(
                    materialize(
                        evaluate_batch(aggregate.argument, batch), batch.count
                    )
                )
            total += batch.count
        if total == 0:
            return names, {name: [] for name in names}

        key_arrays = [np.concatenate(chunks) for chunks in key_chunks]
        # radix_group raises VectorizationError for keys containing missing
        # values, which the engine turns into a Volcano fallback.
        grouping = radix.radix_group(key_arrays)
        self.groups_built += grouping.num_groups
        self.output_rows += grouping.num_groups

        # Expose each aggregate's per-group result column under a synthetic
        # binding, then finish the heads with the vectorized evaluator — this
        # keeps arithmetic/logical combinations of aggregates (e.g.
        # ``max(x) > 5 and min(x) > 0``) on the batch path.
        group_batch = Batch(count=grouping.num_groups)
        results: dict[tuple, Expression] = {}
        for index, aggregate in enumerate(aggregates):
            fingerprint = aggregate.fingerprint()
            values = (
                np.concatenate(argument_chunks[fingerprint])
                if aggregate.argument is not None
                else None
            )
            result = radix.group_aggregate(
                aggregate.func, grouping.group_ids, grouping.num_groups, values
            )
            reference = FieldRef(_AGG_BINDING, (f"agg_{index}",))
            group_batch.columns[(_AGG_BINDING, reference.path)] = np.asarray(result)
            results[fingerprint] = reference

        columns: dict[str, Any] = {}
        for column in plan.columns:
            fingerprint = column.expression.fingerprint()
            if fingerprint in group_key_fingerprints:
                index = group_key_fingerprints[fingerprint]
                columns[column.name] = grouping.key_arrays[index]
                continue
            final = replace_aggregates(column.expression, results)
            columns[column.name] = materialize(
                evaluate_batch(final, group_batch), grouping.num_groups
            )
        return names, columns


# ---------------------------------------------------------------------------
# Aggregation helpers
# ---------------------------------------------------------------------------


class _BatchAggregates(AggregateAccumulators):
    """Running global aggregates, updated one batch at a time.

    Same state and finalization as the Volcano accumulators (the shared base
    class), but folds whole batches with NumPy reductions instead of one
    ``update`` per tuple.
    """

    def update(self, batch: Batch) -> None:
        self.count += batch.count
        for aggregate in self.aggregates:
            if aggregate.func == "count" and aggregate.argument is None:
                continue
            fingerprint = aggregate.fingerprint()
            values = materialize(
                evaluate_batch(aggregate.argument, batch), batch.count
            )
            valid = _valid_mask(values)
            if valid is not None:
                values = values[valid]
            if len(values) == 0:
                continue
            self.counts[fingerprint] += len(values)
            if aggregate.func in ("sum", "avg"):
                if values.dtype == object or (
                    values.dtype.kind in "iu"
                    and radix._int_sum_may_overflow(values)
                ):
                    batch_sum = sum(values.tolist())  # exact Python ints
                elif values.dtype.kind in "iub":
                    batch_sum = int(np.sum(values, dtype=np.int64))
                else:
                    batch_sum = float(np.sum(values.astype(np.float64)))
                self.sums[fingerprint] += batch_sum
            elif aggregate.func == "max":
                batch_max = _python_value(values.max())
                current = self.maxs.get(fingerprint)
                self.maxs[fingerprint] = (
                    batch_max if current is None else max(current, batch_max)
                )
            elif aggregate.func == "min":
                batch_min = _python_value(values.min())
                current = self.mins.get(fingerprint)
                self.mins[fingerprint] = (
                    batch_min if current is None else min(current, batch_min)
                )
            elif aggregate.func == "and":
                batch_all = bool(np.all(as_bool_array(values, len(values))))
                self.bools_and[fingerprint] = self.bools_and[fingerprint] and batch_all
            elif aggregate.func == "or":
                batch_any = bool(np.any(as_bool_array(values, len(values))))
                self.bools_or[fingerprint] = self.bools_or[fingerprint] or batch_any


def _join_keys(value: Any, count: int) -> np.ndarray:
    """Normalize a join key column: fixed-width strings to objects, bools to
    ints.  Keys containing missing values are rejected by the radix kernels
    themselves (shared with the codegen tier)."""
    keys = materialize(value, count)
    if keys.dtype.kind in "US":
        keys = keys.astype(object)
    if keys.dtype.kind == "b":
        return keys.astype(np.int64)
    return keys


def _align_probe_keys(
    build_kind: str, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray | None]:
    """Align a probe key batch with the build side's dtype without losing
    integer precision.

    Returns (aligned keys, original positions) — positions is ``None`` when
    every probe key survives, otherwise the indices of the kept keys (probe
    results must be mapped back through it).
    """
    probe_kind = probe_keys.dtype.kind
    if probe_kind in "iu" and build_kind in "iu":
        return probe_keys, None
    if probe_kind == build_kind:
        return probe_keys, None
    if build_kind in "iu" and probe_kind == "f":
        # Only integral float keys inside the int64 range can equal integer
        # build keys; probing the rest (including NaN-encoded nulls) would be
        # wasted work — and a blanket int cast would truncate 3.5 onto 3 or
        # wrap 1e19 onto INT64_MIN.
        integral = (
            np.isfinite(probe_keys)
            & (probe_keys == np.floor(probe_keys))
            & (probe_keys >= -(2.0**63))  # INT64_MIN itself is valid
            & (probe_keys < 2.0**63)
        )
        if integral.all():
            return probe_keys.astype(np.int64), None
        kept = np.nonzero(integral)[0]
        return probe_keys[kept].astype(np.int64), kept
    if build_kind == "f" and probe_kind in "iu":
        # Mirror of the case above: only integers exactly representable in
        # float64 can equal a float build key; a blanket cast would round
        # 2**53 + 1 onto 2**53 and fabricate matches.
        as_float = probe_keys.astype(np.float64)
        safe = (as_float >= -(2.0**63)) & (as_float < 2.0**63)
        round_trip = np.zeros_like(probe_keys)
        round_trip[safe] = as_float[safe].astype(probe_keys.dtype)
        exact = safe & (round_trip == probe_keys)
        if exact.all():
            return as_float, None
        kept = np.nonzero(exact)[0]
        return as_float[kept], kept
    raise VectorizationError(
        f"join keys of kinds {build_kind!r} and {probe_kind!r} are served by "
        "the Volcano interpreter"
    )
